"""End-to-end walkthrough of the streaming service runtime.

The script plays the full production story on a small synthetic workload:

1. record a stock-ticker stream to an event file (``events.jsonl``), the
   stand-in for a real feed;
2. serve it through a :class:`StreamingPipeline` — file source → adaptive
   engine → JSONL match sink — with periodic checkpointing;
3. **kill** the pipeline partway through (simulated: stop without a final
   checkpoint, exactly what ``kill -9`` leaves behind);
4. start a *fresh* pipeline on the same checkpoint directory and watch it
   resume from the last checkpoint, roll the sink back, and finish;
5. verify exactly-once delivery: the sink file is byte-identical to the
   matches of a plain batch run over the same stream.

Run with::

    PYTHONPATH=src python examples/streaming_service.py [MAX_EVENTS]

(``MAX_EVENTS`` caps the recorded stream; the default keeps the run under
a few seconds.)
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro import (
    AdaptiveCEPEngine,
    GreedyOrderPlanner,
    InvariantBasedPolicy,
    StockDatasetSimulator,
)
from repro.streaming import (
    CheckpointStore,
    JSONLFileSource,
    JSONLMatchWriter,
    MetricsSink,
    StreamingPipeline,
    write_events_jsonl,
)
from repro.streaming.sinks import match_record
from repro.workloads import WorkloadGenerator

DURATION = 120.0
DEFAULT_MAX_EVENTS = 6000


def build_workload(max_events: int):
    dataset = StockDatasetSimulator(duration_hint=DURATION)
    workload = WorkloadGenerator(dataset, seed=1)
    pattern = workload.sequence_pattern(3)
    stream = dataset.generate(DURATION, seed=1, max_events=max_events)
    return dataset, pattern, stream


def fresh_engine(pattern):
    return AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())


def build_pipeline(pattern, dataset, events_path, matches_path, store):
    source = JSONLFileSource(
        events_path, {t.name: t for t in dataset.event_types}
    )
    return StreamingPipeline(
        fresh_engine(pattern),
        source,
        sinks=[JSONLMatchWriter(matches_path), MetricsSink()],
        checkpoint_store=store,
        checkpoint_every=1000,
    )


def main() -> None:
    max_events = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_MAX_EVENTS
    dataset, pattern, stream = build_workload(max_events)
    workdir = tempfile.mkdtemp(prefix="repro-streaming-")
    events_path = os.path.join(workdir, "events.jsonl")
    matches_path = os.path.join(workdir, "matches.jsonl")
    store = CheckpointStore(os.path.join(workdir, "checkpoints"))

    # 1. Record the stream (the file is the replayable source of truth).
    recorded = write_events_jsonl(stream, events_path)
    print(f"recorded {recorded} events to {events_path}")

    # 2+3. Serve, then die without a final checkpoint ("kill -9").
    half = recorded // 2
    first = build_pipeline(pattern, dataset, events_path, matches_path, store)
    result = first.run(max_events=half, final_checkpoint=False)
    print(
        f"first pipeline processed {result.events_processed} events "
        f"({result.matches_emitted} matches, "
        f"{result.metrics.checkpoints_written} checkpoints), then died"
    )

    # 4. A fresh pipeline on the same store resumes and finishes the file.
    second = build_pipeline(pattern, dataset, events_path, matches_path, store)
    result = second.run()
    print(
        f"second pipeline resumed from event {result.resumed_from}, "
        f"processed {result.events_processed} more "
        f"({result.matches_emitted} matches) at {result.throughput:,.0f} ev/s"
    )

    # 5. Exactly-once check against a batch run over the same file.
    replay = JSONLFileSource(events_path, {t.name: t for t in dataset.event_types})
    batch = fresh_engine(pattern).run(replay)
    expected = [json.dumps(match_record(match)) for match in batch.matches]
    with open(matches_path, "r", encoding="utf-8") as handle:
        served = [line for line in handle.read().splitlines() if line]
    assert served == expected, (
        f"served matches diverge from batch: {len(served)} vs {len(expected)}"
    )
    print(
        f"exactly-once verified: {len(served)} matches in {matches_path}, "
        "byte-identical to the batch run"
    )


if __name__ == "__main__":
    main()

"""Sharded ingestion of a keyed workload with the parallel engine.

A stock-ticker stream is tagged with an ``entity_id`` (think: one logical
sub-stream per customer portfolio) and the pattern requires all of its
events to belong to the same entity — the same shape as the paper's
``person_id`` joins in Example 1.  Because every match lives entirely
within one key, the stream can be hash-partitioned by ``entity_id`` across
independent engine replicas without losing a single match.

The script runs the same workload three ways and prints the comparison:

1. the sequential :class:`AdaptiveCEPEngine` (baseline),
2. :class:`ParallelCEPEngine` with 4 key-partitioned shards, serial
   executor (shows the partial-match-state savings of partitioning alone),
3. the same 4 shards under the :class:`MultiprocessExecutor` (adds real
   CPU parallelism; start-up cost only pays off on larger streams).

Run with::

    PYTHONPATH=src python examples/parallel_throughput.py
"""

from __future__ import annotations

from repro import (
    AdaptiveCEPEngine,
    GreedyOrderPlanner,
    InvariantBasedPolicy,
    KeyPartitioner,
    MultiprocessExecutor,
    ParallelCEPEngine,
    SerialExecutor,
)
from repro.datasets import StockDatasetSimulator
from repro.workloads import WorkloadGenerator

SHARDS = 4
ENTITIES = 6
DURATION = 400.0
MAX_EVENTS = 16000


def build_workload():
    dataset = StockDatasetSimulator(duration_hint=DURATION)
    workload = WorkloadGenerator(dataset, seed=1)
    return workload.keyed_workload(
        3, duration=DURATION, entities=ENTITIES, max_events=MAX_EVENTS
    )


def run_sequential(pattern, stream):
    engine = AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())
    return engine.run(stream)


def run_sharded(pattern, stream, executor):
    engine = ParallelCEPEngine(
        pattern,
        GreedyOrderPlanner(),
        InvariantBasedPolicy(),
        shards=SHARDS,
        partitioner=KeyPartitioner("entity_id"),
        executor=executor,
        batch_size=512,
    )
    return engine.run(stream)


def main() -> None:
    pattern, stream = build_workload()
    print(f"pattern: {pattern.name}  (window {pattern.window:g})")
    print(f"stream:  {len(stream)} events, {ENTITIES} entities\n")

    runs = [
        ("sequential", run_sequential(pattern, stream)),
        ("sharded/serial", run_sharded(pattern, stream, SerialExecutor())),
        ("sharded/multiprocess", run_sharded(pattern, stream, MultiprocessExecutor())),
    ]

    baseline = runs[0][1].metrics.throughput
    header = f"{'mode':<22}{'matches':>8}{'throughput':>14}{'speedup':>9}"
    print(header)
    print("-" * len(header))
    for label, result in runs:
        metrics = result.metrics
        speedup = metrics.throughput / baseline if baseline > 0 else float("inf")
        print(
            f"{label:<22}{result.match_count:>8}"
            f"{metrics.throughput:>11,.0f} ev/s{speedup:>8.2f}x"
        )

    match_counts = {result.match_count for _, result in runs}
    assert len(match_counts) == 1, "sharding must not change the match set"
    print("\nall modes detected the identical match set — partitioning is lossless")


if __name__ == "__main__":
    main()

"""Traffic monitoring: adaptivity under extreme, rare regime shifts.

This example mirrors the paper's traffic-dataset scenario: a city's road
sensors report skewed, mostly stable event rates, but occasionally the
traffic situation changes drastically (rush hour starts, a road closes).
A non-adaptive engine keeps using the plan built for the initial
conditions; the adaptive engines notice the shift and reorder their plans.

The script runs the same anomaly-detection pattern ("speed and vehicle
count move in the same direction across four sensors") with four different
reoptimization policies and prints a side-by-side comparison of throughput,
plan replacements and adaptation overhead — a miniature of the paper's
Figure 6.

Run with::

    python examples/traffic_monitoring.py
"""

from __future__ import annotations

from repro import (
    AdaptiveCEPEngine,
    ConstantThresholdPolicy,
    GreedyOrderPlanner,
    InvariantBasedPolicy,
    StaticPolicy,
    TrafficDatasetSimulator,
    UnconditionalPolicy,
)
from repro.events import InMemoryEventStream
from repro.experiments import format_table
from repro.workloads import WorkloadGenerator


def main() -> None:
    # A synthetic stand-in for the Aarhus traffic-sensor data: 14 observation
    # points with Zipf-skewed rates and four large regime shifts.
    dataset = TrafficDatasetSimulator(
        num_types=14, base_rate=6.0, num_shifts=4, shift_factor=8.0, duration_hint=300.0
    )
    stream = dataset.generate(duration=300.0, seed=11, max_events=15000)
    print(f"generated {len(stream)} sensor readings over {stream.time_span():.0f} time units")

    workload = WorkloadGenerator(dataset, seed=2)
    pattern = workload.sequence_pattern(4)
    print(f"pattern under detection: {pattern}")
    print(f"time window: {pattern.window:g} time units")
    print()

    policies = {
        "invariant-based (the paper's method)": InvariantBasedPolicy(distance=0.1),
        "constant threshold (ZStream baseline)": ConstantThresholdPolicy(0.5),
        "unconditional (lazy-NFA baseline)": UnconditionalPolicy(),
        "static plan (no adaptation)": StaticPolicy(),
    }

    rows = []
    for label, policy in policies.items():
        engine = AdaptiveCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            policy,
            monitoring_interval=1.0,
        )
        result = engine.run(InMemoryEventStream(list(stream)))
        rows.append(
            {
                "policy": label,
                "matches": result.match_count,
                "throughput": result.metrics.throughput,
                "reoptimizations": result.metrics.reoptimizations,
                "overhead": f"{result.metrics.overhead_fraction:.2%}",
            }
        )

    print(
        format_table(
            rows,
            ["policy", "matches", "throughput", "reoptimizations", "overhead"],
            title="adaptation policies on the shifting traffic stream",
        )
    )
    print(
        "All policies report the same matches; they differ in how quickly they\n"
        "react to the rate shifts and in how much work they waste on needless\n"
        "reoptimization."
    )


if __name__ == "__main__":
    main()

"""Plan and invariant inspection: what the optimizer actually decides.

A small, fully deterministic walkthrough of the machinery underneath the
engine — useful for understanding the paper's method without any streaming:

1. generate order-based and tree-based plans for the camera pattern under
   the paper's example statistics (rateA=100, rateB=15, rateC=10);
2. show the deciding-condition sets recorded for every building block;
3. build the invariant list (basic and K-invariant variants) and show which
   statistic changes do and do not trigger reoptimization;
4. show the davg heuristic's distance estimate for the plan;
5. run the pattern with ``introspect=True`` and print what the engine
   *measured*: live operator stats (condition timings, edge accept/reject
   counts, partial-match populations) and the cost-model drift table;
6. re-run the same stream with ``compile_mode="compiled"`` and show how
   the hotspot report changes: the per-condition timings now measure the
   specialized kernels :mod:`repro.compile` lowered the condition tree
   into at plan-build time, not the interpreted ``evaluate`` walk — so a
   condition that stays hot in compiled mode is genuinely expensive, not
   just paying tree-walk overhead.

Run with::

    python examples/plan_inspection.py
"""

from __future__ import annotations

import random

from repro import (
    EqualityCondition,
    EventType,
    GreedyOrderPlanner,
    PatternBuilder,
    StatisticsSnapshot,
    ZStreamTreePlanner,
    average_relative_difference,
    build_invariant_set,
)
from repro.adaptive import InvariantBasedPolicy
from repro.compile import specialization_counts
from repro.engine import AdaptiveCEPEngine
from repro.events import Event


def build_pattern():
    a, b, c = EventType("A"), EventType("B"), EventType("C")
    return (
        PatternBuilder.sequence()
        .event(a, "a")
        .event(b, "b")
        .event(c, "c")
        .where(EqualityCondition("a", "b", "person_id"))
        .where(EqualityCondition("b", "c", "person_id"))
        .within(600)
        .named("camera-example")
        .build()
    )


def show_planner(name, result):
    print(f"--- {name} ---")
    print(f"plan: {result.plan.describe()}")
    print(f"plan cost under the creation statistics: {result.plan.cost(result.snapshot):,.1f}")
    print("deciding-condition sets per building block:")
    for condition_set in result.condition_sets:
        print(f"  block [{condition_set.block_label}]")
        if condition_set.is_empty():
            print("    (no statistics-driven choice for this block)")
        for condition in condition_set:
            print(f"    {condition.describe()}")
    print()


def make_stream(count=600, seed=7, persons=5):
    """A deterministic random stream over the camera types, biased towards A."""
    a, b, c = EventType("A"), EventType("B"), EventType("C")
    rng = random.Random(seed)
    events = []
    t = 0.0
    for _ in range(count):
        t += rng.uniform(0.05, 0.2)
        roll = rng.random()
        event_type = a if roll < 0.6 else (b if roll < 0.85 else c)
        events.append(Event(event_type, t, {"person_id": rng.randint(0, persons - 1)}))
    return events


def show_introspection(pattern, snapshot) -> None:
    engine = AdaptiveCEPEngine(
        pattern,
        GreedyOrderPlanner(),
        InvariantBasedPolicy(distance=0.1),
        initial_snapshot=snapshot,
        monitoring_interval=5.0,
        introspect=True,
    )
    result = engine.run(make_stream())
    frame = engine.introspection()
    print(f"ran {result.metrics.events_processed} events, {result.match_count} matches")
    print(f"active plan: {frame['plan']}")
    print()

    print("conditions ranked by measured wall time:")
    for data in sorted(
        frame["profile"]["conditions"].values(),
        key=lambda d: d["seconds"],
        reverse=True,
    ):
        print(
            f"  {data['label']:<28} calls={data['calls']:>6,}"
            f"  pass_rate={data['pass_rate']:>6.1%}"
            f"  total={data['seconds'] * 1e3:7.3f} ms"
        )
    print()

    print("per-operator accept/reject counts:")
    for label, data in sorted(frame["profile"]["edges"].items()):
        attempts = data["accepted"] + data["rejected"]
        print(
            f"  {label:<12} attempts={attempts:>6,}"
            f"  accepted={data['accepted']:>6,}"
            f"  accept_rate={data['accept_rate']:>6.1%}"
        )
    print()

    pm = frame["partial_matches"]
    print(
        f"partial matches: live={pm['live']}, high_water={pm['high_water']}, "
        f"per_state={pm['per_state']}"
    )
    print()

    drift = frame["drift"]
    print(
        "cost-model drift (planned with the paper's statistics, "
        "measured from the stream):"
    )
    print(f"  predicted plan cost: {drift['predicted_cost']:,.1f}")
    for row in drift["pairs"]:
        print(
            f"  sel({row['pair']}): predicted={row['predicted']:.3f}"
            f"  observed={row['observed']:.3f}"
            f"  ratio={row['ratio']:.2f}  drift={row['drift']:.2f}"
        )
    print(f"  worst drift ratio: {drift['max_drift']:.2f}")


def show_compiled_hotspots(pattern, snapshot) -> None:
    """The same replay, compiled: kernel specialization + hotspot shift.

    With ``compile_mode="compiled"`` the profiler's timings wrap the
    specialized closures instead of the interpreted condition tree, so the
    hotspot table now answers "which *kernel* is expensive" — a condition
    that drops far down the ranking was merely paying interpreter
    overhead, one that stays on top does real comparison work.
    """
    engine = AdaptiveCEPEngine(
        pattern,
        GreedyOrderPlanner(),
        InvariantBasedPolicy(distance=0.1),
        initial_snapshot=snapshot,
        monitoring_interval=5.0,
        introspect=True,
        compile_mode="compiled",
    )
    result = engine.run(make_stream())
    frame = engine.introspection()
    print(f"ran {result.metrics.events_processed} events, {result.match_count} matches")

    compiled = engine.migration_manager.active_engine._compiled
    kernels = [k for ks in compiled.local_kernels.values() for k in ks]
    for step in compiled.steps or ():
        kernels.extend(step.kernels)
    specialized, fallback = specialization_counts(kernels)
    print(
        f"plan lowered into {len(kernels)} kernels: {specialized} specialized, "
        f"{fallback} interpreted-fallback (opaque predicates keep exact semantics)"
    )

    print("compiled-kernel hotspots (timings wrap the kernels, not the tree walk):")
    for data in sorted(
        frame["profile"]["conditions"].values(),
        key=lambda d: d["seconds"],
        reverse=True,
    ):
        print(
            f"  {data['label']:<28} calls={data['calls']:>6,}"
            f"  pass_rate={data['pass_rate']:>6.1%}"
            f"  total={data['seconds'] * 1e3:7.3f} ms"
        )


def main() -> None:
    pattern = build_pattern()
    snapshot = StatisticsSnapshot(
        {"A": 100.0, "B": 15.0, "C": 10.0},
        {("a", "b"): 0.3, ("b", "c"): 0.2},
    )
    print("statistics used for plan generation:")
    print(f"  arrival rates: {dict(snapshot.rates)}")
    print(f"  selectivities: {dict(snapshot.selectivities)}")
    print()

    greedy_result = GreedyOrderPlanner().generate(pattern, snapshot)
    show_planner("greedy order-based planner (Algorithm 2)", greedy_result)

    zstream_result = ZStreamTreePlanner().generate(pattern, snapshot)
    show_planner("ZStream dynamic-programming tree planner (Algorithm 3)", zstream_result)

    print("--- invariants for the greedy plan ---")
    basic = build_invariant_set(greedy_result, k=1)
    print("basic (1-invariant) method:")
    print(basic.describe())
    full = build_invariant_set(greedy_result, k=0)
    print(f"K=all variant monitors {len(full)} conditions instead of {len(basic)}")
    print()

    davg = average_relative_difference(greedy_result.condition_sets, snapshot)
    print(f"average relative difference heuristic: davg = {davg:.3f}")
    print()

    print("--- what triggers reoptimization? ---")
    scenarios = {
        "rate of A doubles (least sensitive type)": snapshot.with_rate("A", 200.0),
        "rate of C rises to 12 (still below B)": snapshot.with_rate("C", 12.0),
        "rate of C rises to 30 (overtakes B)": snapshot.with_rate("C", 30.0),
        "selectivity sel(a,b) collapses to 0.01": snapshot.with_selectivity("a", "b", 0.01),
    }
    for label, current in scenarios.items():
        violated = basic.first_violated(current)
        if violated is None:
            print(f"  {label}: all invariants hold -> keep the current plan")
        else:
            print(f"  {label}: VIOLATED {violated.describe()} -> regenerate the plan")
            regenerated = GreedyOrderPlanner().generate(pattern, current)
            print(f"      new plan would be {regenerated.plan.describe()}")
    print()

    print("--- live run with introspect=True: measured vs predicted ---")
    show_introspection(pattern, snapshot)
    print()

    print("--- the same run with compile_mode='compiled' ---")
    show_compiled_hotspots(pattern, snapshot)


if __name__ == "__main__":
    main()

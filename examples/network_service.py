"""End-to-end walkthrough of the network data plane.

The script plays the full operational story on a small synthetic
workload, entirely over loopback networking:

1. record a stock-ticker stream to an event file (``events.jsonl``);
2. run a **file-source reference**: the same stream served from disk into
   a local :class:`JSONLMatchWriter` — the ground truth the networked
   runs must reproduce byte-for-byte;
3. start a :class:`WebhookReceiver` that stores deliveries exactly once
   by ``Idempotency-Key`` — and *injects two 500s* before its first
   success, so the sink's retry/backoff path actually runs;
4. serve a :class:`StreamingPipeline` whose source is a
   :class:`NetworkEventSource` behind an :class:`HTTPEventIngress` and
   whose sink is a :class:`WebhookMatchSink`, push the recorded events
   over HTTP, and **kill** the pipeline mid-stream (stop without a final
   checkpoint — exactly what ``kill -9`` leaves behind);
5. start a *fresh* pipeline on the same checkpoint directory, re-push
   the **entire** file (the source's sequence floor discards what the
   checkpoint already covers), and let it run to the end — matches
   derived after the last checkpoint are re-sent under their original
   idempotency keys and the receiver absorbs them as duplicates;
6. verify the delivered file is **byte-identical** to the file-source
   reference, and show the decision log recorded the delivery retries.

Run with::

    PYTHONPATH=src python examples/network_service.py [MAX_EVENTS]
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro import (
    AdaptiveCEPEngine,
    GreedyOrderPlanner,
    InvariantBasedPolicy,
    StockDatasetSimulator,
)
from repro.obs import DecisionLog, read_decision_records
from repro.streaming import (
    CheckpointStore,
    HTTPEventIngress,
    JSONLFileSource,
    JSONLMatchWriter,
    NetworkEventSource,
    StreamingPipeline,
    WebhookMatchSink,
    WebhookReceiver,
    push_events_http,
    read_event_records,
    write_events_jsonl,
)
from repro.workloads import WorkloadGenerator

DURATION = 120.0
DEFAULT_MAX_EVENTS = 2000


def build_workload(max_events: int):
    dataset = StockDatasetSimulator(duration_hint=DURATION)
    workload = WorkloadGenerator(dataset, seed=7)
    pattern = workload.sequence_pattern(3)
    stream = dataset.generate(DURATION, seed=7, max_events=max_events)
    return dataset, pattern, stream


def fresh_engine(pattern):
    return AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())


def sorted_lines(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return sorted(line for line in handle.read().splitlines() if line)


def main() -> None:
    max_events = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_MAX_EVENTS
    dataset, pattern, stream = build_workload(max_events)
    types = {t.name: t for t in dataset.event_types}
    workdir = tempfile.mkdtemp(prefix="repro-net-")
    events_path = os.path.join(workdir, "events.jsonl")
    reference_path = os.path.join(workdir, "reference.jsonl")
    delivered_path = os.path.join(workdir, "delivered.jsonl")
    decisions_path = os.path.join(workdir, "decisions.jsonl")
    store = CheckpointStore(os.path.join(workdir, "checkpoints"))

    # 1. Record the stream.
    recorded = write_events_jsonl(stream, events_path)
    print(f"recorded {recorded} events to {events_path}")

    # 2. File-source reference run: the ground truth.
    reference_run = StreamingPipeline(
        fresh_engine(pattern),
        JSONLFileSource(events_path, types),
        sinks=[JSONLMatchWriter(reference_path)],
    ).run()
    reference = sorted_lines(reference_path)
    assert reference, "workload produced no matches; raise MAX_EVENTS"
    print(
        f"reference run: {reference_run.events_processed} events, "
        f"{len(reference)} matches to {reference_path}"
    )

    def build(receiver_url: str, log: DecisionLog):
        """One networked pipeline: HTTP ingress -> engine -> webhook sink."""
        # Size the push buffer to the whole workload so the script can
        # push everything before starting the pipeline.  A live deployment
        # keeps the default capacity and lets HTTP 429s throttle senders.
        source = NetworkEventSource(types, capacity=recorded)
        sink = WebhookMatchSink(
            receiver_url,
            backoff_base=0.01,  # keep the injected-failure retries snappy
        )
        pipeline = StreamingPipeline(
            fresh_engine(pattern),
            source,
            sinks=[sink],
            checkpoint_store=store,
            checkpoint_every=500,
            decision_log=log,
        )
        return source, pipeline

    # 3+4. Receiver up (with two injected 500s), first networked run,
    # killed mid-stream without a final checkpoint.  Aim the kill at the
    # middle of a checkpoint interval so matches delivered after the last
    # barrier exist to be re-derived and re-sent on resume.
    kill_at = recorded // 2 + 250
    log = DecisionLog(decisions_path)
    with WebhookReceiver(delivered_path, fail_first=2) as receiver:
        print(f"webhook receiver listening on {receiver.url}")
        source, pipeline = build(receiver.url, log)
        with HTTPEventIngress(source) as ingress:
            print(f"HTTP ingress listening on {ingress.url}")
            totals = push_events_http(
                ingress.url, read_event_records(events_path), end=True
            )
            print(f"pushed over HTTP: {json.dumps(totals)}")
            first = pipeline.run(max_events=kill_at, final_checkpoint=False)
        log.close()
        latest = store.latest()
        print(
            f"first pipeline processed {first.events_processed} events, "
            f"then died; last checkpoint covers {latest.events_processed}"
        )
        assert latest.events_processed < first.events_processed, (
            "kill window is empty; the resume would have nothing to re-send"
        )

        # 5. Fresh pipeline, same checkpoint store.  Re-push the WHOLE
        # file: the source's sequence floor (set on restore) discards the
        # prefix the checkpoint already covers, and the sink re-sends
        # re-derived matches under their original idempotency keys.
        resumed_log = DecisionLog(decisions_path)
        source, pipeline = build(receiver.url, resumed_log)
        with HTTPEventIngress(source) as ingress:
            totals = push_events_http(
                ingress.url, read_event_records(events_path), end=True
            )
            second = pipeline.run()
        resumed_log.close()
        print(
            f"second pipeline resumed from event {second.resumed_from}, "
            f"processed {second.events_processed} more "
            f"({second.matches_emitted} matches); "
            f"re-push deduped {source.metrics.events_duplicate} events "
            "at the source"
        )
        stats = receiver.core.stats()

    # 6. The delivered file is byte-identical to the file-source run.
    delivered = sorted_lines(delivered_path)
    assert delivered == reference, (
        f"delivered matches diverge from the file-source reference: "
        f"{len(delivered)} vs {len(reference)}"
    )
    injected = 2 - stats["failures_to_inject"]
    print(
        f"exactly-once verified: {stats['received']} stored deliveries "
        f"byte-identical to the reference; receiver absorbed "
        f"{stats['duplicates']} duplicate sends, injected "
        f"{injected} failures"
    )
    assert stats["duplicates"] >= 1, "expected re-sent matches after resume"

    # The injected 500s left delivery_retry records in the decision log.
    retries = [
        r for r in read_decision_records(decisions_path)
        if r.type == "delivery_retry"
    ]
    assert retries, "expected delivery_retry decisions from the injected 500s"
    print(
        f"decision log recorded {len(retries)} delivery retries "
        f"(first: sink={retries[0].detail['sink']!r}, "
        f"key={retries[0].detail['key']!r})"
    )


if __name__ == "__main__":
    main()

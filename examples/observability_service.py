"""End-to-end walkthrough of the observability layer.

The script plays the operational story on a small synthetic workload:

1. record a stock-ticker stream to an event file (``events.jsonl``);
2. serve it through a :class:`StreamingPipeline` wired with a
   :class:`DecisionLog`, a :class:`Tracer` and a :class:`MetricsRegistry`,
   with the HTTP :class:`ControlPlane` attached on an ephemeral port;
3. poke the live endpoints from a separate thread while the pipeline runs:
   ``GET /health``, ``GET /ready``, ``GET /metrics`` (Prometheus text) and
   ``POST /checkpoint`` (a manual cut, recorded with reason ``manual``);
4. **kill** the pipeline partway through (stop without a final checkpoint,
   exactly what ``kill -9`` leaves behind);
5. start a *fresh* pipeline on the same checkpoint directory and the same
   decision-log file and watch it resume;
6. verify exactly-once delivery AND decision-log continuity: the sequence
   numbers in ``decisions.jsonl`` are gap-free and monotone across the
   kill/resume boundary.

Run with::

    PYTHONPATH=src python examples/observability_service.py [MAX_EVENTS]
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import urllib.request

from repro import (
    AdaptiveCEPEngine,
    GreedyOrderPlanner,
    InvariantBasedPolicy,
    StockDatasetSimulator,
)
from repro.obs import (
    ControlPlane,
    DecisionLog,
    MetricsRegistry,
    Tracer,
    read_decision_records,
    verify_continuity,
)
from repro.streaming import (
    CheckpointStore,
    JSONLFileSource,
    JSONLMatchWriter,
    MetricsSink,
    StreamingPipeline,
    write_events_jsonl,
)
from repro.streaming.sinks import match_record
from repro.workloads import WorkloadGenerator

DURATION = 120.0
DEFAULT_MAX_EVENTS = 6000


def build_workload(max_events: int):
    dataset = StockDatasetSimulator(duration_hint=DURATION)
    workload = WorkloadGenerator(dataset, seed=1)
    pattern = workload.sequence_pattern(3)
    stream = dataset.generate(DURATION, seed=1, max_events=max_events)
    return dataset, pattern, stream


def fresh_engine(pattern):
    return AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())


def build_pipeline(pattern, dataset, events_path, matches_path, store, log, tracer):
    source = JSONLFileSource(
        events_path, {t.name: t for t in dataset.event_types}
    )
    return StreamingPipeline(
        fresh_engine(pattern),
        source,
        sinks=[JSONLMatchWriter(matches_path), MetricsSink()],
        checkpoint_store=store,
        checkpoint_every=1000,
        decision_log=log,
        tracer=tracer,
    )


def http_get(url: str) -> tuple:
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:  # 503 from /ready is expected
        return error.code, error.read().decode("utf-8")


def http_post(url: str) -> tuple:
    request = urllib.request.Request(url, data=b"", method="POST")
    with urllib.request.urlopen(request, timeout=15) as response:
        return response.status, response.read().decode("utf-8")


def poke_endpoints(base: str, report: dict) -> None:
    """Exercise the control plane while the pipeline is serving."""
    report["health"] = http_get(f"{base}/health")
    report["ready"] = http_get(f"{base}/ready")
    report["metrics"] = http_get(f"{base}/metrics")
    report["checkpoint"] = http_post(f"{base}/checkpoint")
    report["decisions"] = http_get(f"{base}/decisions?limit=5")


def main() -> None:
    max_events = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_MAX_EVENTS
    dataset, pattern, stream = build_workload(max_events)
    workdir = tempfile.mkdtemp(prefix="repro-obs-")
    events_path = os.path.join(workdir, "events.jsonl")
    matches_path = os.path.join(workdir, "matches.jsonl")
    decisions_path = os.path.join(workdir, "decisions.jsonl")
    store = CheckpointStore(os.path.join(workdir, "checkpoints"))

    # 1. Record the stream.
    recorded = write_events_jsonl(stream, events_path)
    print(f"recorded {recorded} events to {events_path}")

    # 2+3. Serve with the control plane attached; curl it mid-run; die
    # without a final checkpoint ("kill -9").
    log = DecisionLog(decisions_path)
    tracer = Tracer()
    first = build_pipeline(
        pattern, dataset, events_path, matches_path, store, log, tracer
    )
    registry = MetricsRegistry()
    registry.register_pipeline(first.metrics)
    report: dict = {}
    with ControlPlane(
        pipeline=first, registry=registry, decision_log=log
    ) as control:
        print(f"control plane listening on {control.url}")
        poker = threading.Timer(0.05, poke_endpoints, args=(control.url, report))
        poker.start()
        result = first.run(max_events=recorded // 2, final_checkpoint=False)
        poker.join()
    log.close()

    status, body = report["health"]
    print(f"GET /health -> {status} {body.strip()}")
    status, body = report["ready"]
    print(f"GET /ready  -> {status} {body.strip()}")
    status, body = report["metrics"]
    prom_lines = [line for line in body.splitlines() if line.startswith("repro_")]
    print(f"GET /metrics -> {status} ({len(prom_lines)} repro_* samples)")
    status, body = report["checkpoint"]
    print(f"POST /checkpoint -> {status} {body.strip()}")
    status, body = report["decisions"]
    print(f"GET /decisions?limit=5 -> {status} ({len(json.loads(body))} records)")
    assert report["health"][0] == 200
    assert any("repro_events_processed_total" in line for line in prom_lines)
    print(
        f"first pipeline processed {result.events_processed} events "
        f"({result.metrics.checkpoints_written} checkpoints), then died"
    )

    # 4+5. A fresh pipeline on the same store AND the same decision log
    # resumes; its decision sequence numbers continue where the first run
    # stopped (the log re-reads its own tail on open).
    resumed_log = DecisionLog(decisions_path)
    second = build_pipeline(
        pattern, dataset, events_path, matches_path, store, resumed_log, None
    )
    result = second.run()
    resumed_log.close()
    print(
        f"second pipeline resumed from event {result.resumed_from}, "
        f"processed {result.events_processed} more "
        f"({result.matches_emitted} matches)"
    )

    # 6a. Exactly-once check against a batch run over the same file.
    replay = JSONLFileSource(events_path, {t.name: t for t in dataset.event_types})
    batch = fresh_engine(pattern).run(replay)
    expected = [json.dumps(match_record(match)) for match in batch.matches]
    with open(matches_path, "r", encoding="utf-8") as handle:
        served = [line for line in handle.read().splitlines() if line]
    assert served == expected, (
        f"served matches diverge from batch: {len(served)} vs {len(expected)}"
    )
    print(f"exactly-once verified: {len(served)} matches in {matches_path}")

    # 6b. Decision-log continuity across the kill/resume boundary.
    records = read_decision_records(decisions_path)
    problems = verify_continuity(records)
    assert not problems, f"decision log not continuous: {problems}"
    kinds = {}
    for record in records:
        kinds[record.type] = kinds.get(record.type, 0) + 1
    manual = [r for r in records if r.detail.get("reason") == "manual"]
    assert manual, "expected at least one manual checkpoint_cut record"
    print(
        f"decision log continuous across kill/resume: {len(records)} records, "
        f"seq 1..{records[-1].seq}, by type "
        + ", ".join(f"{k}: {v}" for k, v in sorted(kinds.items()))
    )


if __name__ == "__main__":
    main()

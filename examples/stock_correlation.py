"""Stock-tick monitoring: composite patterns and the davg distance heuristic.

The stocks scenario from the paper: per-symbol price updates arrive at
nearly identical rates that fluctuate slightly but constantly.  We monitor
a *composite* pattern — a disjunction of three "accelerating price
difference" sequences over different symbol groups — and let each
sub-pattern adapt independently.

The invariant distance is not hand-tuned here: the engine uses the paper's
*average relative difference* heuristic (Section 3.4) to derive ``d`` from
the deciding conditions of each freshly generated plan.

Run with::

    python examples/stock_correlation.py
"""

from __future__ import annotations

from repro import (
    AverageRelativeDifferenceDistance,
    GreedyOrderPlanner,
    InvariantBasedPolicy,
    MultiPatternEngine,
    StockDatasetSimulator,
)
from repro.workloads import WorkloadGenerator


def main() -> None:
    dataset = StockDatasetSimulator(num_types=18, base_rate=2.5, duration_hint=240.0)
    stream = dataset.generate(duration=240.0, seed=21, max_events=20000)
    print(f"generated {len(stream)} price updates for {dataset.num_types} symbols")

    workload = WorkloadGenerator(dataset, seed=5)
    composite = workload.composite_pattern(4)
    print(f"composite pattern: {composite.name}")
    for index, subpattern in enumerate(composite.subpatterns()):
        symbols = ", ".join(subpattern.type_names())
        print(f"  branch {index + 1}: SEQ over [{symbols}], window {subpattern.window:g}")
    print()

    def make_policy():
        # Each sub-pattern gets its own policy whose distance is derived from
        # the plan's own deciding conditions (davg), re-estimated after every
        # plan replacement.
        return InvariantBasedPolicy(distance=AverageRelativeDifferenceDistance(cap=1.0))

    engine = MultiPatternEngine(
        composite,
        GreedyOrderPlanner(),
        policy_factory=make_policy,
        monitoring_interval=2.0,
    )
    result = engine.run(stream)

    print(f"matches detected (any branch): {result.match_count}")
    print(f"throughput: {result.metrics.throughput:,.0f} events/second")
    print(f"total plan replacements across branches: {result.metrics.reoptimizations}")
    print(f"adaptation overhead: {result.metrics.overhead_fraction:.2%}")
    print()
    for index, sub_engine in enumerate(engine.sub_engines):
        policy = sub_engine.policy
        print(
            f"branch {index + 1}: current plan {sub_engine.current_plan.describe()}, "
            f"davg-derived distance d={policy.current_distance:.3f}, "
            f"{sub_engine.reoptimization_count()} replacements"
        )

    by_branch = {}
    for match in result.matches:
        by_branch[match.pattern_name] = by_branch.get(match.pattern_name, 0) + 1
    print()
    print("matches per branch:")
    for name, count in sorted(by_branch.items()):
        print(f"  {name}: {count}")


if __name__ == "__main__":
    main()

"""Quickstart: the paper's running example (Example 1) end to end.

A building is monitored by three smart cameras:

* camera ``A`` watches the main gate,
* camera ``B`` watches the lobby,
* camera ``C`` watches the restricted area.

We want to detect the same person being seen by A, then B, then C within a
10-minute window — the "intruder entered through the main gate" scenario.
The script builds the pattern, wires up an adaptive CEP engine with the
greedy order-based planner and the invariant-based reoptimization policy,
feeds it a small synthetic stream, and prints the matches together with the
plans the engine used over time.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    AdaptiveCEPEngine,
    EqualityCondition,
    Event,
    EventType,
    GreedyOrderPlanner,
    InMemoryEventStream,
    InvariantBasedPolicy,
    PatternBuilder,
    StatisticsSnapshot,
)


def build_pattern():
    """SEQ(A a, B b, C c) WHERE same person WITHIN 600 seconds."""
    camera_a = EventType("A", description="main gate camera")
    camera_b = EventType("B", description="lobby camera")
    camera_c = EventType("C", description="restricted area camera")
    pattern = (
        PatternBuilder.sequence()
        .event(camera_a, "a")
        .event(camera_b, "b")
        .event(camera_c, "c")
        .where(EqualityCondition("a", "b", "person_id"))
        .where(EqualityCondition("b", "c", "person_id"))
        .within(600.0)
        .named("intruder-via-main-gate")
        .build()
    )
    return pattern, (camera_a, camera_b, camera_c)


def synthesize_stream(cameras, seed: int = 7, duration: float = 3600.0):
    """A synthetic hour of face-recognition notifications.

    Camera A fires often (busy entrance), B less, C rarely — the rate skew
    that makes lazy reordering worthwhile.  A handful of people walk the
    full A → B → C path and should be reported as matches.
    """
    camera_a, camera_b, camera_c = cameras
    rng = random.Random(seed)
    events = []
    t = 0.0
    while t < duration:
        t += rng.expovariate(1.0)  # roughly one notification per second
        roll = rng.random()
        if roll < 0.75:
            camera, person = camera_a, rng.randint(0, 200)
        elif roll < 0.95:
            camera, person = camera_b, rng.randint(0, 60)
        else:
            camera, person = camera_c, rng.randint(0, 20)
        events.append(Event(camera, t, {"person_id": person}))
    return InMemoryEventStream(events)


def main() -> None:
    pattern, cameras = build_pattern()
    stream = synthesize_stream(cameras)

    # Initial statistics: what we believe about the cameras before any data
    # arrives (Algorithm 1's in_stat).  The engine refines these on-line.
    initial = StatisticsSnapshot(
        {"A": 0.75, "B": 0.20, "C": 0.05},
        {("a", "b"): 0.02, ("b", "c"): 0.05},
    )

    engine = AdaptiveCEPEngine(
        pattern=pattern,
        planner=GreedyOrderPlanner(),
        policy=InvariantBasedPolicy(distance=0.1),
        initial_snapshot=initial,
        monitoring_interval=60.0,  # re-check the invariants once a minute
    )

    print(f"initial plan: {engine.current_plan.describe()}")
    print("invariants being monitored:")
    print(engine.controller.policy.invariants.describe())
    print()

    result = engine.run(stream)

    print(f"processed {result.metrics.events_processed} camera notifications")
    print(f"detected {result.match_count} intruder patterns")
    print(f"throughput: {result.metrics.throughput:,.0f} events/second")
    print(f"plan replacements: {result.metrics.reoptimizations}")
    print(f"adaptation overhead: {result.metrics.overhead_fraction:.2%}")
    print()
    print("plans used over the run:")
    for step, plan in enumerate(result.plan_history):
        print(f"  [{step}] {plan}")
    print()
    for match in result.matches[:5]:
        person = match["a"]["person_id"]
        times = [match[v].timestamp for v in ("a", "b", "c")]
        print(
            f"person {person:3d} seen at gate t={times[0]:7.1f}s, "
            f"lobby t={times[1]:7.1f}s, restricted area t={times[2]:7.1f}s"
        )
    if result.match_count > 5:
        print(f"... and {result.match_count - 5} more matches")


if __name__ == "__main__":
    main()

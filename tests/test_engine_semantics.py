"""Unit tests for the shared matching-semantics helpers."""

from __future__ import annotations

import pytest

from repro.conditions import AndCondition, AttributeThresholdCondition, EqualityCondition
from repro.engine.semantics import (
    evaluate_join_conditions,
    evaluate_new_conditions,
    groups_order_respected,
    local_conditions_hold,
    sequence_order_respected,
    window_respected,
)
from repro.events import Event, EventType
from repro.patterns import conjunction, seq
from repro.statistics import StatisticsCollector

A, B, C = EventType("A"), EventType("B"), EventType("C")


def camera_pattern(window=10.0):
    condition = AndCondition(
        [
            EqualityCondition("a", "b", "pid"),
            EqualityCondition("b", "c", "pid"),
            AttributeThresholdCondition("a", "speed", "<", 100),
        ]
    )
    return seq([A, B, C], condition=condition, window=window)


def ev(event_type, t, **payload):
    return Event(event_type, t, payload)


class TestSequenceOrder:
    def test_respects_declared_order(self):
        pattern = camera_pattern()
        bindings = {"a": ev(A, 1, pid=1)}
        assert sequence_order_respected(pattern, bindings, "b", ev(B, 2, pid=1))
        assert not sequence_order_respected(pattern, bindings, "b", ev(B, 0.5, pid=1))

    def test_later_variable_must_be_later(self):
        pattern = camera_pattern()
        bindings = {"c": ev(C, 5, pid=1)}
        assert sequence_order_respected(pattern, bindings, "a", ev(A, 1, pid=1))
        assert not sequence_order_respected(pattern, bindings, "a", ev(A, 9, pid=1))

    def test_conjunction_has_no_order(self):
        pattern = conjunction([A, B], window=10)
        bindings = {"a": ev(A, 5)}
        assert sequence_order_respected(pattern, bindings, "b", ev(B, 1))

    def test_kleene_list_bindings_checked_elementwise(self):
        pattern = camera_pattern()
        bindings = {"b": [ev(B, 3, pid=1), ev(B, 4, pid=1)]}
        assert sequence_order_respected(pattern, bindings, "a", ev(A, 1, pid=1))
        assert not sequence_order_respected(pattern, bindings, "a", ev(A, 3.5, pid=1))


class TestGroupOrder:
    def test_groups_in_order(self):
        pattern = camera_pattern()
        left = {"a": ev(A, 1, pid=1), "b": ev(B, 2, pid=1)}
        right = {"c": ev(C, 3, pid=1)}
        assert groups_order_respected(pattern, left, right)

    def test_groups_out_of_order(self):
        pattern = camera_pattern()
        left = {"a": ev(A, 5, pid=1)}
        right = {"b": ev(B, 2, pid=1)}
        assert not groups_order_respected(pattern, left, right)

    def test_conjunction_groups_any_order(self):
        pattern = conjunction([A, B], window=10)
        assert groups_order_respected(pattern, {"a": ev(A, 9)}, {"b": ev(B, 1)})


class TestWindow:
    def test_within_window(self):
        assert window_respected({"a": ev(A, 1)}, ev(B, 5), window=10)

    def test_outside_window(self):
        assert not window_respected({"a": ev(A, 1)}, ev(B, 50), window=10)

    def test_infinite_window(self):
        assert window_respected({"a": ev(A, 1)}, ev(B, 1e9), window=float("inf"))

    def test_kleene_bindings_included(self):
        bindings = {"k": [ev(B, 1), ev(B, 2)]}
        assert not window_respected(bindings, ev(C, 20), window=10)


class TestConditionEvaluation:
    def test_newly_applicable_conditions_checked(self):
        pattern = camera_pattern()
        bindings = {"a": ev(A, 1, pid=1, speed=10)}
        assert evaluate_new_conditions(pattern, bindings, "b", ev(B, 2, pid=1))
        assert not evaluate_new_conditions(pattern, bindings, "b", ev(B, 2, pid=2))

    def test_local_conditions(self):
        pattern = camera_pattern()
        assert local_conditions_hold(pattern, "a", ev(A, 1, pid=1, speed=10))
        assert not local_conditions_hold(pattern, "a", ev(A, 1, pid=1, speed=200))
        # b has no local conditions.
        assert local_conditions_hold(pattern, "b", ev(B, 1, pid=1))

    def test_join_conditions(self):
        pattern = camera_pattern()
        left = {"a": ev(A, 1, pid=1, speed=10), "b": ev(B, 2, pid=1)}
        right = {"c": ev(C, 3, pid=1)}
        assert evaluate_join_conditions(pattern, left, right)
        right_bad = {"c": ev(C, 3, pid=9)}
        assert not evaluate_join_conditions(pattern, left, right_bad)

    def test_condition_outcomes_reported_to_collector(self):
        pattern = camera_pattern()
        collector = StatisticsCollector(window=100.0)
        collector.register_pattern(pattern)
        bindings = {"a": ev(A, 1, pid=1, speed=10)}
        evaluate_new_conditions(pattern, bindings, "b", ev(B, 2, pid=1), collector)
        evaluate_new_conditions(pattern, bindings, "b", ev(B, 3, pid=2), collector)
        evaluate_new_conditions(pattern, bindings, "b", ev(B, 4, pid=3), collector)
        selectivity = collector.snapshot().selectivity("a", "b")
        # One success out of three attempts, blended with the prior.
        assert selectivity < 0.5

    def test_local_condition_feedback_uses_self_pair(self):
        pattern = camera_pattern()
        collector = StatisticsCollector(window=100.0)
        collector.register_pattern(pattern)
        for index in range(10):
            local_conditions_hold(pattern, "a", ev(A, index, pid=1, speed=200), collector)
        assert collector.snapshot().local_selectivity("a") < 0.4

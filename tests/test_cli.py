"""Tests for the experiments command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.dataset == "traffic"
        assert args.algorithm == "greedy"

    def test_sweep_distances_option(self):
        args = build_parser().parse_args(["sweep", "--distances", "0,0.2"])
        assert args.distances == "0,0.2"

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "bogus"])

    def test_parallel_defaults(self):
        args = build_parser().parse_args(["parallel"])
        assert args.shards == 1
        assert args.partition_by is None
        assert args.batch_size == 256
        assert args.executor == "serial"
        assert args.shard_counts == "2,4"

    def test_scale_out_options_on_compare(self):
        args = build_parser().parse_args(
            ["compare", "--shards", "2", "--partition-by", "entity_id", "--batch-size", "64"]
        )
        assert args.shards == 2
        assert args.partition_by == "entity_id"
        assert args.batch_size == 64

    def test_invalid_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--executor", "bogus"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.source == "synthetic"
        assert args.rate == 0.0
        assert args.sink is None
        assert args.checkpoint_dir is None
        assert args.checkpoint_every == 10000
        assert args.overflow == "backpressure"

    def test_serve_invalid_overflow_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--overflow", "bogus"])

    def test_stream_bench_rates_option(self):
        args = build_parser().parse_args(["stream-bench", "--rates", "0,5000"])
        assert args.rates == "0,5000"
        assert args.size == 3

    def test_compile_bench_defaults(self):
        args = build_parser().parse_args(["compile-bench"])
        assert args.size == 3
        assert args.entities == 8
        assert args.trials == 1
        assert args.json == "BENCH_compile.json"
        assert args.enforce is False

    def test_compile_mode_option(self):
        args = build_parser().parse_args(["serve", "--compile-mode", "indexed"])
        assert args.compile_mode == "indexed"

    def test_invalid_compile_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--compile-mode", "jit"])


class TestExecution:
    COMMON = ["--duration", "25", "--max-events", "1200", "--sizes", "3", "--monitoring-interval", "2"]

    def test_compare_runs(self, capsys, tmp_path):
        csv_path = tmp_path / "rows.csv"
        exit_code = main(["compare", *self.COMMON, "--csv", str(csv_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "throughput" in output
        assert csv_path.exists()
        assert "method" in csv_path.read_text().splitlines()[0]

    def test_sweep_runs(self, capsys):
        exit_code = main(["sweep", *self.COMMON, "--distances", "0,0.2"])
        assert exit_code == 0
        assert "dopt" in capsys.readouterr().out

    def test_ablation_k_runs(self, capsys):
        exit_code = main(["ablation-k", *self.COMMON])
        assert exit_code == 0
        assert "num_invariants" in capsys.readouterr().out

    def test_table1_runs(self, capsys):
        exit_code = main(["table1", "--duration", "25", "--max-events", "1000"])
        assert exit_code == 0
        assert "davg" in capsys.readouterr().out

    def test_parallel_runs(self, capsys, tmp_path):
        csv_path = tmp_path / "parallel.csv"
        exit_code = main(
            [
                "parallel",
                "--dataset",
                "stocks",
                *self.COMMON,
                "--shard-counts",
                "2",
                "--csv",
                str(csv_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "sequential" in output and "sharded(2)" in output
        assert "match counts" in output
        assert csv_path.exists()

    def test_compare_runs_sharded(self, capsys):
        exit_code = main(["compare", *self.COMMON, "--shards", "2"])
        assert exit_code == 0
        assert "throughput" in capsys.readouterr().out

    def test_serve_runs_with_sink_and_checkpoints(self, capsys, tmp_path):
        sink_path = tmp_path / "matches.jsonl"
        exit_code = main(
            [
                "serve",
                "--dataset",
                "stocks",
                *self.COMMON,
                "--size",
                "3",
                "--sink",
                str(sink_path),
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
                "--checkpoint-every",
                "500",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "pipeline stopped (source-exhausted)" in output
        assert "pipeline metrics" in output
        assert sink_path.exists()
        assert (tmp_path / "ckpt").is_dir()

    def test_serve_resumes_from_checkpoint(self, capsys, tmp_path):
        serve_args = [
            "serve",
            "--dataset",
            "stocks",
            *self.COMMON,
            "--checkpoint-dir",
            str(tmp_path / "ckpt"),
            "--checkpoint-every",
            "300",
        ]
        assert main([*serve_args, "--serve-events", "600"]) == 0
        capsys.readouterr()
        assert main(serve_args) == 0
        assert "resumed from event 600" in capsys.readouterr().out

    def test_compile_bench_runs_and_reports_gate(self, capsys, tmp_path):
        json_path = tmp_path / "bench.json"
        csv_path = tmp_path / "bench.csv"
        exit_code = main(
            [
                "compile-bench",
                "--dataset",
                "stocks",
                "--duration",
                "20",
                "--max-events",
                "800",
                "--size",
                "3",
                "--monitoring-interval",
                "2",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert csv_path.exists()
        report = json.loads(json_path.read_text())
        assert report["bench"] == "compile"
        assert {row["mode"] for row in report["rows"]} == {
            "interpreted",
            "compiled",
            "indexed",
        }
        # Tiny workloads make speed gates noisy, but byte-identical matches
        # must hold at any size.
        assert all(row["matches_ok"] == 1.0 for row in report["rows"])

    def test_stream_bench_runs(self, capsys, tmp_path):
        csv_path = tmp_path / "rates.csv"
        exit_code = main(
            [
                "stream-bench",
                "--dataset",
                "stocks",
                *self.COMMON,
                "--rates",
                "0",
                "--csv",
                str(csv_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "offered rate" in output
        assert csv_path.exists()

"""Incremental (delta) checkpoints: framing, chains, the store's epoch log.

The contract under test is the one the crash-recovery suite relies on:
replaying ``base + deltas`` rebuilds exactly the engine state of the
newest epoch — same tracked collections, same forward behaviour — while
writing measurably fewer bytes than a full snapshot at the same cadence.
Torn files must fail loudly (CRC) and degrade to the longest intact
prefix, orphaned temp files must be swept on store open, and directories
written by the pre-delta store format must keep restoring.
"""

from __future__ import annotations

import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.adaptive import InvariantBasedPolicy
from repro.engine import AdaptiveCEPEngine
from repro.engine.state import (
    is_delta_snapshot,
    restore_delta_state,
    restore_engine,
    snapshot_delta_state,
    snapshot_engine,
)
from repro.errors import CheckpointError
from repro.optimizer import GreedyOrderPlanner
from repro.parallel import BroadcastPartitioner, ParallelCEPEngine
from repro.streaming import (
    Checkpoint,
    CheckpointStore,
    DeltaCheckpoint,
    DeltaTracker,
    materialize_engine_blob,
    prime_engine_tracker,
)
from repro.streaming.delta import extract_keyed_state
from tests.conftest import make_camera_stream

SETTINGS = settings(max_examples=20, deadline=None)


def _build_engine(camera_pattern):
    return AdaptiveCEPEngine(
        camera_pattern, GreedyOrderPlanner(), InvariantBasedPolicy()
    )


def _normalized_collections(engine):
    _skeleton, collections = extract_keyed_state(engine)
    return {
        name: (set(value) if isinstance(value, set) else dict(value))
        for name, value in collections.items()
    }


# ----------------------------------------------------------------------
# Frame format
# ----------------------------------------------------------------------
class TestDeltaFraming:
    def test_roundtrip(self):
        payload = {"streams": {"engine": {"kind": "base"}}, "epoch": 3}
        frame = snapshot_delta_state(payload)
        assert is_delta_snapshot(frame)
        assert restore_delta_state(frame)["epoch"] == 3

    def test_crc_detects_corruption(self):
        frame = bytearray(snapshot_delta_state({"streams": {}, "epoch": 0}))
        frame[-1] ^= 0xFF
        with pytest.raises(CheckpointError, match="CRC"):
            restore_delta_state(bytes(frame))

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError, match="magic"):
            restore_delta_state(b"not-a-delta-frame-at-all")

    def test_requires_streams(self):
        with pytest.raises(CheckpointError, match="streams"):
            snapshot_delta_state({"epoch": 1})


# ----------------------------------------------------------------------
# Engine-level snapshot_delta chains
# ----------------------------------------------------------------------
class TestEngineDeltaChains:
    def test_chain_replay_equals_full_snapshot_state(self, camera_pattern):
        engine = _build_engine(camera_pattern)
        events = make_camera_stream(count=900, seed=7).to_list()
        for event in events[:300]:
            engine.process(event)
        base = snapshot_engine(engine)
        prime_engine_tracker(engine, 0)
        frames = []
        for epoch, (lo, hi) in enumerate(
            ((300, 450), (450, 600), (600, 750)), start=1
        ):
            for event in events[lo:hi]:
                engine.process(event)
            frames.append(engine.snapshot_delta(epoch - 1, epoch=epoch))
            restored = restore_engine(materialize_engine_blob(base, frames))
            assert _normalized_collections(restored) == _normalized_collections(
                engine
            ), f"state diverged at epoch {epoch}"

    def test_replayed_engine_behaves_identically(self, camera_pattern):
        engine = _build_engine(camera_pattern)
        events = make_camera_stream(count=900, seed=11).to_list()
        for event in events[:400]:
            engine.process(event)
        base = snapshot_engine(engine)
        prime_engine_tracker(engine, 0)
        for event in events[400:600]:
            engine.process(event)
        frame = engine.snapshot_delta(0, epoch=1)
        restored = restore_engine(materialize_engine_blob(base, [frame]))
        suffix = events[600:900]
        original_matches = [m for e in suffix for m in engine.process(e)]
        restored_matches = [m for e in suffix for m in restored.process(e)]
        assert len(original_matches) == len(restored_matches)
        assert [m.detection_time for m in original_matches] == [
            m.detection_time for m in restored_matches
        ]

    def test_delta_without_base_is_self_contained(self, camera_pattern):
        engine = _build_engine(camera_pattern)
        for event in make_camera_stream(count=200, seed=3):
            engine.process(event)
        frame = engine.snapshot_delta()  # never primed -> base kind
        payload = restore_delta_state(frame)
        assert payload["streams"]["engine"]["kind"] == "base"

    def test_deltas_smaller_than_full_on_aged_engine(self, camera_pattern):
        engine = _build_engine(camera_pattern)
        events = make_camera_stream(count=1200, seed=5).to_list()
        for event in events[:600]:
            engine.process(event)
        prime_engine_tracker(engine, 0)
        for event in events[600:800]:
            engine.process(event)
        frame = engine.snapshot_delta(0, epoch=1)
        full = snapshot_engine(engine)
        assert len(frame) < len(full), (
            f"delta frame ({len(frame)}B) is not smaller than the full "
            f"snapshot ({len(full)}B)"
        )

    def test_parallel_engine_delta_chain(self, camera_pattern):
        engine = ParallelCEPEngine(
            camera_pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=2,
            partitioner=BroadcastPartitioner(),
        )
        events = make_camera_stream(count=600, seed=13).to_list()
        for event in events[:200]:
            engine.process(event)
        base = snapshot_engine(engine)
        prime_engine_tracker(engine, 0)
        for event in events[200:400]:
            engine.process(event)
        frame = engine.snapshot_delta(0, epoch=1)
        restored = restore_engine(materialize_engine_blob(base, [frame]))
        assert _normalized_collections(restored) == _normalized_collections(engine)

    def test_tracker_epoch_mismatch_degrades_to_base(self, camera_pattern):
        engine = _build_engine(camera_pattern)
        for event in make_camera_stream(count=200, seed=17):
            engine.process(event)
        tracker = DeltaTracker(engine)
        tracker.prime(0)
        payload = tracker.encode_payload(since_epoch=99, epoch=100)
        assert payload["kind"] == "base"
        # And a matching epoch after the mismatch chains normally again.
        payload = tracker.encode_payload(since_epoch=100, epoch=101)
        assert payload["kind"] == "delta"


def _camera_pattern():
    from repro.conditions import AndCondition, EqualityCondition
    from repro.events import EventType
    from repro.patterns import seq

    a, b, c = EventType("A"), EventType("B"), EventType("C")
    condition = AndCondition(
        [
            EqualityCondition("a", "b", "person_id"),
            EqualityCondition("b", "c", "person_id"),
        ]
    )
    return seq([a, b, c], condition=condition, window=10.0)


@SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    prefix=st.integers(min_value=50, max_value=250),
    step=st.integers(min_value=30, max_value=120),
    epochs=st.integers(min_value=1, max_value=4),
)
def test_chain_replay_property(seed, prefix, step, epochs):
    """replay(base + deltas) == full state at *every* epoch (Hypothesis)."""
    engine = AdaptiveCEPEngine(
        _camera_pattern(), GreedyOrderPlanner(), InvariantBasedPolicy()
    )
    events = make_camera_stream(count=prefix + step * epochs, seed=seed).to_list()
    for event in events[:prefix]:
        engine.process(event)
    base = snapshot_engine(engine)
    prime_engine_tracker(engine, 0)
    frames = []
    for epoch in range(1, epochs + 1):
        lo = prefix + step * (epoch - 1)
        for event in events[lo : lo + step]:
            engine.process(event)
        frames.append(engine.snapshot_delta(epoch - 1, epoch=epoch))
        restored = restore_engine(materialize_engine_blob(base, frames))
        assert _normalized_collections(restored) == _normalized_collections(engine)


# ----------------------------------------------------------------------
# The checkpoint store as an epoch log
# ----------------------------------------------------------------------
def _checkpoint(engine, events_processed, delta_epoch=None):
    return Checkpoint(
        events_processed=events_processed,
        matches_emitted=0,
        engine_blob=snapshot_engine(engine),
        delta_epoch=delta_epoch,
    )


def _delta_record(frame, base_index, epoch, events_processed):
    return DeltaCheckpoint(
        events_processed=events_processed,
        matches_emitted=0,
        frame=frame,
        base_index=base_index,
        epoch=epoch,
        since_epoch=epoch - 1,
    )


class TestEpochLogStore:
    def _chain(self, tmp_path, camera_pattern, deltas=2):
        """A store holding base + ``deltas`` chained records; returns both."""
        store = CheckpointStore(str(tmp_path / "ckpt"), keep=2)
        engine = _build_engine(camera_pattern)
        events = make_camera_stream(count=800, seed=23).to_list()
        for event in events[:200]:
            engine.process(event)
        base = _checkpoint(engine, 200, delta_epoch=0)
        store.save(base)
        prime_engine_tracker(engine, 0)
        step = 150
        for epoch in range(1, deltas + 1):
            lo = 200 + step * (epoch - 1)
            for event in events[lo : lo + step]:
                engine.process(event)
            frame = engine.snapshot_delta(epoch - 1, epoch=epoch)
            store.save_delta(
                _delta_record(frame, base.index, epoch, lo + step)
            )
        return store, engine

    def test_latest_replays_base_plus_deltas(self, tmp_path, camera_pattern):
        store, engine = self._chain(tmp_path, camera_pattern)
        checkpoint = store.latest()
        assert checkpoint.events_processed == 500
        restored = restore_engine(checkpoint.engine_blob)
        assert _normalized_collections(restored) == _normalized_collections(engine)

    def test_corrupt_delta_truncates_to_intact_prefix(self, tmp_path, camera_pattern):
        store, _engine = self._chain(tmp_path, camera_pattern)
        newest = store._delta_indices()[-1]
        path = store._delta_path(newest)
        with open(path, "r+b") as handle:
            handle.seek(max(0, os.path.getsize(path) // 2))
            handle.write(b"\x00" * 64)
        checkpoint = store.latest()
        assert checkpoint.events_processed == 350  # base + first delta only

    def test_missing_manifest_falls_back_to_scan(self, tmp_path, camera_pattern):
        store, engine = self._chain(tmp_path, camera_pattern)
        os.unlink(os.path.join(store.directory, "manifest.json"))
        checkpoint = store.latest()
        assert checkpoint.events_processed == 500
        restored = restore_engine(checkpoint.engine_blob)
        assert _normalized_collections(restored) == _normalized_collections(engine)

    def test_save_delta_without_base_fails(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "empty"))
        with pytest.raises(CheckpointError, match="no such base"):
            store.save_delta(_delta_record(b"frame", base_index=0, epoch=1, events_processed=10))

    def test_compact_folds_chain_into_new_base(self, tmp_path, camera_pattern):
        store, engine = self._chain(tmp_path, camera_pattern)
        assert store.stats()["deltas"] == 2
        path = store.compact()
        assert path is not None
        checkpoint = store.latest()
        assert checkpoint.events_processed == 500
        assert checkpoint.index == int(os.path.basename(path)[11:-4])
        restored = restore_engine(checkpoint.engine_blob)
        assert _normalized_collections(restored) == _normalized_collections(engine)
        # Compacting an already-bare newest chain is a no-op.
        assert store.compact() is None

    def test_prune_retires_whole_chains(self, tmp_path, camera_pattern):
        store, engine = self._chain(tmp_path, camera_pattern)
        # Two more bases push the delta chain out of the keep=2 horizon.
        store.save(_checkpoint(engine, 600))
        store.save(_checkpoint(engine, 700))
        assert store.stats()["deltas"] == 0
        assert store.stats()["checkpoints"] == 2
        assert store.latest().events_processed == 700

    def test_legacy_full_checkpoints_still_restore(self, tmp_path, camera_pattern):
        """A directory written by the pre-delta format keeps loading."""
        engine = _build_engine(camera_pattern)
        for event in make_camera_stream(count=200, seed=29):
            engine.process(event)
        directory = tmp_path / "legacy"
        directory.mkdir()
        legacy = Checkpoint(
            events_processed=200,
            matches_emitted=4,
            engine_blob=snapshot_engine(engine),
        )
        legacy.index = 7
        with open(directory / "checkpoint-000000007.pkl", "wb") as handle:
            pickle.dump(legacy, handle, protocol=pickle.HIGHEST_PROTOCOL)
        store = CheckpointStore(str(directory))
        checkpoint = store.latest()
        assert checkpoint.events_processed == 200
        assert restore_engine(checkpoint.engine_blob) is not None

    def test_open_sweeps_orphaned_temp_files(self, tmp_path, camera_pattern):
        directory = tmp_path / "swept"
        directory.mkdir()
        orphans = [
            ".checkpoint-deadbeef.tmp",
            ".delta-cafebabe.tmp",
            ".manifest-12345678.tmp",
        ]
        for name in orphans:
            (directory / name).write_bytes(b"torn write")
        keeper = directory / "checkpoint-000000000.pkl"
        engine = _build_engine(camera_pattern)
        with open(keeper, "wb") as handle:
            pickle.dump(
                _checkpoint(engine, 1), handle, protocol=pickle.HIGHEST_PROTOCOL
            )
        unrelated = directory / "notes.tmp"
        unrelated.write_bytes(b"user file with an unlucky suffix")
        CheckpointStore(str(directory))
        remaining = sorted(os.listdir(directory))
        assert remaining == ["checkpoint-000000000.pkl", "notes.tmp"], (
            "store open must sweep its own orphaned temp files and nothing else"
        )

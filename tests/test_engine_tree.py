"""Tests for the tree (ZStream-style) evaluation engine."""

from __future__ import annotations

import pytest

from repro.conditions import AndCondition, AttributeThresholdCondition, EqualityCondition
from repro.engine import LazyNFAEngine, TreeEvaluationEngine
from repro.errors import EngineError
from repro.events import Event, EventType
from repro.patterns import Pattern, PatternItem, PatternOperator, conjunction, seq
from repro.plans import OrderBasedPlan, TreeBasedPlan
from repro.statistics import StatisticsCollector

from tests.conftest import brute_force_sequence_matches, make_camera_stream

A, B, C, D = EventType("A"), EventType("B"), EventType("C"), EventType("D")


def camera_pattern(window=10.0):
    condition = AndCondition(
        [EqualityCondition("a", "b", "person_id"), EqualityCondition("b", "c", "person_id")]
    )
    return seq([A, B, C], condition=condition, window=window)


def run_engine(engine, events):
    matches = []
    for event in events:
        matches.extend(engine.process(event))
    return matches


def ev(event_type, t, **payload):
    return Event(event_type, t, payload)


class TestBasicMatching:
    def test_simple_sequence_match(self):
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(camera_pattern()))
        events = [ev(A, 1, person_id=1), ev(B, 2, person_id=1), ev(C, 3, person_id=1)]
        assert len(run_engine(engine, events)) == 1

    def test_condition_filters_matches(self):
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(camera_pattern()))
        events = [ev(A, 1, person_id=1), ev(B, 2, person_id=9), ev(C, 3, person_id=1)]
        assert run_engine(engine, events) == []

    def test_temporal_order_enforced(self):
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(camera_pattern()))
        events = [ev(B, 1, person_id=1), ev(A, 2, person_id=1), ev(C, 3, person_id=1)]
        assert run_engine(engine, events) == []

    def test_window_enforced(self):
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(camera_pattern(window=5)))
        events = [ev(A, 1, person_id=1), ev(B, 2, person_id=1), ev(C, 30, person_id=1)]
        assert run_engine(engine, events) == []

    def test_tree_shape_does_not_change_results(self):
        pattern = camera_pattern()
        events = [
            ev(A, 1, person_id=1),
            ev(A, 1.5, person_id=1),
            ev(B, 2, person_id=1),
            ev(C, 3, person_id=1),
        ]
        left = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern))
        right = TreeEvaluationEngine(TreeBasedPlan.right_deep(pattern))
        assert len(run_engine(left, list(events))) == len(run_engine(right, list(events))) == 2

    def test_conjunction_any_order(self):
        pattern = conjunction(
            [A, B, C],
            condition=AndCondition(
                [EqualityCondition("a", "b", "person_id"), EqualityCondition("b", "c", "person_id")]
            ),
            window=10,
        )
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern))
        events = [ev(C, 1, person_id=1), ev(B, 2, person_id=1), ev(A, 3, person_id=1)]
        assert len(run_engine(engine, events)) == 1

    def test_local_condition_filters_at_leaf(self):
        pattern = seq(
            [A, B], condition=AttributeThresholdCondition("a", "speed", "<", 50), window=10
        )
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern))
        events = [ev(A, 1, speed=90), ev(B, 2), ev(A, 3, speed=10), ev(B, 4)]
        assert len(run_engine(engine, events)) == 1

    def test_requires_tree_plan(self):
        with pytest.raises(EngineError):
            TreeEvaluationEngine(OrderBasedPlan.in_pattern_order(camera_pattern()))

    def test_four_leaf_tree(self):
        condition = AndCondition(
            [
                EqualityCondition("a", "b", "person_id"),
                EqualityCondition("c", "d", "person_id"),
            ]
        )
        pattern = seq([A, B, C, D], condition=condition, window=10)
        engine = TreeEvaluationEngine(TreeBasedPlan.right_deep(pattern))
        events = [
            ev(A, 1, person_id=1),
            ev(B, 2, person_id=1),
            ev(C, 3, person_id=2),
            ev(D, 4, person_id=2),
        ]
        assert len(run_engine(engine, events)) == 1


class TestAgainstBruteForceAndNFA:
    def test_tree_matches_brute_force(self):
        pattern = camera_pattern()
        stream = make_camera_stream(count=250, seed=11)
        expected = brute_force_sequence_matches(
            stream, ["A", "B", "C"], window=10.0, key="person_id"
        )
        engine = TreeEvaluationEngine(TreeBasedPlan.right_deep(pattern))
        assert len(run_engine(engine, stream)) == expected

    def test_tree_and_nfa_agree_on_match_sets(self):
        pattern = camera_pattern()
        stream = make_camera_stream(count=200, seed=13)
        nfa = LazyNFAEngine(OrderBasedPlan(pattern, ("c", "b", "a")))
        tree = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern))
        nfa_matches = {m.event_ids() for m in run_engine(nfa, stream)}
        tree_matches = {m.event_ids() for m in run_engine(tree, stream)}
        assert nfa_matches == tree_matches


class TestPartialMatchAccounting:
    def test_cheaper_tree_stores_fewer_submatches(self):
        pattern = camera_pattern()
        stream = make_camera_stream(count=400, seed=17)  # A much more frequent
        # Joining the rare types (B, C) first stores fewer intermediate matches
        # than joining A with B first.
        expensive = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern))
        cheap = TreeEvaluationEngine(TreeBasedPlan.right_deep(pattern))
        run_engine(expensive, stream)
        run_engine(cheap, stream)
        assert (
            cheap.counters.partial_matches_created
            < expensive.counters.partial_matches_created
        )

    def test_stored_match_counts_by_node(self):
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(camera_pattern()))
        run_engine(
            engine,
            [ev(A, 1, person_id=1), ev(B, 2, person_id=1), ev(C, 3, person_id=1)],
        )
        counts = engine.stored_match_counts()
        assert counts[("a",)] == 1
        assert counts[("a", "b")] == 1

    def test_expiry_prunes_stores(self):
        pattern = camera_pattern(window=2.0)
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern))
        engine.process(ev(A, 1, person_id=1))
        engine.process(ev(A, 50, person_id=1))
        engine.expire(50.0)
        assert engine.partial_match_count() == 1

    def test_collector_receives_condition_feedback(self):
        collector = StatisticsCollector(window=50.0)
        pattern = camera_pattern()
        collector.register_pattern(pattern)
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern), collector)
        run_engine(engine, make_camera_stream(count=200, seed=19))
        assert 0.05 < collector.snapshot().selectivity("a", "b") < 0.5


class TestNegationAndKleene:
    def test_negation_suppression(self):
        items = [
            PatternItem("a", A),
            PatternItem("n", B, negated=True),
            PatternItem("c", C),
        ]
        condition = AndCondition(
            [EqualityCondition("a", "c", "person_id"), EqualityCondition("a", "n", "person_id")]
        )
        pattern = Pattern(PatternOperator.SEQUENCE, items, condition=condition, window=10)
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern))
        blocked = run_engine(
            engine,
            [ev(A, 1, person_id=1), ev(B, 2, person_id=1), ev(C, 3, person_id=1)],
        )
        assert blocked == []
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern))
        allowed = run_engine(engine, [ev(A, 1, person_id=1), ev(C, 3, person_id=1)])
        assert len(allowed) == 1

    def test_kleene_expansion(self):
        items = [
            PatternItem("a", A),
            PatternItem("k", B, kleene=True),
            PatternItem("c", C),
        ]
        condition = AndCondition(
            [EqualityCondition("a", "k", "person_id"), EqualityCondition("a", "c", "person_id")]
        )
        pattern = Pattern(PatternOperator.SEQUENCE, items, condition=condition, window=10)
        engine = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern))
        matches = run_engine(
            engine,
            [
                ev(A, 1, person_id=1),
                ev(B, 2, person_id=1),
                ev(B, 2.5, person_id=1),
                ev(C, 3, person_id=1),
            ],
        )
        assert len(matches) == 1
        assert len(matches[0]["k"]) == 2

"""Tests for the dataset simulators and the workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    ConfigurableDatasetSimulator,
    StockDatasetSimulator,
    TrafficDatasetSimulator,
    dataset_by_name,
)
from repro.errors import DatasetError
from repro.events import EventType
from repro.patterns import CompositePattern, Pattern
from repro.statistics import ConstantValue
from repro.workloads import PATTERN_FAMILIES, WorkloadGenerator


class TestTrafficDataset:
    def test_generation_is_deterministic(self):
        first = TrafficDatasetSimulator(num_types=6, duration_hint=50).generate(50, seed=3)
        second = TrafficDatasetSimulator(num_types=6, duration_hint=50).generate(50, seed=3)
        assert len(first) == len(second)
        assert [e.timestamp for e in first][:20] == [e.timestamp for e in second][:20]

    def test_rates_are_skewed(self):
        dataset = TrafficDatasetSimulator(num_types=10, base_rate=8.0)
        rates = [dataset.true_rate(name, 0.0) for name in dataset.type_names()]
        assert max(rates) / min(rates) > 3.0

    def test_shifts_change_rates(self):
        dataset = TrafficDatasetSimulator(num_types=8, num_shifts=4, duration_hint=100)
        changed = 0
        for name in dataset.type_names():
            if abs(dataset.true_rate(name, 99.0) - dataset.true_rate(name, 0.0)) > 1e-9:
                changed += 1
        assert changed >= 2

    def test_no_shifts_means_constant_rates(self):
        dataset = TrafficDatasetSimulator(num_types=6, num_shifts=0, duration_hint=100)
        for name in dataset.type_names():
            assert dataset.true_rate(name, 0.0) == dataset.true_rate(name, 90.0)

    def test_observed_counts_track_true_rates(self):
        dataset = TrafficDatasetSimulator(num_types=6, base_rate=10.0, num_shifts=0, duration_hint=60)
        stream = dataset.generate(60, seed=1)
        counts = stream.count_by_type()
        for name in dataset.type_names():
            expected = dataset.true_rate(name, 0.0) * 60
            assert counts.get(name, 0) == pytest.approx(expected, rel=0.35)

    def test_payload_attributes(self):
        dataset = TrafficDatasetSimulator(num_types=4, duration_hint=20)
        stream = dataset.generate(20)
        event = stream[0]
        assert "avg_speed" in event and "vehicle_count" in event and "point_id" in event

    def test_condition_between_semantics(self):
        dataset = TrafficDatasetSimulator(num_types=4)
        condition = dataset.condition_between("a", "b")
        from repro.events import Event

        up = Event(EventType("P00"), 1.0, {"avg_speed": 50, "vehicle_count": 30})
        up_more = Event(EventType("P01"), 2.0, {"avg_speed": 80, "vehicle_count": 60})
        down = Event(EventType("P01"), 2.0, {"avg_speed": 20, "vehicle_count": 60})
        assert condition.evaluate({"a": up, "b": up_more})
        assert not condition.evaluate({"a": up, "b": down})

    def test_initial_snapshot_covers_pattern(self):
        dataset = TrafficDatasetSimulator(num_types=8)
        pattern = WorkloadGenerator(dataset).sequence_pattern(4)
        snapshot = dataset.initial_snapshot(pattern)
        for item in pattern.items:
            assert snapshot.has_rate(item.event_type.name)
        for pair in pattern.conditions.variable_pairs():
            assert snapshot.selectivity(*pair) == dataset.nominal_selectivity()

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            TrafficDatasetSimulator(num_types=1)
        with pytest.raises(DatasetError):
            TrafficDatasetSimulator(num_shifts=-1)
        with pytest.raises(DatasetError):
            TrafficDatasetSimulator(shift_fraction=0.0)

    def test_max_events_cap(self):
        dataset = TrafficDatasetSimulator(num_types=6, base_rate=10.0, duration_hint=100)
        stream = dataset.generate(100, max_events=500)
        assert len(stream) <= 500


class TestStockDataset:
    def test_rates_are_near_uniform(self):
        dataset = StockDatasetSimulator(num_types=10, base_rate=3.0)
        rates = [dataset.true_rate(name, 0.0) for name in dataset.type_names()]
        assert max(rates) / min(rates) < 2.0

    def test_rates_fluctuate_over_time(self):
        dataset = StockDatasetSimulator(num_types=5, duration_hint=100)
        name = dataset.type_names()[0]
        samples = [dataset.true_rate(name, t) for t in np.linspace(0, 100, 50)]
        assert max(samples) - min(samples) > 0.1 * np.mean(samples)

    def test_rates_stay_positive(self):
        dataset = StockDatasetSimulator(num_types=5, duration_hint=200)
        for name in dataset.type_names():
            for t in np.linspace(0, 200, 40):
                assert dataset.true_rate(name, t) > 0

    def test_payload_has_price_and_diff(self):
        dataset = StockDatasetSimulator(num_types=4, duration_hint=20)
        stream = dataset.generate(20)
        assert "price" in stream[0] and "diff" in stream[0]

    def test_condition_between_uses_margin(self):
        dataset = StockDatasetSimulator(num_types=4)
        condition = dataset.condition_between("a", "b")
        from repro.events import Event

        small = Event(EventType("K00"), 1.0, {"diff": 0.0})
        big = Event(EventType("K01"), 2.0, {"diff": 3.0})
        close = Event(EventType("K01"), 2.0, {"diff": 0.5})
        assert condition.evaluate({"a": small, "b": big})
        assert not condition.evaluate({"a": small, "b": close})

    def test_generation_deterministic(self):
        first = StockDatasetSimulator(num_types=4, duration_hint=30).generate(30, seed=9)
        second = StockDatasetSimulator(num_types=4, duration_hint=30).generate(30, seed=9)
        assert len(first) == len(second)


class TestConfigurableDataset:
    def test_custom_rates_and_payload(self):
        types = [EventType("X"), EventType("Y")]
        dataset = ConfigurableDatasetSimulator(
            types,
            {"X": ConstantValue(5.0), "Y": ConstantValue(1.0)},
            payload_generator=lambda name, t, rng: {"value": 0.5},
        )
        stream = dataset.generate(20, seed=1)
        counts = stream.count_by_type()
        assert counts["X"] > counts["Y"]
        assert stream[0]["value"] == 0.5

    def test_missing_rate_model_rejected(self):
        with pytest.raises(DatasetError):
            ConfigurableDatasetSimulator(
                [EventType("X")], {"Y": ConstantValue(1.0)}
            )

    def test_condition_and_window_defaults(self):
        types = [EventType("X"), EventType("Y")]
        dataset = ConfigurableDatasetSimulator(
            types, {"X": ConstantValue(1.0), "Y": ConstantValue(1.0)}
        )
        assert dataset.default_window(4) == 8.0
        assert dataset.nominal_selectivity() == 0.5
        assert dataset.condition_between("a", "b") is not None

    def test_invalid_duration(self):
        types = [EventType("X")]
        dataset = ConfigurableDatasetSimulator(types, {"X": ConstantValue(1.0)})
        with pytest.raises(DatasetError):
            dataset.generate(0)


class TestDatasetFactory:
    def test_by_name(self):
        assert isinstance(dataset_by_name("traffic"), TrafficDatasetSimulator)
        assert isinstance(dataset_by_name("stocks"), StockDatasetSimulator)
        assert isinstance(dataset_by_name("NASDAQ"), StockDatasetSimulator)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            dataset_by_name("unknown")


class TestWorkloadGenerator:
    @pytest.fixture
    def workload(self):
        return WorkloadGenerator(TrafficDatasetSimulator(num_types=12), seed=1)

    def test_sequence_pattern(self, workload):
        pattern = workload.sequence_pattern(5)
        assert pattern.size == 5
        assert pattern.is_sequence()
        assert len(pattern.conditions) == 4
        assert len(set(pattern.type_names())) == 5

    def test_conjunction_pattern(self, workload):
        pattern = workload.conjunction_pattern(4)
        assert pattern.is_conjunction()
        assert pattern.size == 4

    def test_negation_pattern(self, workload):
        pattern = workload.negation_pattern(4)
        assert pattern.size == 4
        assert len(pattern.negated_items) == 1
        assert len(pattern.items) == 5

    def test_kleene_pattern(self, workload):
        pattern = workload.kleene_pattern(4)
        assert pattern.size == 4
        assert len(pattern.kleene_items) == 1

    def test_composite_pattern(self, workload):
        pattern = workload.composite_pattern(3)
        assert isinstance(pattern, CompositePattern)
        assert len(pattern.subpatterns()) == 3
        for subpattern in pattern.subpatterns():
            assert subpattern.size == 3

    def test_pattern_family_dispatch(self, workload):
        for family in PATTERN_FAMILIES:
            pattern = workload.pattern(family, 3)
            assert isinstance(pattern, (Pattern, CompositePattern))

    def test_unknown_family_rejected(self, workload):
        with pytest.raises(DatasetError):
            workload.pattern("bogus", 3)

    def test_pattern_set_sizes(self, workload):
        patterns = workload.pattern_set("sequence", sizes=(3, 4, 5))
        assert sorted(patterns) == [3, 4, 5]
        assert patterns[4].size == 4

    def test_all_pattern_sets(self, workload):
        sets = workload.all_pattern_sets(sizes=(3,))
        assert set(sets) == set(PATTERN_FAMILIES)

    def test_deterministic_given_seed(self):
        dataset = TrafficDatasetSimulator(num_types=12)
        first = WorkloadGenerator(dataset, seed=5).sequence_pattern(4)
        second = WorkloadGenerator(dataset, seed=5).sequence_pattern(4)
        assert first.type_names() == second.type_names()

    def test_variant_changes_selection(self, workload):
        base = workload.sequence_pattern(4, variant=0)
        other = workload.sequence_pattern(4, variant=1)
        assert base.type_names() != other.type_names() or base.name != other.name

    def test_size_exceeding_types_rejected(self):
        dataset = TrafficDatasetSimulator(num_types=4)
        with pytest.raises(DatasetError):
            WorkloadGenerator(dataset).sequence_pattern(10)

    def test_window_override(self):
        dataset = TrafficDatasetSimulator(num_types=8)
        workload = WorkloadGenerator(dataset, window=42.0)
        assert workload.sequence_pattern(3).window == 42.0

    def test_types_spread_across_rate_ranking(self, workload):
        pattern = workload.sequence_pattern(6)
        dataset = workload.dataset
        rates = [dataset.true_rate(name, 0.0) for name in pattern.type_names()]
        assert max(rates) / min(rates) > 2.0

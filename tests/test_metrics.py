"""Tests for the run-metrics helpers."""

from __future__ import annotations

import time

import pytest

from repro.metrics import RunMetrics, ThroughputTimer, aggregate_metrics
from repro.metrics.run_metrics import summarize_rows


class TestRunMetrics:
    def test_throughput(self):
        metrics = RunMetrics(events_processed=1000, duration_seconds=2.0)
        assert metrics.throughput == 500.0

    def test_throughput_zero_duration(self):
        assert RunMetrics(events_processed=10, duration_seconds=0.0).throughput == 0.0

    def test_overhead_fraction(self):
        metrics = RunMetrics(
            duration_seconds=10.0, time_in_decision=0.5, time_in_generation=1.5
        )
        assert metrics.adaptation_time == 2.0
        assert metrics.overhead_fraction == pytest.approx(0.2)

    def test_overhead_fraction_capped_at_one(self):
        metrics = RunMetrics(duration_seconds=1.0, time_in_generation=5.0)
        assert metrics.overhead_fraction == 1.0

    def test_relative_gain(self):
        fast = RunMetrics(events_processed=100, duration_seconds=1.0)
        slow = RunMetrics(events_processed=100, duration_seconds=2.0)
        assert fast.relative_gain_over(slow) == pytest.approx(2.0)

    def test_relative_gain_against_zero_baseline(self):
        fast = RunMetrics(events_processed=100, duration_seconds=1.0)
        idle = RunMetrics()
        assert fast.relative_gain_over(idle) == float("inf")
        assert idle.relative_gain_over(idle) == 1.0

    def test_as_row_keys(self):
        row = RunMetrics(events_processed=5, duration_seconds=1.0).as_row()
        assert {"events", "matches", "throughput", "reoptimizations", "overhead"} <= set(row)


class TestAggregation:
    def test_aggregate_sums_counters(self):
        runs = [
            RunMetrics(events_processed=100, duration_seconds=1.0, reoptimizations=2),
            RunMetrics(events_processed=300, duration_seconds=2.0, reoptimizations=1),
        ]
        total = aggregate_metrics(runs)
        assert total.events_processed == 400
        assert total.duration_seconds == 3.0
        assert total.reoptimizations == 3
        assert total.throughput == pytest.approx(400 / 3.0)

    def test_aggregate_empty(self):
        assert aggregate_metrics([]).events_processed == 0

    def test_summarize_rows(self):
        rows = [{"x": 1.0, "y": 2.0}, {"x": 3.0}]
        summary = summarize_rows(rows, ["x", "y"])
        assert summary["x"] == 2.0
        assert summary["y"] == 1.0

    def test_summarize_rows_empty(self):
        assert summarize_rows([], ["x"]) == {"x": 0.0}


class TestThroughputTimer:
    def test_measures_elapsed_time(self):
        timer = ThroughputTimer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_accumulates_over_multiple_uses(self):
        timer = ThroughputTimer()
        with timer:
            time.sleep(0.005)
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed > first

"""Tests for plan migration and the adaptive CEP engine facade."""

from __future__ import annotations

import pytest

from repro.adaptive import InvariantBasedPolicy, StaticPolicy, UnconditionalPolicy
from repro.conditions import AndCondition, EqualityCondition
from repro.engine import (
    AdaptiveCEPEngine,
    LazyNFAEngine,
    MultiPatternEngine,
    PlanMigrationManager,
    TreeEvaluationEngine,
    engine_for_plan,
)
from repro.errors import EngineError
from repro.events import Event, EventType, InMemoryEventStream
from repro.optimizer import GreedyOrderPlanner, ZStreamTreePlanner
from repro.patterns import CompositePattern, seq
from repro.plans import OrderBasedPlan, TreeBasedPlan
from repro.statistics import StatisticsSnapshot

from tests.conftest import brute_force_sequence_matches, make_camera_stream

A, B, C, D = EventType("A"), EventType("B"), EventType("C"), EventType("D")


def camera_pattern(window=10.0):
    condition = AndCondition(
        [EqualityCondition("a", "b", "person_id"), EqualityCondition("b", "c", "person_id")]
    )
    return seq([A, B, C], condition=condition, window=window)


def camera_snapshot():
    return StatisticsSnapshot(
        {"A": 6.0, "B": 2.5, "C": 1.5}, {("a", "b"): 0.2, ("b", "c"): 0.2}
    )


def ev(event_type, t, **payload):
    return Event(event_type, t, payload)


class TestEngineForPlan:
    def test_dispatch_by_plan_type(self):
        pattern = camera_pattern()
        assert isinstance(
            engine_for_plan(OrderBasedPlan.in_pattern_order(pattern)), LazyNFAEngine
        )
        assert isinstance(
            engine_for_plan(TreeBasedPlan.left_deep(pattern)), TreeEvaluationEngine
        )

    def test_unknown_plan_type_rejected(self):
        class FakePlan:
            pass

        with pytest.raises(EngineError):
            engine_for_plan(FakePlan())


class TestPlanMigrationManager:
    def test_switch_counts(self):
        pattern = camera_pattern()
        manager = PlanMigrationManager(
            LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern)), window=10.0
        )
        assert manager.switches_performed == 0
        manager.switch_to(LazyNFAEngine(OrderBasedPlan(pattern, ("c", "b", "a"))), 5.0)
        assert manager.switches_performed == 1
        assert manager.draining_count == 1

    def test_old_engine_retired_after_window(self):
        pattern = camera_pattern(window=5.0)
        manager = PlanMigrationManager(
            LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern)), window=5.0
        )
        manager.switch_to(LazyNFAEngine(OrderBasedPlan(pattern, ("c", "b", "a"))), 10.0)
        manager.process(ev(A, 11, person_id=1))
        assert manager.draining_count == 1
        manager.process(ev(A, 16, person_id=1))
        assert manager.draining_count == 0

    def test_no_duplicate_matches_across_switch(self):
        pattern = camera_pattern()
        manager = PlanMigrationManager(
            LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern)), window=10.0
        )
        matches = []
        matches.extend(manager.process(ev(A, 1, person_id=1)))
        manager.switch_to(LazyNFAEngine(OrderBasedPlan(pattern, ("c", "b", "a"))), 1.5)
        matches.extend(manager.process(ev(B, 2, person_id=1)))
        matches.extend(manager.process(ev(C, 3, person_id=1)))
        # The match spans the switch: only the old (draining) engine reports it.
        assert len(matches) == 1

    def test_all_new_match_reported_once_by_new_engine(self):
        pattern = camera_pattern()
        manager = PlanMigrationManager(
            LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern)), window=10.0
        )
        manager.process(ev(A, 1, person_id=9))
        manager.switch_to(LazyNFAEngine(OrderBasedPlan(pattern, ("c", "b", "a"))), 2.0)
        matches = []
        matches.extend(manager.process(ev(A, 3, person_id=1)))
        matches.extend(manager.process(ev(B, 4, person_id=1)))
        matches.extend(manager.process(ev(C, 5, person_id=1)))
        assert len(matches) == 1

    def test_counters_aggregate_over_engines(self):
        pattern = camera_pattern(window=3.0)
        manager = PlanMigrationManager(
            LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern)), window=3.0
        )
        manager.process(ev(A, 1, person_id=1))
        manager.switch_to(LazyNFAEngine(OrderBasedPlan(pattern, ("c", "b", "a"))), 2.0)
        manager.process(ev(A, 2.5, person_id=1))
        manager.process(ev(A, 30.0, person_id=1))  # retires the old engine
        counters = manager.total_counters()
        assert counters.events_processed >= 4
        assert counters.partial_matches_created >= 2
        assert manager.partial_match_count() >= 0

    def test_invalid_window_rejected(self):
        with pytest.raises(EngineError):
            PlanMigrationManager(
                LazyNFAEngine(OrderBasedPlan.in_pattern_order(camera_pattern())), window=0.0
            )


class TestAdaptiveCEPEngine:
    def test_match_counts_equal_brute_force_despite_adaptation(self):
        stream = make_camera_stream(count=300, seed=0)
        expected = brute_force_sequence_matches(
            stream, ["A", "B", "C"], window=10.0, key="person_id"
        )
        engine = AdaptiveCEPEngine(
            camera_pattern(),
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            initial_snapshot=camera_snapshot(),
            monitoring_interval=2.0,
        )
        result = engine.run(stream)
        assert result.match_count == expected
        assert result.metrics.events_processed == 300

    def test_zstream_engine_agrees_with_greedy_engine(self):
        stream = make_camera_stream(count=300, seed=0)
        greedy_result = AdaptiveCEPEngine(
            camera_pattern(), GreedyOrderPlanner(), InvariantBasedPolicy(),
            initial_snapshot=camera_snapshot(), monitoring_interval=2.0,
        ).run(stream)
        tree_result = AdaptiveCEPEngine(
            camera_pattern(), ZStreamTreePlanner(), InvariantBasedPolicy(k=3),
            initial_snapshot=camera_snapshot(), monitoring_interval=2.0,
        ).run(InMemoryEventStream(list(stream)))
        assert greedy_result.match_count == tree_result.match_count

    def test_static_policy_never_replaces_plan(self):
        engine = AdaptiveCEPEngine(
            camera_pattern(),
            GreedyOrderPlanner(),
            StaticPolicy(),
            initial_snapshot=camera_snapshot(),
            monitoring_interval=1.0,
        )
        engine.run(make_camera_stream(count=200, seed=2))
        assert engine.reoptimization_count() == 0
        assert len(engine.plan_history) == 1

    def test_unconditional_policy_tracks_overhead(self):
        engine = AdaptiveCEPEngine(
            camera_pattern(),
            GreedyOrderPlanner(),
            UnconditionalPolicy(),
            initial_snapshot=camera_snapshot(),
            monitoring_interval=1.0,
        )
        result = engine.run(make_camera_stream(count=200, seed=2))
        assert result.metrics.decisions_evaluated > 10
        assert result.metrics.time_in_generation > 0

    def test_default_initial_plan_is_pattern_order(self):
        engine = AdaptiveCEPEngine(
            camera_pattern(), GreedyOrderPlanner(), InvariantBasedPolicy()
        )
        assert engine.current_plan.order == ("a", "b", "c")

    def test_invalid_monitoring_interval(self):
        with pytest.raises(EngineError):
            AdaptiveCEPEngine(
                camera_pattern(),
                GreedyOrderPlanner(),
                InvariantBasedPolicy(),
                monitoring_interval=0.0,
            )

    def test_process_single_events(self):
        engine = AdaptiveCEPEngine(
            camera_pattern(),
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            initial_snapshot=camera_snapshot(),
        )
        assert engine.process(ev(A, 1, person_id=1)) == []
        assert engine.process(ev(B, 2, person_id=1)) == []
        matches = engine.process(ev(C, 3, person_id=1))
        assert len(matches) == 1

    def test_run_metrics_fields(self):
        engine = AdaptiveCEPEngine(
            camera_pattern(),
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            initial_snapshot=camera_snapshot(),
        )
        metrics = engine.run(make_camera_stream(count=100, seed=4)).metrics
        assert metrics.throughput > 0
        assert 0.0 <= metrics.overhead_fraction <= 1.0
        assert metrics.partial_matches_created > 0


class TestMultiPatternEngine:
    def composite(self):
        first = seq(
            [A, B], condition=EqualityCondition("a", "b", "person_id"), window=5, name="p1"
        )
        second = seq(
            [C, D], condition=EqualityCondition("c", "d", "person_id"), window=5, name="p2"
        )
        return CompositePattern([first, second])

    def test_requires_composite_pattern(self):
        with pytest.raises(EngineError):
            MultiPatternEngine(
                camera_pattern(), GreedyOrderPlanner(), InvariantBasedPolicy
            )

    def test_union_of_subpattern_matches(self):
        engine = MultiPatternEngine(
            self.composite(), GreedyOrderPlanner(), InvariantBasedPolicy
        )
        events = [
            ev(A, 1, person_id=1),
            ev(B, 2, person_id=1),
            ev(C, 3, person_id=2),
            ev(D, 4, person_id=2),
        ]
        matches = []
        for event in events:
            matches.extend(engine.process(event))
        assert {match.pattern_name for match in matches} == {"p1", "p2"}

    def test_run_aggregates_metrics(self):
        engine = MultiPatternEngine(
            self.composite(), GreedyOrderPlanner(), InvariantBasedPolicy
        )
        stream = InMemoryEventStream(
            [ev(A, 1, person_id=1), ev(B, 2, person_id=1), ev(C, 3, person_id=1), ev(D, 4, person_id=1)]
        )
        result = engine.run(stream)
        assert result.metrics.events_processed == 4
        assert result.match_count == 2
        assert len(result.plan_history) >= 2

    def test_each_subpattern_gets_own_policy(self):
        engine = MultiPatternEngine(
            self.composite(), GreedyOrderPlanner(), InvariantBasedPolicy
        )
        policies = {id(sub.policy) for sub in engine.sub_engines}
        assert len(policies) == 2

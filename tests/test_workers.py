"""Tests for the multi-core streaming execution backends (repro.streaming.workers)."""

from __future__ import annotations

import pytest

from repro.adaptive import InvariantBasedPolicy
from repro.engine import AdaptiveCEPEngine
from repro.engine.state import (
    is_shard_snapshot,
    restore_shard_states,
    snapshot_engine,
    snapshot_shard_states,
)
from repro.errors import CheckpointError, StreamingError
from repro.events import EventType
from repro.optimizer import GreedyOrderPlanner
from repro.parallel import (
    BroadcastPartitioner,
    KeyPartitioner,
    ParallelCEPEngine,
    Shard,
    build_replica,
    match_signature,
)
from repro.streaming import (
    CheckpointStore,
    CollectorSink,
    InlineBackend,
    ProcessWorkerBackend,
    ReplaySource,
    StreamingPipeline,
    ThreadWorkerBackend,
    backend_by_name,
)
from tests.conftest import make_camera_stream

from repro.conditions import AndCondition, EqualityCondition
from repro.patterns import seq


def _camera_pattern():
    a, b, c = EventType("A"), EventType("B"), EventType("C")
    condition = AndCondition(
        [
            EqualityCondition("a", "b", "person_id"),
            EqualityCondition("b", "c", "person_id"),
        ]
    )
    return seq([a, b, c], condition=condition, window=10.0)


def _sequential_engine(pattern):
    return AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())


def _parallel_engine(pattern, shards=2, partitioner=None):
    return ParallelCEPEngine(
        pattern,
        GreedyOrderPlanner(),
        InvariantBasedPolicy(),
        shards=shards,
        partitioner=partitioner or BroadcastPartitioner(),
    )


def _signatures(matches):
    return sorted(match_signature(match) for match in matches)


# ----------------------------------------------------------------------
# Shard lifecycle: init / feed / flush
# ----------------------------------------------------------------------
class TestShardFeedLifecycle:
    def test_feed_matches_run_to_completion(self):
        pattern = _camera_pattern()
        events = make_camera_stream(count=200, seed=2).to_list()
        expected = _signatures(_sequential_engine(pattern).run(events).matches)
        assert expected

        shard = Shard(
            0,
            build_replica(
                pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), None, None, 1.0
            ),
        )
        collected = []
        for start in range(0, len(events), 16):
            collected.extend(shard.feed(events[start : start + 16]))
        assert _signatures(collected) == expected
        assert shard.events_fed == len(events)
        assert shard.matches_found == len(collected)

    def test_flush_summarizes_without_new_matches(self):
        pattern = _camera_pattern()
        events = make_camera_stream(count=120, seed=3).to_list()
        shard = Shard(
            1,
            build_replica(
                pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), None, None, 1.0
            ),
        )
        found = shard.feed(events)
        output = shard.flush()
        assert output.shard_id == 1
        assert output.matches == []
        assert output.metrics.events_processed == len(events)
        assert output.metrics.matches_emitted == len(found)
        assert output.plan_history  # the replica's initial plan at minimum


# ----------------------------------------------------------------------
# Shard-state framing
# ----------------------------------------------------------------------
class TestShardStateFraming:
    def test_round_trip(self):
        engine = _sequential_engine(_camera_pattern())
        blob = snapshot_shard_states(
            [snapshot_engine(engine)], {"num_shards": 1, "note": "x"}
        )
        assert is_shard_snapshot(blob)
        blobs, meta = restore_shard_states(blob)
        assert len(blobs) == 1
        assert meta["note"] == "x"

    def test_rejects_non_engine_blobs(self):
        with pytest.raises(CheckpointError, match="snapshot_engine"):
            snapshot_shard_states([b"not-a-frame"])

    def test_rejects_empty(self):
        with pytest.raises(CheckpointError, match="at least one"):
            snapshot_shard_states([])

    def test_rejects_bad_magic(self):
        with pytest.raises(CheckpointError, match="magic"):
            restore_shard_states(b"garbage-bytes-here")

    def test_engine_frame_is_not_shard_frame(self):
        blob = snapshot_engine(_sequential_engine(_camera_pattern()))
        assert not is_shard_snapshot(blob)
        with pytest.raises(CheckpointError):
            restore_shard_states(blob)


# ----------------------------------------------------------------------
# The inline backend (default wrapping)
# ----------------------------------------------------------------------
class TestInlineBackend:
    def test_rejects_non_engine(self):
        with pytest.raises(StreamingError, match="process"):
            InlineBackend(object())

    def test_submit_collect_flush(self):
        pattern = _camera_pattern()
        events = make_camera_stream(count=150, seed=4).to_list()
        expected = _signatures(_sequential_engine(pattern).run(events).matches)

        backend = InlineBackend(_sequential_engine(pattern))
        collected = []
        for event in events:
            backend.submit(event)
            collected.extend(backend.collect())
        collected.extend(backend.flush())
        assert _signatures(collected) == expected

    def test_rejects_worker_checkpoint(self):
        engine = _sequential_engine(_camera_pattern())
        backend = InlineBackend(engine)
        shard_blob = snapshot_shard_states([snapshot_engine(engine)])
        with pytest.raises(CheckpointError, match="multi-worker"):
            backend.restore(shard_blob)

    def test_pipeline_wraps_bare_engine(self):
        pipeline = StreamingPipeline(_sequential_engine(_camera_pattern()), [])
        assert pipeline.backend.name == "inline"


# ----------------------------------------------------------------------
# Worker backends (threads and processes)
# ----------------------------------------------------------------------
@pytest.fixture(params=["thread", "process"])
def backend_name(request):
    return request.param


def _make_backend(name, engine, **kwargs):
    cls = {"thread": ThreadWorkerBackend, "process": ProcessWorkerBackend}[name]
    return cls(engine, **kwargs)


class TestWorkerBackends:
    def test_requires_parallel_engine(self, backend_name):
        with pytest.raises(StreamingError, match="ParallelCEPEngine"):
            _make_backend(backend_name, _sequential_engine(_camera_pattern()))

    def test_matches_equal_sequential(self, backend_name):
        pattern = _camera_pattern()
        events = make_camera_stream(count=250, seed=5).to_list()
        expected = _signatures(_sequential_engine(pattern).run(events).matches)
        assert expected

        backend = _make_backend(
            backend_name, _parallel_engine(pattern), feed_batch=16
        )
        collected = []
        try:
            for event in events:
                backend.submit(event)
                collected.extend(backend.collect())
            collected.extend(backend.flush())
        finally:
            backend.close()
        assert _signatures(collected) == expected

    def test_flush_is_a_barrier(self, backend_name):
        pattern = _camera_pattern()
        events = make_camera_stream(count=100, seed=6).to_list()
        backend = _make_backend(
            backend_name, _parallel_engine(pattern), feed_batch=1000
        )
        try:
            for event in events:
                backend.submit(event)  # feed_batch never reached: all pending
            matches = backend.flush()
            expected = _signatures(_sequential_engine(pattern).run(events).matches)
            assert _signatures(matches) == expected
        finally:
            backend.close()

    def test_snapshot_restore_round_trip(self, backend_name):
        pattern = _camera_pattern()
        events = make_camera_stream(count=300, seed=7).to_list()
        expected = _signatures(_sequential_engine(pattern).run(events).matches)
        split = 150

        first = _make_backend(backend_name, _parallel_engine(pattern), feed_batch=8)
        collected = []
        try:
            for event in events[:split]:
                first.submit(event)
            collected.extend(first.flush())
            blob = first.snapshot()
        finally:
            first.close()
        assert is_shard_snapshot(blob)

        second = _make_backend(backend_name, _parallel_engine(pattern), feed_batch=8)
        try:
            second.restore(blob)
            for event in events[split:]:
                second.submit(event)
            collected.extend(second.flush())
        finally:
            second.close()
        assert _signatures(collected) == expected

    def test_restore_rejects_wrong_shard_count(self, backend_name):
        pattern = _camera_pattern()
        donor = _make_backend(backend_name, _parallel_engine(pattern, shards=3))
        blob = donor.snapshot()  # never started: local replica snapshot
        backend = _make_backend(backend_name, _parallel_engine(pattern, shards=2))
        with pytest.raises(CheckpointError, match="worker count"):
            backend.restore(blob)

    def test_restore_adopts_inline_parallel_checkpoint(self, backend_name):
        """An inline ParallelCEPEngine checkpoint resumes on a worker backend."""
        pattern = _camera_pattern()
        events = make_camera_stream(count=300, seed=8).to_list()
        expected = _signatures(_sequential_engine(pattern).run(events).matches)
        split = 150

        inline_engine = _parallel_engine(pattern)
        collected = []
        for event in events[:split]:
            collected.extend(inline_engine.process(event))
        blob = snapshot_engine(inline_engine)

        backend = _make_backend(backend_name, _parallel_engine(pattern))
        try:
            backend.restore(blob)
            for event in events[split:]:
                backend.submit(event)
            collected.extend(backend.flush())
        finally:
            backend.close()
        assert _signatures(collected) == expected

    def test_close_is_idempotent_and_restartable(self, backend_name):
        pattern = _camera_pattern()
        events = make_camera_stream(count=200, seed=9).to_list()
        expected = _signatures(_sequential_engine(pattern).run(events).matches)
        backend = _make_backend(backend_name, _parallel_engine(pattern))
        collected = []
        for event in events[:100]:
            backend.submit(event)
        collected.extend(backend.flush())
        backend.close()
        backend.close()  # idempotent
        # Restart: worker state survived the stop (processes ship it back).
        for event in events[100:]:
            backend.submit(event)
        collected.extend(backend.flush())
        backend.close()
        assert _signatures(collected) == expected

    def test_plan_history_is_shard_prefixed(self, backend_name):
        backend = _make_backend(backend_name, _parallel_engine(_camera_pattern()))
        history = backend.plan_history()
        assert history
        assert all(entry.startswith("shard ") for entry in history)


class TestWorkerFailure:
    def test_worker_error_propagates(self):
        pattern = _camera_pattern()
        backend = ThreadWorkerBackend(_parallel_engine(pattern), feed_batch=1)

        class _Crashing:
            def process(self, event):
                raise RuntimeError("engine exploded")

        backend._engines[0] = _Crashing()
        try:
            with pytest.raises(StreamingError, match="worker failed"):
                for event in make_camera_stream(count=50, seed=1).to_list():
                    backend.submit(event)
                backend.flush()
        finally:
            backend.close()


# ----------------------------------------------------------------------
# Pipeline integration
# ----------------------------------------------------------------------
class TestPipelineWithWorkers:
    def test_worker_pipeline_matches_inline(self, backend_name):
        pattern = _camera_pattern()
        events = make_camera_stream(count=250, seed=10).to_list()

        inline_sink = CollectorSink()
        StreamingPipeline(
            _sequential_engine(pattern), ReplaySource(events), sinks=[inline_sink]
        ).run()
        expected = _signatures(inline_sink.matches)
        assert expected

        worker_sink = CollectorSink()
        backend = _make_backend(
            backend_name, _parallel_engine(pattern), feed_batch=16
        )
        result = StreamingPipeline(
            backend, ReplaySource(events), sinks=[worker_sink]
        ).run()
        assert _signatures(worker_sink.matches) == expected
        assert result.events_processed == len(events)
        assert result.matches_emitted == len(expected)

    def test_worker_lane_metrics_populated(self, backend_name):
        pattern = _camera_pattern()
        events = make_camera_stream(count=120, seed=12).to_list()
        backend = _make_backend(
            backend_name, _parallel_engine(pattern), feed_batch=8
        )
        pipeline = StreamingPipeline(backend, ReplaySource(events))
        result = pipeline.run()
        lanes = result.metrics.workers
        assert set(lanes) == {0, 1}
        # Broadcast: every worker saw every event.
        assert all(lane.events_processed == len(events) for lane in lanes.values())
        assert all(lane.batches_consumed > 0 for lane in lanes.values())
        row = result.metrics.as_row()
        assert row["workers"] == 2.0
        assert "worker_batch_ms_mean" in row

    def test_keyed_worker_pipeline(self, backend_name):
        pattern = _camera_pattern()
        events = make_camera_stream(count=250, seed=13).to_list()
        expected = _signatures(_sequential_engine(pattern).run(events).matches)
        sink = CollectorSink()
        backend = _make_backend(
            backend_name,
            _parallel_engine(pattern, partitioner=KeyPartitioner("person_id")),
            feed_batch=4,
        )
        StreamingPipeline(backend, ReplaySource(events), sinks=[sink]).run()
        assert _signatures(sink.matches) == expected

    def test_push_mode_submit_drain(self, backend_name):
        pattern = _camera_pattern()
        events = make_camera_stream(count=150, seed=14).to_list()
        expected = _signatures(_sequential_engine(pattern).run(events).matches)
        backend = _make_backend(backend_name, _parallel_engine(pattern))
        pipeline = StreamingPipeline(backend, [], buffer_capacity=512)
        collected = []
        try:
            for event in events:
                assert pipeline.submit(event)
            collected = pipeline.drain()
        finally:
            pipeline.close()
        assert _signatures(collected) == expected

    def test_checkpoint_kill_resume_with_workers(self, backend_name, tmp_path):
        pattern = _camera_pattern()
        events = make_camera_stream(count=400, seed=11).to_list()
        expected = _signatures(_sequential_engine(pattern).run(events).matches)
        assert expected

        sink_path = str(tmp_path / "matches.jsonl")
        store = CheckpointStore(str(tmp_path / "ckpt"))

        from repro.streaming import JSONLMatchWriter

        def build():
            backend = _make_backend(
                backend_name, _parallel_engine(pattern), feed_batch=8
            )
            return StreamingPipeline(
                backend,
                ReplaySource(events),
                sinks=[JSONLMatchWriter(sink_path)],
                checkpoint_store=store,
                checkpoint_every=75,
            )

        first = build().run(max_events=260, final_checkpoint=False)
        assert first.metrics.checkpoints_written == 3  # at 75/150/225
        second = build().run()
        assert second.resumed_from == 225

        import json

        from repro.streaming.sinks import match_record

        expected_lines = sorted(
            json.dumps(match_record(match))
            for match in _sequential_engine(pattern).run(events).matches
        )
        served = sorted(
            line for line in open(sink_path).read().splitlines() if line
        )
        assert served == expected_lines


# ----------------------------------------------------------------------
# Factory and store clock
# ----------------------------------------------------------------------
class TestFactoryAndClock:
    def test_backend_by_name(self):
        engine = _parallel_engine(_camera_pattern())
        assert backend_by_name("inline", engine).name == "inline"
        assert backend_by_name("thread", engine).name == "thread"
        assert backend_by_name("process", engine).name == "process"
        with pytest.raises(StreamingError, match="unknown backend"):
            backend_by_name("gpu", engine)

    def test_checkpoint_store_uses_injected_clock(self, tmp_path):
        from repro.streaming import Checkpoint

        ticks = iter([111.0, 222.0])
        store = CheckpointStore(str(tmp_path), clock=lambda: next(ticks))
        blob = snapshot_engine(_sequential_engine(_camera_pattern()))
        store.save(Checkpoint(events_processed=1, matches_emitted=0, engine_blob=blob))
        store.save(Checkpoint(events_processed=2, matches_emitted=0, engine_blob=blob))
        assert store.load(0).created_at == 111.0
        assert store.load(1).created_at == 222.0

"""Property-based tests for partition safety and streaming deduplication.

Hypothesis drives the two components whose correctness the multi-core
streaming path leans on hardest:

* :class:`~repro.parallel.KeyPartitioner` — routing must be a pure,
  deterministic function of the partition-key *value* (never the event
  identity), so every match whose events share a key lands on exactly one
  shard; the structural safety check must accept key-connected patterns
  and refuse disconnected ones.
* :class:`~repro.parallel.StreamingMatchDeduplicator` — a duplicate
  reported within ``window`` of its first admission must always be
  suppressed, and a first-seen match must never be dropped, whatever the
  eviction clock does in between.
* :class:`~repro.streaming.ReorderBuffer` — for arbitrary bounded-disorder
  inputs the released flow must be a *sorted permutation of the admitted
  events* (non-decreasing timestamps, nothing lost, nothing invented), and
  a lateness bound covering the actual disorder must admit everything in
  exact ``(timestamp, sequence_number)`` order.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.conditions import AndCondition, EqualityCondition  # noqa: E402
from repro.engine import Match  # noqa: E402
from repro.errors import PartitionError  # noqa: E402
from repro.events import Event, EventType  # noqa: E402
from repro.parallel import KeyPartitioner, StreamingMatchDeduplicator  # noqa: E402
from repro.patterns import seq  # noqa: E402
from repro.streaming import ReorderBuffer, bounded_shuffle  # noqa: E402

SETTINGS = settings(max_examples=60, deadline=None)

key_values = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
)


def _event(key_value, extra=0):
    return Event(EventType("E"), 0.0, {"k": key_value, "noise": extra})


# ----------------------------------------------------------------------
# KeyPartitioner routing
# ----------------------------------------------------------------------
class TestKeyPartitionerProperties:
    @SETTINGS
    @given(value=key_values, num_shards=st.integers(1, 16))
    def test_routes_to_exactly_one_shard_in_range(self, value, num_shards):
        (shard,) = KeyPartitioner("k").route(_event(value), num_shards)
        assert 0 <= shard < num_shards

    @SETTINGS
    @given(
        value=key_values,
        num_shards=st.integers(1, 16),
        noise_a=st.integers(),
        noise_b=st.integers(),
    )
    def test_equal_keys_land_on_the_same_shard(
        self, value, num_shards, noise_a, noise_b
    ):
        """Partition safety: routing depends on the key value alone."""
        partitioner = KeyPartitioner("k")
        first = partitioner.route(_event(value, noise_a), num_shards)
        second = partitioner.route(_event(value, noise_b), num_shards)
        assert first == second

    @SETTINGS
    @given(value=st.integers(min_value=-(10**6), max_value=10**6), num_shards=st.integers(1, 16))
    def test_numerically_equal_keys_are_canonicalised(self, value, num_shards):
        """``7 == 7.0`` under the engine's equality joins ⇒ same shard."""
        partitioner = KeyPartitioner("k")
        assert partitioner.route(_event(value), num_shards) == partitioner.route(
            _event(float(value)), num_shards
        )

    @SETTINGS
    @given(num_shards=st.integers(1, 16))
    def test_bool_keys_follow_python_equality(self, num_shards):
        partitioner = KeyPartitioner("k")
        assert partitioner.route(_event(True), num_shards) == partitioner.route(
            _event(1), num_shards
        )
        assert partitioner.route(_event(False), num_shards) == partitioner.route(
            _event(0.0), num_shards
        )

    @SETTINGS
    @given(num_shards=st.integers(1, 16), noise=st.integers())
    def test_missing_key_routes_deterministically(self, num_shards, noise):
        partitioner = KeyPartitioner("k")
        event = Event(EventType("E"), 0.0, {"noise": noise})
        assert partitioner.route(event, num_shards) == partitioner.route(
            event, num_shards
        )


# ----------------------------------------------------------------------
# KeyPartitioner structural safety check
# ----------------------------------------------------------------------
_TYPES = [EventType(chr(ord("A") + index)) for index in range(6)]
_VARIABLES = list("abcdef")


def _chain_pattern(size, drop_edge=None):
    """SEQ of ``size`` items key-joined consecutively (optionally one gap)."""
    conditions = []
    for index, (left, right) in enumerate(zip(_VARIABLES, _VARIABLES[1:][: size - 1])):
        if index == drop_edge:
            continue
        conditions.append(EqualityCondition(left, right, "k"))
    return seq(
        _TYPES[:size],
        condition=AndCondition(conditions) if conditions else None,
        window=10.0,
        variables=_VARIABLES[:size],
    )


class TestKeyPartitionerValidation:
    @SETTINGS
    @given(size=st.integers(2, 6), num_shards=st.integers(2, 8))
    def test_fully_key_connected_patterns_validate(self, size, num_shards):
        KeyPartitioner("k").validate(_chain_pattern(size), num_shards)

    @SETTINGS
    @given(data=st.data(), num_shards=st.integers(2, 8))
    def test_disconnected_patterns_are_refused(self, data, num_shards):
        size = data.draw(st.integers(2, 6))
        drop_edge = data.draw(st.integers(0, size - 2))
        pattern = _chain_pattern(size, drop_edge=drop_edge)
        with pytest.raises(PartitionError):
            KeyPartitioner("k").validate(pattern, num_shards)

    @SETTINGS
    @given(size=st.integers(2, 6))
    def test_single_shard_always_validates(self, size):
        KeyPartitioner("k").validate(_chain_pattern(size, drop_edge=0), 1)


# ----------------------------------------------------------------------
# StreamingMatchDeduplicator window semantics
# ----------------------------------------------------------------------
def _match(signature_id, detection_time):
    event = Event(
        EventType("T"), detection_time, {}, sequence_number=signature_id
    )
    return Match("p", {"x": event}, detection_time)


#: Operation stream: (selector, gap).  selector picks "new match" vs which
#: earlier match to duplicate; gap advances the stream clock.
dedup_ops = st.lists(
    st.tuples(st.integers(0, 9), st.floats(0.0, 5.0, allow_nan=False)),
    min_size=1,
    max_size=80,
)


class TestDeduplicatorProperties:
    @SETTINGS
    @given(window=st.floats(0.5, 20.0, allow_nan=False), ops=dedup_ops)
    def test_window_semantics(self, window, ops):
        """Inside the window duplicates are suppressed; first reports never are.

        The one relaxation the implementation documents: a duplicate whose
        original report has fallen a full window behind the stream clock
        may be re-admitted (its signature was evicted to bound memory) —
        so an admitted duplicate must always be older than ``window``.
        """
        dedup = StreamingMatchDeduplicator(window=window)
        log = []  # matches created so far, in creation order
        now = 0.0
        next_id = 0
        for selector, gap in ops:
            now += gap
            duplicate = selector < 4 and bool(log)
            if duplicate:
                match = log[selector % len(log)]
            else:
                match = _match(next_id, now)
                next_id += 1
                log.append(match)
            admitted = dedup.filter([match], now=now)
            if not duplicate:
                assert admitted == [match], "a first-seen match was dropped"
            elif now - match.detection_time <= window:
                assert admitted == [], (
                    f"duplicate within the window admitted "
                    f"(age {now - match.detection_time:g} <= {window:g})"
                )
            elif admitted:
                assert now - match.detection_time > window

    @SETTINGS
    @given(window=st.floats(0.5, 20.0, allow_nan=False), ops=dedup_ops)
    def test_memory_is_window_bounded(self, window, ops):
        """Tracked signatures never span more than two windows of stream time.

        Eviction runs at most once per window of stream time, so right
        before an eviction the filter may remember up to two windows'
        worth — but never unboundedly more.
        """
        dedup = StreamingMatchDeduplicator(window=window)
        now = 0.0
        next_id = 0
        for _, gap in ops:
            now += gap
            dedup.filter([_match(next_id, now)], now=now)
            next_id += 1
            if dedup._seen:
                oldest = min(dedup._seen.values())
                assert now - oldest <= 2 * window + 1e-9

    def test_distinct_matches_sharing_detection_time_all_admitted(self):
        dedup = StreamingMatchDeduplicator(window=5.0)
        matches = [_match(identifier, 1.0) for identifier in range(4)]
        assert dedup.filter(matches, now=1.0) == matches
        assert dedup.duplicates_dropped == 0


# ----------------------------------------------------------------------
# ReorderBuffer sortedness
# ----------------------------------------------------------------------
#: Arrival flows: per event a timestamp (possibly colliding) drawn freely —
#: arbitrary disorder, not just bounded shuffles.
arrival_timestamps = st.lists(
    st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=80
)


def _arrivals(timestamps):
    return [
        Event(EventType("R"), ts, {}, sequence_number=index)
        for index, ts in enumerate(timestamps)
    ]


class TestReorderBufferProperties:
    @SETTINGS
    @given(timestamps=arrival_timestamps, lateness=st.floats(0.0, 10.0, allow_nan=False))
    def test_released_flow_is_sorted_permutation_of_admitted(
        self, timestamps, lateness
    ):
        """Whatever arrives, the output is sorted and accounts for everything.

        Released (including the end-of-stream flush) + late must partition
        the input exactly; the released flow must be non-decreasing in
        timestamp, with ties broken by sequence number.
        """
        events = _arrivals(timestamps)
        buffer = ReorderBuffer(lateness)
        released = []
        for event in events:
            released.extend(buffer.push(event))
        released.extend(buffer.flush())
        assert len(released) + buffer.late_events == len(events)
        assert buffer.depth == 0
        keys = [(event.timestamp, event.sequence_number) for event in released]
        assert keys == sorted(keys), "released flow is not sorted"
        # Nothing invented, nothing duplicated: the released events are a
        # sub-multiset of the input (identity, not just equal keys).
        released_ids = {id(event) for event in released}
        assert len(released_ids) == len(released)
        event_ids = {id(event) for event in events}
        assert released_ids <= event_ids

    @SETTINGS
    @given(
        timestamps=arrival_timestamps,
        slack=st.floats(0.0, 5.0, allow_nan=False),
        seed=st.integers(0, 2**16),
    )
    def test_bounded_disorder_is_recovered_exactly(self, timestamps, slack, seed):
        """A lateness bound covering the disorder loses nothing.

        ``bounded_shuffle(sorted_events, slack)`` displaces every event by
        less than ``slack`` stream-time units, so a buffer with
        ``max_lateness=slack`` must admit everything and reproduce the
        sorted input exactly.
        """
        events = _arrivals(sorted(timestamps))
        shuffled = bounded_shuffle(events, slack, seed=seed)
        buffer = ReorderBuffer(slack)
        released = []
        for event in shuffled:
            released.extend(buffer.push(event))
        released.extend(buffer.flush())
        assert buffer.late_events == 0
        assert released == events

    @SETTINGS
    @given(timestamps=arrival_timestamps)
    def test_late_events_are_behind_the_watermark(self, timestamps):
        """An event is only ever declared late when the promise was spent."""
        side_channel = []
        buffer = ReorderBuffer(
            1.0, late_policy="side-output", late_sink=side_channel.append
        )
        max_seen = float("-inf")
        for event in _arrivals(timestamps):
            before = len(side_channel)
            buffer.push(event)
            if len(side_channel) > before:
                assert event.timestamp < max_seen - 1.0
            max_seen = max(max_seen, event.timestamp)
        assert buffer.late_events == len(side_channel)

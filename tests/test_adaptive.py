"""Unit tests for the adaptive core (invariants, policies, controller, distances)."""

from __future__ import annotations

import pytest

from repro.adaptive import (
    AdaptationController,
    AverageRelativeDifferenceDistance,
    ConstantThresholdPolicy,
    FixedDistance,
    InvariantBasedPolicy,
    StaticPolicy,
    UnconditionalPolicy,
    average_relative_difference,
    build_invariant_set,
)
from repro.adaptive.distance import MetaAdaptiveDistance
from repro.adaptive.invariants import (
    RandomSelectionStrategy,
    TightestConditionStrategy,
    ViolationProbabilityStrategy,
)
from repro.conditions import AndCondition, EqualityCondition
from repro.errors import AdaptationError
from repro.events import EventType
from repro.optimizer import GreedyOrderPlanner, ZStreamTreePlanner
from repro.patterns import seq
from repro.statistics import StatisticsSnapshot


A, B, C = EventType("A"), EventType("B"), EventType("C")


def camera_pattern():
    condition = AndCondition(
        [EqualityCondition("a", "b", "pid"), EqualityCondition("b", "c", "pid")]
    )
    return seq([A, B, C], condition=condition, window=10.0)


def snapshot(a=100.0, b=15.0, c=10.0, sel_ab=0.3, sel_bc=0.2, t=0.0):
    return StatisticsSnapshot(
        {"A": a, "B": b, "C": c}, {("a", "b"): sel_ab, ("b", "c"): sel_bc}, timestamp=t
    )


def generate(planner=None, snap=None):
    planner = planner or GreedyOrderPlanner()
    return planner.generate(camera_pattern(), snap or snapshot())


class TestInvariantSet:
    def test_basic_method_selects_one_invariant_per_block(self):
        result = generate()
        invariants = build_invariant_set(result, k=1)
        # Blocks with non-empty DCS: positions 1 and 2 -> two invariants.
        assert len(invariants) == 2

    def test_tightest_condition_selected(self):
        result = generate()
        invariants = build_invariant_set(result, k=1)
        # The paper's example: the tightest condition of DCS1 is rateC < rateB.
        first = invariants.invariants[0]
        assert "rate(B)" in first.condition.rhs.describe()

    def test_k_invariant_method_selects_more(self):
        result = generate()
        assert len(build_invariant_set(result, k=2)) == 3
        assert len(build_invariant_set(result, k=0)) == result.total_conditions()

    def test_no_violation_when_statistics_unchanged(self):
        result = generate()
        invariants = build_invariant_set(result, k=1)
        assert invariants.first_violated(snapshot()) is None

    def test_violation_detected_when_order_flips(self):
        result = generate()
        invariants = build_invariant_set(result, k=1)
        flipped = snapshot(c=30.0)  # C's rate now exceeds B's
        violated = invariants.first_violated(flipped)
        assert violated is not None
        assert "rate(C)" in violated.condition.lhs.describe()

    def test_first_violated_respects_order(self):
        result = generate()
        invariants = build_invariant_set(result, k=1)
        # Both blocks violated; the first (position 1) must be reported.
        wild = snapshot(a=1.0, b=2.0, c=300.0)
        violated = invariants.first_violated(wild)
        assert violated is invariants.invariants[0]

    def test_violations_lists_all(self):
        result = generate()
        invariants = build_invariant_set(result, k=1)
        # C overtakes B (first invariant) and B's step expression overtakes A
        # (second invariant): both are reported by violations().
        wild = snapshot(a=1.0, b=100.0, c=300.0)
        assert len(invariants.violations(wild)) == 2

    def test_distance_suppresses_small_changes(self):
        result = generate()
        strict = build_invariant_set(result, k=1, distance=0.0)
        relaxed = build_invariant_set(result, k=1, distance=0.5)
        slightly_flipped = snapshot(c=16.0)  # C barely exceeds B
        assert strict.is_violated(slightly_flipped)
        assert not relaxed.is_violated(slightly_flipped)
        strongly_flipped = snapshot(c=40.0)
        assert relaxed.is_violated(strongly_flipped)

    def test_negative_distance_rejected(self):
        with pytest.raises(AdaptationError):
            build_invariant_set(generate(), distance=-0.1)

    def test_per_block_distance_override(self):
        result = generate()
        labels = [s.block_label for s in result.condition_sets]
        invariants = build_invariant_set(
            result, k=1, distance=0.0, per_block_distances={labels[0]: 2.0}
        )
        assert invariants.invariants[0].distance == 2.0
        assert invariants.invariants[1].distance == 0.0

    def test_describe_mentions_blocks(self):
        text = build_invariant_set(generate(), k=1).describe()
        assert "pos1" in text


class TestSelectionStrategies:
    def test_tightest_strategy(self):
        result = generate()
        strategy = TightestConditionStrategy()
        selected = strategy.select(result.condition_sets[0], result.snapshot, 1)
        assert "rate(B)" in selected[0].rhs.describe()

    def test_violation_probability_strategy_defaults_to_tight(self):
        result = generate()
        strategy = ViolationProbabilityStrategy()
        selected = strategy.select(result.condition_sets[0], result.snapshot, 1)
        assert "rate(B)" in selected[0].rhs.describe()

    def test_violation_probability_custom_scorer(self):
        result = generate()
        # Prefer the condition against A by scoring it highest.
        strategy = ViolationProbabilityStrategy(
            probability=lambda condition, snap: 1.0
            if "rate(A)" in condition.rhs.describe()
            else 0.0
        )
        selected = strategy.select(result.condition_sets[0], result.snapshot, 1)
        assert "rate(A)" in selected[0].rhs.describe()

    def test_random_strategy_deterministic_per_seed(self):
        result = generate()
        strategy = RandomSelectionStrategy(seed=1)
        first = strategy.select(result.condition_sets[0], result.snapshot, 1)
        second = strategy.select(result.condition_sets[0], result.snapshot, 1)
        assert [c.describe() for c in first] == [c.describe() for c in second]

    def test_empty_set_selects_nothing(self):
        result = generate()
        empty = result.condition_sets[-1]
        assert TightestConditionStrategy().select(empty, result.snapshot, 1) == []
        assert ViolationProbabilityStrategy().select(empty, result.snapshot, 1) == []


class TestDistanceEstimators:
    def test_average_relative_difference_formula(self):
        result = generate()
        davg = average_relative_difference(result.condition_sets, result.snapshot)
        # Conditions: C<B (rel 0.5), C<A (rel 9), B*sel(b,c)=3<A (rel 97/3)
        assert davg == pytest.approx((0.5 + 9.0 + (100.0 / 3.0 - 1.0)) / 3.0, rel=1e-6)

    def test_average_relative_difference_empty(self):
        assert average_relative_difference([], snapshot()) == 0.0

    def test_fixed_distance(self):
        assert FixedDistance(0.25).distance_for(generate()) == 0.25
        with pytest.raises(AdaptationError):
            FixedDistance(-1.0)

    def test_davg_estimator_with_cap(self):
        estimator = AverageRelativeDifferenceDistance(cap=0.5)
        assert estimator.distance_for(generate()) == 0.5

    def test_meta_adaptive_increases_on_low_gain(self):
        estimator = MetaAdaptiveDistance(initial_distance=0.1, target_gain=0.2)
        estimator.observe_adaptation(previous_cost=100.0, new_cost=99.0)
        assert estimator.current_distance > 0.1

    def test_meta_adaptive_decreases_on_high_gain(self):
        estimator = MetaAdaptiveDistance(initial_distance=0.5, target_gain=0.1)
        estimator.observe_adaptation(previous_cost=100.0, new_cost=10.0)
        assert estimator.current_distance < 0.5

    def test_meta_adaptive_invalid_parameters(self):
        with pytest.raises(AdaptationError):
            MetaAdaptiveDistance(initial_distance=-1)
        with pytest.raises(AdaptationError):
            MetaAdaptiveDistance(adjustment=0.9)


class TestPolicies:
    def test_static_policy_never_adapts(self):
        policy = StaticPolicy()
        assert not policy.should_reoptimize(snapshot()).reoptimize

    def test_unconditional_policy_always_adapts(self):
        policy = UnconditionalPolicy()
        assert policy.should_reoptimize(snapshot()).reoptimize

    def test_threshold_policy_requires_reference(self):
        policy = ConstantThresholdPolicy(0.5)
        assert policy.should_reoptimize(snapshot()).reoptimize  # no reference yet
        policy.on_plan_installed(generate(), snapshot())
        assert not policy.should_reoptimize(snapshot()).reoptimize

    def test_threshold_policy_triggers_on_large_deviation(self):
        policy = ConstantThresholdPolicy(0.5)
        policy.on_plan_installed(generate(), snapshot())
        assert not policy.should_reoptimize(snapshot(a=120.0)).reoptimize  # 20% < 50%
        assert policy.should_reoptimize(snapshot(a=200.0)).reoptimize  # 100% > 50%

    def test_threshold_policy_detects_selectivity_drift(self):
        policy = ConstantThresholdPolicy(0.5)
        policy.on_plan_installed(generate(), snapshot())
        assert policy.should_reoptimize(snapshot(sel_ab=0.9)).reoptimize

    def test_threshold_negative_rejected(self):
        with pytest.raises(AdaptationError):
            ConstantThresholdPolicy(-0.1)

    def test_invariant_policy_no_false_positive_on_unchanged_stats(self):
        policy = InvariantBasedPolicy()
        policy.on_plan_installed(generate(), snapshot())
        assert not policy.should_reoptimize(snapshot()).reoptimize

    def test_invariant_policy_detects_order_flip(self):
        policy = InvariantBasedPolicy()
        policy.on_plan_installed(generate(), snapshot())
        decision = policy.should_reoptimize(snapshot(c=30.0))
        assert decision.reoptimize
        assert decision.violated_invariant is not None

    def test_invariant_policy_before_first_plan(self):
        policy = InvariantBasedPolicy()
        assert policy.should_reoptimize(snapshot()).reoptimize

    def test_invariant_policy_distance_estimator(self):
        policy = InvariantBasedPolicy(distance=AverageRelativeDifferenceDistance(cap=0.3))
        policy.on_plan_installed(generate(), snapshot())
        assert policy.current_distance == pytest.approx(0.3)

    def test_invariant_policy_ignores_irrelevant_rate_changes(self):
        """Changing A's rate (the least sensitive type) must not trigger."""
        policy = InvariantBasedPolicy()
        policy.on_plan_installed(generate(), snapshot())
        assert not policy.should_reoptimize(snapshot(a=500.0)).reoptimize


class TestAdaptationController:
    def test_initial_plan_installed(self):
        controller = AdaptationController(
            camera_pattern(), GreedyOrderPlanner(), InvariantBasedPolicy(), snapshot()
        )
        assert controller.has_plan
        assert controller.current_plan.order == ("c", "b", "a")

    def test_no_plan_raises_until_update(self):
        controller = AdaptationController(
            camera_pattern(), GreedyOrderPlanner(), InvariantBasedPolicy()
        )
        with pytest.raises(AdaptationError):
            controller.current_plan
        controller.update(snapshot())
        assert controller.has_plan

    def test_no_reoptimization_without_changes(self):
        controller = AdaptationController(
            camera_pattern(), GreedyOrderPlanner(), InvariantBasedPolicy(), snapshot()
        )
        assert controller.update(snapshot(t=1.0)) is None
        assert controller.statistics.plans_replaced == 0
        assert controller.statistics.plans_generated == 1

    def test_reoptimization_installs_better_plan(self):
        controller = AdaptationController(
            camera_pattern(), GreedyOrderPlanner(), InvariantBasedPolicy(), snapshot()
        )
        new_plan = controller.update(snapshot(c=30.0, t=5.0))
        assert new_plan is not None
        assert new_plan.order == ("b", "c", "a")
        assert controller.statistics.plans_replaced == 1
        assert controller.statistics.replacements[0].new_cost < controller.statistics.replacements[0].previous_cost

    def test_invariants_rebuilt_after_replacement(self):
        policy = InvariantBasedPolicy()
        controller = AdaptationController(
            camera_pattern(), GreedyOrderPlanner(), policy, snapshot()
        )
        controller.update(snapshot(c=30.0, t=5.0))
        # New invariants reflect the new plan: B is now the initiator.
        assert "rate(B)" in policy.invariants.invariants[0].condition.lhs.describe()

    def test_unconditional_policy_regenerates_but_keeps_equal_plan(self):
        controller = AdaptationController(
            camera_pattern(), GreedyOrderPlanner(), UnconditionalPolicy(), snapshot()
        )
        assert controller.update(snapshot(t=1.0)) is None
        assert controller.statistics.plans_generated == 2
        assert controller.statistics.plans_replaced == 0

    def test_min_relative_improvement_blocks_marginal_swaps(self):
        controller = AdaptationController(
            camera_pattern(),
            GreedyOrderPlanner(),
            UnconditionalPolicy(),
            snapshot(),
            min_relative_improvement=0.5,
        )
        # A modest change that improves the plan by less than 50% is ignored.
        assert controller.update(snapshot(c=16.0, t=1.0)) is None

    def test_overhead_fraction(self):
        controller = AdaptationController(
            camera_pattern(), GreedyOrderPlanner(), UnconditionalPolicy(), snapshot()
        )
        controller.update(snapshot(t=1.0))
        assert 0.0 <= controller.overhead_fraction(10.0) <= 1.0
        assert controller.overhead_fraction(0.0) == 0.0

    def test_works_with_zstream_planner(self):
        controller = AdaptationController(
            camera_pattern(), ZStreamTreePlanner(), InvariantBasedPolicy(k=3), snapshot()
        )
        initial_plan = controller.current_plan
        assert initial_plan is not None
        # Feed a sequence of progressively larger changes; the controller must
        # never install a plan that is worse than the one it replaces.
        for current in [
            snapshot(a=1.0, b=200.0, c=300.0, t=2.0),
            snapshot(a=2000.0, b=15.0, c=10.0, t=3.0),
            snapshot(a=100.0, b=15.0, c=10.0, sel_ab=0.9, sel_bc=0.9, t=4.0),
        ]:
            previous_cost = controller.current_plan.cost(current)
            new_plan = controller.update(current)
            if new_plan is not None:
                assert new_plan.cost(current) <= previous_cost
        assert controller.statistics.plans_generated >= 1

    def test_describe_contains_policy_and_planner(self):
        controller = AdaptationController(
            camera_pattern(), GreedyOrderPlanner(), InvariantBasedPolicy(), snapshot()
        )
        text = controller.describe()
        assert "invariant" in text and "greedy-order" in text


class TestNoFalsePositiveGuarantee:
    """Theorem 1: an invariant violation implies A would produce a different plan."""

    @pytest.mark.parametrize("planner_factory", [GreedyOrderPlanner, ZStreamTreePlanner])
    def test_violation_implies_different_plan(self, planner_factory):
        planner = planner_factory()
        result = planner.generate(camera_pattern(), snapshot())
        invariants = build_invariant_set(result, k=0)  # all deciding conditions
        scenarios = [
            snapshot(a=100, b=15, c=10),     # unchanged
            snapshot(a=100, b=15, c=30),     # C overtakes B
            snapshot(a=5, b=15, c=10),       # A becomes rare
            snapshot(a=100, b=200, c=10),    # B becomes frequent
            snapshot(sel_ab=0.9, sel_bc=0.9),
            snapshot(sel_ab=0.01),
            snapshot(a=101, b=16, c=11),     # small drift, same order
        ]
        for current in scenarios:
            new_plan = planner.generate(camera_pattern(), current).plan
            if invariants.is_violated(current):
                assert new_plan != result.plan, (
                    "violated invariant must imply a different plan "
                    f"(scenario rates={current.rates})"
                )

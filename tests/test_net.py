"""Tests for the network data plane (repro.streaming.net).

The centrepiece is the loopback differential gate: a workload pushed over
the wire (HTTP and TCP), detected by the pipeline, and delivered through
an acked network sink must produce a match set byte-identical to the same
workload served from a file source into a local JSONL sink — including
through a kill/resume cycle, where re-derived matches are re-sent under
their original idempotency keys and the receiver's dedup absorbs them.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.adaptive import InvariantBasedPolicy
from repro.conditions import AndCondition, EqualityCondition
from repro.engine import AdaptiveCEPEngine
from repro.errors import CheckpointError, StreamingError
from repro.events import EventType
from repro.metrics import NetworkMetrics
from repro.obs import ControlPlane, DecisionLog, MetricsRegistry
from repro.optimizer import GreedyOrderPlanner
from repro.patterns import seq
from repro.streaming import (
    AckedDeliverySink,
    CheckpointStore,
    HTTPEventIngress,
    JSONLFileSource,
    JSONLMatchWriter,
    NetworkEventSource,
    SocketMatchReceiver,
    SocketMatchSink,
    StreamingPipeline,
    TCPEventIngress,
    WebhookMatchSink,
    WebhookReceiver,
    push_events_http,
    push_events_tcp,
    read_event_records,
    write_events_jsonl,
)
from repro.streaming.net import (
    PUSH_ACCEPTED,
    PUSH_DUPLICATE,
    PUSH_INVALID,
    PUSH_REJECTED,
    parse_event_payload,
)
from tests.conftest import make_camera_stream

TYPES = {name: EventType(name) for name in ("A", "B", "C")}


def _record(sequence, type_name="A", timestamp=None, **payload):
    record = {
        "type": type_name,
        "timestamp": float(sequence) if timestamp is None else timestamp,
        "sequence": sequence,
    }
    record.update(payload)
    return record


# ----------------------------------------------------------------------
# The push-buffer source
# ----------------------------------------------------------------------
class TestNetworkEventSource:
    def test_push_pull_preserves_order_and_sequences(self):
        source = NetworkEventSource(TYPES)
        for index in range(4):
            assert source.push_record(_record(index)) == PUSH_ACCEPTED
        source.end_of_stream()
        events = list(source)
        assert [event.sequence_number for event in events] == [0, 1, 2, 3]
        assert source.metrics.events_accepted == 4

    def test_push_time_dedup_by_sequence(self):
        source = NetworkEventSource(TYPES)
        assert source.push_record(_record(0)) == PUSH_ACCEPTED
        assert source.push_record(_record(0)) == PUSH_DUPLICATE
        assert source.push_record(_record(5)) == PUSH_ACCEPTED
        assert source.push_record(_record(3)) == PUSH_DUPLICATE
        assert source.metrics.events_duplicate == 2

    def test_invalid_records_counted_not_fatal(self):
        source = NetworkEventSource(TYPES)
        assert source.push_record({"type": "A"}) == PUSH_INVALID  # no timestamp
        assert source.push_record({"type": "Z", "timestamp": 1.0}) == PUSH_INVALID
        assert (
            source.push_record({"type": "A", "timestamp": "soon"}) == PUSH_INVALID
        )
        assert source.push_record("not a mapping") == PUSH_INVALID
        assert source.metrics.events_invalid == 4
        assert source.metrics.events_accepted == 0

    def test_nonblocking_push_rejected_when_full(self):
        source = NetworkEventSource(TYPES, capacity=2)
        assert source.push_record(_record(0), block=False) == PUSH_ACCEPTED
        assert source.push_record(_record(1), block=False) == PUSH_ACCEPTED
        assert source.push_record(_record(2), block=False) == PUSH_REJECTED
        assert source.metrics.events_rejected == 1

    def test_blocking_push_waits_for_space(self):
        source = NetworkEventSource(TYPES, capacity=1, poll_interval=0.01)
        assert source.push_record(_record(0)) == PUSH_ACCEPTED
        done = []

        def push_blocked():
            done.append(source.push_record(_record(1), block=True))

        thread = threading.Thread(target=push_blocked)
        thread.start()
        thread.join(timeout=0.05)
        assert thread.is_alive(), "push must block while the buffer is full"
        source.end_of_stream()
        events = list(source)  # draining frees the slot
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        # The blocked push lands after end_of_stream closed admission.
        assert done == [PUSH_REJECTED]
        assert [event.sequence_number for event in events] == [0]

    def test_skip_drops_buffered_and_future_duplicates(self):
        source = NetworkEventSource(TYPES)
        for index in range(4):
            source.push_record(_record(index))
        source.skip(2)  # resume floor: events 0-1 are already checkpointed
        assert source.push_record(_record(1)) == PUSH_DUPLICATE
        source.push_record(_record(4))
        source.end_of_stream()
        assert [event.sequence_number for event in source] == [2, 3, 4]
        assert source.metrics.events_duplicate == 3  # 0, 1 buffered + 1 re-push

    def test_idle_timeout_ends_the_stream(self):
        source = NetworkEventSource(TYPES, poll_interval=0.01, idle_timeout=0.05)
        source.push_record(_record(0))
        assert [event.sequence_number for event in source] == [0]

    def test_stop_following_ends_a_blocked_pull(self):
        source = NetworkEventSource(TYPES, poll_interval=0.01)
        collected = []

        def consume():
            collected.extend(source)

        thread = threading.Thread(target=consume)
        thread.start()
        source.push_record(_record(0))
        source.stop_following()  # what pipeline.stop() calls
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert [event.sequence_number for event in collected] == [0]

    def test_rejects_bad_configuration(self):
        with pytest.raises(StreamingError):
            NetworkEventSource({})
        with pytest.raises(StreamingError):
            NetworkEventSource(TYPES, capacity=0)
        source = NetworkEventSource(TYPES)
        with pytest.raises(StreamingError):
            source.skip(-1)


# ----------------------------------------------------------------------
# Wire ingestion
# ----------------------------------------------------------------------
class TestHTTPEventIngress:
    def test_push_helper_round_trip(self):
        source = NetworkEventSource(TYPES)
        with HTTPEventIngress(source) as ingress:
            totals = push_events_http(
                ingress.url, [_record(i) for i in range(5)], end=True
            )
        assert totals[PUSH_ACCEPTED] == 5
        assert [event.sequence_number for event in source] == list(range(5))

    def test_bad_body_answers_400(self):
        source = NetworkEventSource(TYPES)
        with HTTPEventIngress(source) as ingress:
            request = urllib.request.Request(
                ingress.url + "/events", data=b"{not json", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(request)
            assert failure.value.code == 400

    def test_backpressure_answers_429_and_reports_progress(self):
        source = NetworkEventSource(TYPES, capacity=2)
        with HTTPEventIngress(source) as ingress:
            body = "\n".join(json.dumps(_record(i)) for i in range(4)).encode()
            request = urllib.request.Request(
                ingress.url + "/events", data=body, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(request)
            assert failure.value.code == 429
            reply = json.loads(failure.value.read())
            assert reply["retry_from"] == 2  # first two records were admitted
        assert source.metrics.events_accepted == 2
        assert source.metrics.events_rejected == 1

    def test_push_helper_retries_through_backpressure(self):
        source = NetworkEventSource(TYPES, capacity=2, poll_interval=0.01)
        drained = []

        def consume():
            drained.extend(source)

        consumer = threading.Thread(target=consume)
        consumer.start()
        with HTTPEventIngress(source) as ingress:
            totals = push_events_http(
                ingress.url,
                [_record(i) for i in range(10)],
                batch=4,
                end=True,
                retry_wait=0.005,
            )
        consumer.join(timeout=5.0)
        assert totals[PUSH_ACCEPTED] == 10
        assert len(drained) == 10

    def test_stats_endpoint(self):
        source = NetworkEventSource(TYPES)
        source.push_record(_record(0))
        with HTTPEventIngress(source) as ingress:
            stats = json.loads(
                urllib.request.urlopen(ingress.url + "/stats").read()
            )
        assert stats["pending"] == 1
        assert stats["next_sequence"] == 1

    def test_parse_event_payload_shapes(self):
        one = parse_event_payload(b'{"type": "A", "timestamp": 1.0}')
        assert len(one) == 1
        array = parse_event_payload(b'[{"a": 1}, {"b": 2}]')
        assert len(array) == 2
        lines = parse_event_payload(b'{"a": 1}\n\n{"b": 2}\n')
        assert len(lines) == 2
        with pytest.raises(StreamingError):
            parse_event_payload(b"")
        with pytest.raises(StreamingError):
            parse_event_payload(b"[1, 2]")


class TestTCPEventIngress:
    def test_push_helper_round_trip_with_acks(self):
        source = NetworkEventSource(TYPES)
        with TCPEventIngress(source) as ingress:
            totals = push_events_tcp(
                "127.0.0.1",
                ingress.port,
                [_record(0), _record(0), _record(1)],
                end=True,
            )
        assert totals[PUSH_ACCEPTED] == 2
        assert totals[PUSH_DUPLICATE] == 1
        assert [event.sequence_number for event in source] == [0, 1]

    def test_full_buffer_blocks_the_connection(self):
        source = NetworkEventSource(TYPES, capacity=2, poll_interval=0.01)
        totals = {}

        def push_all():
            totals.update(
                push_events_tcp(
                    "127.0.0.1",
                    ingress.port,
                    [_record(i) for i in range(6)],
                    end=True,
                )
            )

        with TCPEventIngress(source) as ingress:
            pusher = threading.Thread(target=push_all)
            pusher.start()
            pusher.join(timeout=0.1)
            assert pusher.is_alive(), "a full buffer must block the TCP pusher"
            drained = list(source)  # consuming unblocks it
            pusher.join(timeout=5.0)
            assert not pusher.is_alive()
        assert totals[PUSH_ACCEPTED] == 6
        assert len(drained) == 6


# ----------------------------------------------------------------------
# Acked delivery
# ----------------------------------------------------------------------
def _matches(count):
    stream = make_camera_stream(count=400, seed=3)
    pattern = seq(
        [EventType("A"), EventType("B"), EventType("C")],
        condition=AndCondition(
            [
                EqualityCondition("a", "b", "person_id"),
                EqualityCondition("b", "c", "person_id"),
            ]
        ),
        window=10.0,
    )
    engine = AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())
    matches = engine.run(stream).matches
    assert len(matches) >= count
    return matches[:count]


class FlakySink(AckedDeliverySink):
    """Test sink: fails the first ``fail`` sends, then records the rest."""

    name = "flaky"

    def __init__(self, fail=0, **kwargs):
        kwargs.setdefault("backoff_base", 0.001)
        super().__init__(**kwargs)
        self.failures_left = fail
        self.sent = []

    def _send(self, key, record):
        if self.failures_left > 0:
            self.failures_left -= 1
            raise StreamingError("injected delivery failure")
        self.sent.append((key, record))


class TestAckedDeliverySink:
    def test_retry_with_backoff_then_success(self):
        sleeps = []
        sink = FlakySink(fail=2, sleep=sleeps.append)
        sink.emit(_matches(1)[0])
        sink.flush()
        assert len(sink.sent) == 1
        assert sink.state() == {"acked": 1}
        assert sink.metrics.delivery_retries == 2
        assert sleeps == [0.001, 0.002]  # exponential

    def test_backoff_is_capped(self):
        sleeps = []
        sink = FlakySink(
            fail=4, max_attempts=5, backoff_base=1.0, backoff_cap=2.0,
            sleep=sleeps.append,
        )
        sink.emit(_matches(1)[0])
        sink.flush()
        assert sleeps == [1.0, 2.0, 2.0, 2.0]

    def test_exhausted_retries_without_dead_letter_raise(self):
        sink = FlakySink(fail=99, max_attempts=2, sleep=lambda _s: None)
        sink.emit(_matches(1)[0])
        with pytest.raises(StreamingError, match="after 2 attempts"):
            sink.flush()

    def test_exhausted_retries_spill_to_dead_letter(self, tmp_path):
        spill = str(tmp_path / "dead.jsonl")
        decisions = []
        sink = FlakySink(
            fail=99,
            max_attempts=2,
            dead_letter_path=spill,
            sleep=lambda _s: None,
        )
        sink.on_decision = lambda type, **detail: decisions.append((type, detail))
        sink.emit(_matches(1)[0])
        sink.flush()
        assert sink.state() == {"acked": 1}  # resolved: the spill is durable
        assert sink.metrics.dead_letters == 1
        spilled = [json.loads(line) for line in open(spill)]
        assert spilled[0]["key"] == sink.idempotency_key(0)
        assert "injected delivery failure" in spilled[0]["error"]
        types = [entry[0] for entry in decisions]
        assert "delivery_retry" in types and "dead_letter" in types

    def test_bounded_in_flight_forces_delivery(self):
        sink = FlakySink(max_in_flight=2)
        for match in _matches(3):
            sink.emit(match)
        assert len(sink.sent) == 1  # the third emit pushed one out
        sink.flush()
        assert len(sink.sent) == 3

    def test_restore_rewinds_to_acked_and_replays_same_keys(self):
        matches = _matches(2)
        sink = FlakySink()
        sink.emit(matches[0])
        sink.flush()
        state = sink.state()
        sink.emit(matches[1])  # in flight, never flushed: "lost" by the kill
        resumed = FlakySink()
        resumed.restore(state)
        assert resumed.emitted == 1 and resumed.acked == 1
        resumed.emit(matches[1])  # the re-derived match
        resumed.flush()
        assert resumed.sent[0][0] == sink.idempotency_key(1)

    def test_restore_rejects_malformed_state(self):
        sink = FlakySink()
        with pytest.raises(CheckpointError, match="malformed checkpoint state"):
            sink.restore({"wrong": 1})
        with pytest.raises(CheckpointError, match="malformed checkpoint state"):
            sink.restore({"acked": "many"})
        with pytest.raises(CheckpointError, match="malformed checkpoint state"):
            sink.restore({"acked": -3})
        sink.restore(None)  # empty state = fresh start, not an error

    def test_rejects_bad_configuration(self):
        with pytest.raises(StreamingError):
            FlakySink(max_in_flight=0)
        with pytest.raises(StreamingError):
            FlakySink(max_attempts=0)

    def test_pipeline_routes_sink_decisions_to_the_log(self):
        log = DecisionLog()
        sink = FlakySink(fail=1, sleep=lambda _s: None)
        pattern = seq(
            [EventType("A"), EventType("B"), EventType("C")],
            condition=AndCondition(
                [
                    EqualityCondition("a", "b", "person_id"),
                    EqualityCondition("b", "c", "person_id"),
                ]
            ),
            window=10.0,
        )
        engine = AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy()
        )
        from repro.streaming import ReplaySource

        events = make_camera_stream(count=400, seed=3).to_list()
        StreamingPipeline(
            engine, ReplaySource(events), sinks=[sink], decision_log=log
        ).run()
        retries = log.query(type="delivery_retry")
        assert retries and retries[0].detail["sink"] == "flaky"


class TestWebhookDelivery:
    def test_deliveries_survive_injected_failures(self, tmp_path):
        out = str(tmp_path / "delivered.jsonl")
        matches = _matches(2)
        with WebhookReceiver(out, fail_first=2) as receiver:
            sink = WebhookMatchSink(receiver.url, backoff_base=0.001)
            for match in matches:
                sink.emit(match)
            sink.flush()
            assert receiver.core.stats()["received"] == 2
        assert sink.metrics.delivery_retries == 2
        assert sink.metrics.matches_delivered == 2
        assert len(open(out).read().splitlines()) == 2

    def test_receiver_dedups_redelivery_by_idempotency_key(self, tmp_path):
        out = str(tmp_path / "delivered.jsonl")
        match = _matches(1)[0]
        with WebhookReceiver(out) as receiver:
            sink = WebhookMatchSink(receiver.url)
            sink.emit(match)
            sink.flush()
            # Simulate a kill after the send but before its checkpoint: the
            # resumed sink re-derives the match under the same key.
            resumed = WebhookMatchSink(receiver.url)
            resumed.restore({"acked": 0})
            resumed.emit(match)
            resumed.flush()
            stats = receiver.core.stats()
        assert stats["received"] == 1
        assert stats["duplicates"] == 1
        assert len(open(out).read().splitlines()) == 1


class TestSocketDelivery:
    def test_reconnects_after_dropped_connection(self, tmp_path):
        out = str(tmp_path / "delivered.jsonl")
        matches = _matches(2)
        receiver = SocketMatchReceiver(out, fail_first=1).start()
        try:
            sink = SocketMatchSink(
                "127.0.0.1", receiver.port, backoff_base=0.001
            )
            for match in matches:
                sink.emit(match)
            sink.flush()
            sink.close()
            assert receiver.core.stats()["received"] == 2
        finally:
            receiver.stop()
        assert sink.metrics.delivery_retries >= 1
        lines = open(out).read().splitlines()
        assert [json.loads(line)["pattern"] for line in lines] == [
            matches[0].pattern_name,
            matches[1].pattern_name,
        ]


# ----------------------------------------------------------------------
# Observability wiring
# ----------------------------------------------------------------------
class TestNetworkObservability:
    def test_registry_renders_net_series(self):
        metrics = NetworkMetrics()
        metrics.events_accepted = 7
        metrics.matches_delivered = 3
        metrics.delivery.observe(0.002)
        registry = MetricsRegistry()
        registry.register_network(metrics)
        body, _content_type = registry.render("prometheus")
        assert 'repro_net_events_accepted_total{pipeline="pipeline"} 7' in body
        assert 'repro_net_matches_delivered_total{pipeline="pipeline"} 3' in body
        assert "repro_net_delivery_seconds_count" in body

    def test_control_plane_serves_network_snapshot(self):
        metrics = NetworkMetrics()
        metrics.events_accepted = 5
        with ControlPlane(network=metrics) as control:
            body = json.loads(
                urllib.request.urlopen(control.url + "/network").read()
            )
        assert body["events_accepted"] == 5

    def test_control_plane_404s_without_network(self):
        with ControlPlane() as control:
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(control.url + "/network")
            assert failure.value.code == 404


# ----------------------------------------------------------------------
# The loopback differential gate
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def wire_workload(tmp_path_factory):
    """Event file + the file-source reference match lines."""
    directory = tmp_path_factory.mktemp("wire")
    events_path = str(directory / "events.jsonl")
    events = make_camera_stream(count=400, seed=31).to_list()
    write_events_jsonl(events, events_path)

    reference_path = str(directory / "reference.jsonl")
    pipeline = StreamingPipeline(
        _fresh_engine(),
        JSONLFileSource(events_path, TYPES),
        sinks=[JSONLMatchWriter(reference_path)],
    )
    pipeline.run()
    reference = sorted(
        line for line in open(reference_path).read().splitlines() if line
    )
    assert reference, "differential workload must produce matches"
    return events_path, reference


def _fresh_engine():
    pattern = seq(
        [EventType("A"), EventType("B"), EventType("C")],
        condition=AndCondition(
            [
                EqualityCondition("a", "b", "person_id"),
                EqualityCondition("b", "c", "person_id"),
            ]
        ),
        window=10.0,
    )
    return AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())


def _sorted_lines(path):
    return sorted(line for line in open(path).read().splitlines() if line)


class TestLoopbackDifferential:
    def test_http_push_webhook_delivery_matches_file_run(
        self, wire_workload, tmp_path
    ):
        events_path, reference = wire_workload
        delivered = str(tmp_path / "delivered.jsonl")
        source = NetworkEventSource(TYPES)
        with WebhookReceiver(delivered) as receiver:
            sink = WebhookMatchSink(receiver.url)
            with HTTPEventIngress(source) as ingress:
                totals = push_events_http(
                    ingress.url, read_event_records(events_path), end=True
                )
                StreamingPipeline(_fresh_engine(), source, sinks=[sink]).run()
        assert totals[PUSH_ACCEPTED] == 400
        assert _sorted_lines(delivered) == reference

    def test_tcp_push_socket_delivery_matches_file_run(
        self, wire_workload, tmp_path
    ):
        events_path, reference = wire_workload
        delivered = str(tmp_path / "delivered.jsonl")
        source = NetworkEventSource(TYPES)
        receiver = SocketMatchReceiver(delivered).start()
        try:
            sink = SocketMatchSink("127.0.0.1", receiver.port)
            with TCPEventIngress(source) as ingress:
                totals = push_events_tcp(
                    "127.0.0.1",
                    ingress.port,
                    read_event_records(events_path),
                    end=True,
                )
                StreamingPipeline(_fresh_engine(), source, sinks=[sink]).run()
        finally:
            receiver.stop()
        assert totals[PUSH_ACCEPTED] == 400
        assert _sorted_lines(delivered) == reference

    def test_kill_resume_over_the_wire_stays_exactly_once(
        self, wire_workload, tmp_path
    ):
        """Kill between webhook sends and the next checkpoint, then resume.

        The first run stops mid-stream without a final checkpoint (the
        SIGKILL simulation the crash-recovery suite uses), *after* its
        sink has delivered matches the checkpoint never recorded.  The
        resumed run re-pushes the whole event file (the client's replay),
        relies on the source's sequence floor to drop the checkpointed
        prefix, re-derives the post-checkpoint matches, and re-sends them
        under their original idempotency keys — which the receiver must
        absorb as duplicates, leaving the delivered file byte-identical
        to the uninterrupted file-source run.
        """
        events_path, reference = wire_workload
        delivered = str(tmp_path / "delivered.jsonl")
        store = CheckpointStore(str(tmp_path / "ckpt"))
        with WebhookReceiver(delivered) as receiver:

            def build():
                source = NetworkEventSource(TYPES)
                sink = WebhookMatchSink(receiver.url)
                pipeline = StreamingPipeline(
                    _fresh_engine(),
                    source,
                    sinks=[sink],
                    checkpoint_store=store,
                    checkpoint_every=100,
                )
                return source, pipeline

            source, pipeline = build()
            with HTTPEventIngress(source) as ingress:
                push_events_http(
                    ingress.url, read_event_records(events_path), end=True
                )
                first = pipeline.run(max_events=250, final_checkpoint=False)
            assert first.stop_reason == "max-events"
            # The kill window is real: matches were delivered after the
            # last checkpoint (events 200-250) and will be re-derived.
            assert store.latest().events_processed == 200

            source, pipeline = build()
            with HTTPEventIngress(source) as ingress:
                totals = push_events_http(
                    ingress.url, read_event_records(events_path), end=True
                )
                second = pipeline.run()
            stats = receiver.core.stats()

        assert second.resumed_from == 200
        assert totals[PUSH_ACCEPTED] == 400  # push-side replay is complete
        assert source.metrics.events_duplicate >= 200  # floor dropped prefix
        assert stats["duplicates"] >= 1, (
            "the resume must have re-sent at least one match under its "
            "original idempotency key"
        )
        assert _sorted_lines(delivered) == reference, (
            "wire-delivered matches diverge from the file-source run "
            "across kill/resume (lost or duplicated deliveries)"
        )

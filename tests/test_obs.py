"""Tests for the observability layer: metrics export, decision log,
tracing, and the HTTP control plane.

The Prometheus exposition is locked down with a golden file
(``tests/data/metrics_golden.prom``): the metric names, label sets, HELP
text, and value formatting are an external contract with a scraping
Prometheus, so any change to them must be a deliberate golden update.
The control-plane tests exercise the real HTTP server end-to-end against
a live pipeline, including the readiness transitions a load balancer
depends on across a kill/resume cycle.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import AdaptiveCEPEngine
from repro.errors import StreamingError
from repro.metrics.stage_metrics import PipelineMetrics
from repro.obs import (
    ControlPlane,
    CoalescingEmitter,
    DecisionLog,
    DecisionRecord,
    MetricsRegistry,
    Tracer,
    read_decision_records,
    render_prometheus,
    verify_continuity,
)
from repro.obs.registry import Sample
from repro.optimizer import GreedyOrderPlanner
from repro.adaptive import InvariantBasedPolicy
from repro.streaming import (
    CheckpointStore,
    CollectorSink,
    ReplaySource,
    StreamingPipeline,
)

from tests.conftest import make_camera_stream

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "metrics_golden.prom")


def _fixed_metrics() -> PipelineMetrics:
    """The deterministic metrics object the golden file was rendered from.

    Every value is exactly representable in binary floating point, so the
    rendering is byte-stable across platforms.
    """
    m = PipelineMetrics()
    m.events_ingested = 1200
    m.events_processed = 1000
    m.events_shed = 200
    m.late_events = 7
    m.matches_emitted = 42
    m.checkpoints_written = 3
    m.checkpoint_bytes_written = 6144
    m.last_checkpoint_bytes = 2048
    m.queue_high_water = 17
    m.reorder_depth_high_water = 5
    m.partial_matches_high_water = 9
    m.source.observe(0.25)
    m.source.observe(0.75)
    m.engine.observe(0.5)
    m.sink.observe(0.125)
    m.checkpoint.observe(1.5)
    m.watermark_lag.observe(2.0)
    lane = m.worker_lane(0)
    lane.observe_batch(500, 0.5)
    lane.observe_queue_depth(3)
    return m


def _fresh_engine(pattern):
    return AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())


def _http_get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def _http_post(url: str):
    request = urllib.request.Request(url, data=b"", method="POST")
    try:
        with urllib.request.urlopen(request, timeout=15) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


class TestPrometheusRendering:
    def test_golden_file(self):
        registry = MetricsRegistry(clock=lambda: 100.0)
        registry.register_pipeline(_fixed_metrics())
        body, content_type = registry.render()
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            golden = handle.read()
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert body == golden

    def test_exposition_is_well_formed(self):
        """Every line is a comment or `name{labels} value`, and every
        sample's TYPE is declared before the sample appears."""
        registry = MetricsRegistry(clock=lambda: 100.0)
        registry.register_pipeline(_fixed_metrics())
        body, _ = registry.render()
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9].*$'
        )
        typed = set()
        for line in body.splitlines():
            if line.startswith("# TYPE "):
                name, kind = line.split()[2:4]
                assert kind in ("counter", "gauge")
                typed.add(name)
                continue
            if line.startswith("#"):
                continue
            assert sample_re.match(line), f"malformed sample line: {line!r}"
            name = line.split("{")[0].split(" ")[0]
            assert name in typed, f"sample {name} before its TYPE declaration"

    def test_counters_end_in_total_or_timing_suffix(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.register_pipeline(_fixed_metrics())
        for sample in registry.collect():
            assert sample.name.startswith("repro_")
            if sample.type == "counter":
                assert sample.name.endswith(("_total", "_sum", "_count"))

    def test_label_escaping(self):
        body = render_prometheus(
            [Sample("repro_x", 1.0, {"k": 'a"b\\c\nd'}, "", "gauge")]
        )
        assert 'k="a\\"b\\\\c\\nd"' in body

    def test_json_format(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.register_pipeline(_fixed_metrics())
        body, content_type = registry.render("json")
        assert content_type == "application/json"
        payload = json.loads(body)
        by_name = {entry["name"]: entry for entry in payload["metrics"]}
        assert by_name["repro_events_ingested_total"]["value"] == 1200.0
        assert by_name["repro_events_shed_total"]["labels"] == {
            "pipeline": "pipeline"
        }

    def test_dead_gauge_does_not_break_scrape(self):
        registry = MetricsRegistry(clock=lambda: 0.0)

        def explode():
            raise RuntimeError("gauge source is gone")

        registry.register_gauge("repro_dead", explode)
        registry.register_gauge("repro_alive", lambda: 7.0)
        names = [sample.name for sample in registry.collect()]
        assert "repro_alive" in names
        assert "repro_dead" not in names


class TestDecisionLog:
    def test_record_and_query_filters(self):
        clock = iter(float(i) for i in range(1, 100))
        log = DecisionLog(clock=lambda: next(clock))
        log.record("shed", count=5)
        log.record("replan", reason="invariant")
        log.record("shed", count=2)
        assert [r.type for r in log.query(type="shed")] == ["shed", "shed"]
        assert [r.seq for r in log.query(limit=2)] == [2, 3]
        assert [r.seq for r in log.query(since=2.0, until=2.5)] == [2]
        assert log.counts_by_type() == {"shed": 2, "replan": 1}
        assert log.last_seq == 3

    def test_seq_continues_across_reopen(self, tmp_path):
        path = str(tmp_path / "decisions.jsonl")
        first = DecisionLog(path)
        for _ in range(5):
            first.record("checkpoint_cut", kind="full")
        first.close()
        second = DecisionLog(path)
        assert second.last_seq == 5
        second.record("replan")
        second.close()
        records = read_decision_records(path)
        assert [r.seq for r in records] == [1, 2, 3, 4, 5, 6]
        assert verify_continuity(records) == []

    def test_reopen_skips_torn_final_line(self, tmp_path):
        path = str(tmp_path / "decisions.jsonl")
        log = DecisionLog(path)
        log.record("shed", count=1)
        log.record("shed", count=2)
        log.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "type": "shed"')  # kill -9 mid-write
        resumed = DecisionLog(path)
        # The torn record never got durable, so its seq is reused.
        assert resumed.last_seq == 2
        resumed.record("shed", count=3)
        resumed.close()
        # The new record starts on its own line (not appended onto the
        # torn garbage), so the persisted trail stays continuous.
        records = read_decision_records(path)
        assert [r.seq for r in records] == [1, 2, 3]
        assert verify_continuity(records) == []

    def test_rotation(self, tmp_path):
        path = str(tmp_path / "decisions.jsonl")
        log = DecisionLog(path, max_bytes=1024)
        for i in range(64):
            log.record("shed", count=i, padding="x" * 64)
        log.close()
        assert os.path.exists(path + ".1")
        # Post-rotation records are still continuous with the rotated file.
        all_records = read_decision_records(path + ".1") + read_decision_records(path)
        assert verify_continuity(all_records) == []
        assert all_records[-1].seq == 64

    def test_verify_continuity_detects_problems(self):
        def rec(seq):
            return DecisionRecord(type="shed", time=0.0, seq=seq)

        assert verify_continuity([rec(1), rec(2), rec(3)]) == []
        assert "gap" in verify_continuity([rec(1), rec(3)])[0]
        assert "duplicate" in verify_continuity([rec(1), rec(1)])[0]
        assert "duplicate" in verify_continuity([rec(2), rec(1)])[0]

    def test_rejects_bad_parameters(self):
        with pytest.raises(StreamingError):
            DecisionLog(tail=0)
        with pytest.raises(StreamingError):
            DecisionLog(max_bytes=10)


class TestCoalescingEmitter:
    def test_flushes_on_count(self):
        log = DecisionLog()
        emitter = CoalescingEmitter(log, "shed", flush_every=3, flush_interval=1e9)
        for i in range(7):
            emitter.observe(sample={"event": i}, policy="drop-newest")
        assert len(log.query(type="shed")) == 2
        emitter.flush()
        records = log.query(type="shed")
        assert [r.detail["count"] for r in records] == [3, 3, 1]
        assert records[0].detail["policy"] == "drop-newest"
        assert records[0].detail["last"] == {"event": 2}

    def test_flushes_on_interval(self):
        now = [0.0]
        log = DecisionLog()
        emitter = CoalescingEmitter(
            log, "late_event_policy", flush_every=10**6, flush_interval=1.0,
            clock=lambda: now[0],
        )
        emitter.observe()
        now[0] = 2.0
        emitter.observe()  # 2 s after the burst began -> flush
        assert len(log.query()) == 1
        assert log.query()[0].detail["count"] == 2

    def test_empty_flush_is_a_noop(self):
        log = DecisionLog()
        assert CoalescingEmitter(log, "shed").flush() is None
        assert len(log.query()) == 0


class TestTracer:
    def test_spans_and_totals(self):
        tracer = Tracer()
        first = tracer.new_trace()
        tracer.record("source", 0.25, events=10)
        tracer.record("engine", 0.5, events=10)
        second = tracer.new_trace()
        tracer.record("engine", 0.25, events=4)
        assert first != second
        assert [span.stage for span in tracer.spans(trace_id=first)] == [
            "source",
            "engine",
        ]
        totals = tracer.stage_totals()
        assert totals["engine"]["seconds"] == 0.75
        assert totals["engine"]["spans"] == 2
        assert totals["engine"]["events"] == 14

    def test_span_buffer_is_bounded(self):
        tracer = Tracer(max_spans=4)
        tracer.new_trace()
        for i in range(10):
            tracer.record("engine", 0.001, events=1)
        assert len(tracer.spans()) == 4


class TestPipelineObservability:
    """Decision records and traces emitted by a real pipeline run."""

    def _run_pipeline(self, camera_pattern, tmp_path, **kwargs):
        log = DecisionLog()
        tracer = Tracer()
        store = CheckpointStore(str(tmp_path / "ckpt"))
        pipeline = StreamingPipeline(
            _fresh_engine(camera_pattern),
            # Not a multiple of the cadence, so the run ends with a
            # final reason="shutdown" cut after the last periodic one.
            ReplaySource(make_camera_stream(count=1100).to_list()),
            sinks=[CollectorSink()],
            checkpoint_store=store,
            checkpoint_every=400,
            decision_log=log,
            tracer=tracer,
            **kwargs,
        )
        result = pipeline.run()
        return pipeline, result, log, tracer, store

    def test_checkpoint_cut_records_and_reasons(self, camera_pattern, tmp_path):
        _, result, log, _, store = self._run_pipeline(camera_pattern, tmp_path)
        cuts = log.query(type="checkpoint_cut")
        assert len(cuts) == result.metrics.checkpoints_written
        assert cuts[-1].detail["reason"] == "shutdown"
        assert all(cut.detail["reason"] == "periodic" for cut in cuts[:-1])
        assert all(cut.detail["bytes"] > 0 for cut in cuts)
        reasons = store.stats()["reasons"]
        assert reasons.get("shutdown") == 1

    def test_tracer_reconciles_with_stage_timings(self, camera_pattern, tmp_path):
        _, result, _, tracer, _ = self._run_pipeline(camera_pattern, tmp_path)
        totals = tracer.stage_totals()
        metrics = result.metrics
        for stage, timing in (
            ("source", metrics.source),
            ("engine", metrics.engine),
            ("sink", metrics.sink),
            ("checkpoint", metrics.checkpoint),
        ):
            assert totals[stage]["seconds"] == pytest.approx(
                timing.total_seconds, abs=1e-9
            )

    def test_shed_decisions_under_overload(self, camera_pattern, tmp_path):
        from repro.streaming import DropNewest

        log = DecisionLog()
        pipeline = StreamingPipeline(
            _fresh_engine(camera_pattern),
            ReplaySource(make_camera_stream(count=600).to_list()),
            sinks=[CollectorSink()],
            buffer_capacity=16,
            overflow_policy=DropNewest(),
            decision_log=log,
        )
        result = pipeline.run()
        if result.metrics.events_shed:
            shed = log.query(type="shed")
            assert shed, "shed events must produce decision records"
            assert sum(r.detail["count"] for r in shed) == result.metrics.events_shed
            assert shed[0].detail["policy"] == "drop-newest"

    def test_manual_checkpoint_requires_running_pipeline(
        self, camera_pattern, tmp_path
    ):
        pipeline, _, _, _, _ = self._run_pipeline(camera_pattern, tmp_path)
        with pytest.raises(StreamingError):
            pipeline.request_checkpoint()


class TestControlPlane:
    def test_endpoints_without_pipeline(self):
        with ControlPlane() as control:
            status, body = _http_get(f"{control.url}/health")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            status, body = _http_get(f"{control.url}/ready")
            assert status == 503
            status, body = _http_get(f"{control.url}/metrics")
            assert status == 200
            assert "repro_uptime_seconds" in body
            status, body = _http_get(f"{control.url}/decisions")
            assert status == 404
            status, body = _http_post(f"{control.url}/checkpoint")
            assert status == 501
            status, body = _http_get(f"{control.url}/nonsense")
            assert status == 404

    def test_decisions_endpoint_filters_and_validation(self):
        log = DecisionLog()
        log.record("shed", count=3)
        log.record("replan", reason="invariant")
        with ControlPlane(decision_log=log) as control:
            status, body = _http_get(f"{control.url}/decisions?type=replan")
            assert status == 200
            payload = json.loads(body)
            assert payload["count"] == 1
            assert payload["records"][0]["type"] == "replan"
            status, _ = _http_get(f"{control.url}/decisions?limit=notanumber")
            assert status == 400

    def test_live_pipeline_full_surface(self, camera_pattern, tmp_path):
        """Serve a real pipeline; hit every endpoint mid-run; then kill,
        resume, and assert the readiness transitions and decision-log
        continuity an orchestrator depends on."""
        from repro.streaming import JSONLMatchWriter

        events = make_camera_stream(count=3000).to_list()
        decisions_path = str(tmp_path / "decisions.jsonl")
        matches_path = str(tmp_path / "matches.jsonl")
        store = CheckpointStore(str(tmp_path / "ckpt"))

        log = DecisionLog(decisions_path)
        pipeline = StreamingPipeline(
            _fresh_engine(camera_pattern),
            ReplaySource(events, rate=6000.0),
            sinks=[JSONLMatchWriter(matches_path)],
            checkpoint_store=store,
            checkpoint_every=1000,
            decision_log=log,
        )
        registry = MetricsRegistry()
        registry.register_pipeline(pipeline.metrics)

        with ControlPlane(
            pipeline=pipeline, registry=registry, decision_log=log
        ) as control:
            base = control.url
            # Not yet running: alive but not ready.
            assert _http_get(f"{base}/health")[0] == 200
            assert _http_get(f"{base}/ready")[0] == 503

            runner = threading.Thread(
                # Kill without a final checkpoint, as a crash would.
                target=lambda: pipeline.run(max_events=2000, final_checkpoint=False)
            )
            runner.start()
            try:
                deadline = time.time() + 5.0
                while pipeline.state != "running" and time.time() < deadline:
                    time.sleep(0.005)
                assert pipeline.state == "running"

                status, body = _http_get(f"{base}/ready")
                assert (status, json.loads(body)["ready"]) == (200, True)

                status, body = _http_get(f"{base}/metrics")
                assert status == 200
                assert "# TYPE repro_events_processed_total counter" in body

                status, body = _http_post(f"{base}/checkpoint")
                assert status == 200
                payload = json.loads(body)
                assert payload["status"] == "ok"
                assert payload["last_checkpoint_bytes"] > 0
            finally:
                runner.join(timeout=30.0)
            assert not runner.is_alive()

            # Dead again: alive but not ready.
            assert _http_get(f"{base}/ready")[0] == 503
        log.close()

        manual = [
            r
            for r in read_decision_records(decisions_path)
            if r.type == "checkpoint_cut" and r.detail["reason"] == "manual"
        ]
        assert manual, "POST /checkpoint must leave a manual checkpoint_cut record"

        # Resume against the same store and decision log: the trail stays
        # continuous across the kill/resume boundary.
        resumed_log = DecisionLog(decisions_path)
        resumed = StreamingPipeline(
            _fresh_engine(camera_pattern),
            ReplaySource(events),
            sinks=[JSONLMatchWriter(matches_path)],
            checkpoint_store=store,
            checkpoint_every=1000,
            decision_log=resumed_log,
        )
        result = resumed.run()
        resumed_log.close()
        assert result.resumed_from > 0
        records = read_decision_records(decisions_path)
        assert verify_continuity(records) == []

    def test_metrics_json_format_over_http(self):
        registry = MetricsRegistry()
        registry.register_pipeline(_fixed_metrics())
        with ControlPlane(registry=registry) as control:
            status, body = _http_get(f"{control.url}/metrics?format=json")
            assert status == 200
            payload = json.loads(body)
            names = {entry["name"] for entry in payload["metrics"]}
            assert "repro_events_processed_total" in names


class TestCheckpointReasons:
    def test_manifest_reasons_survive_reopen(self, camera_pattern, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        pipeline = StreamingPipeline(
            _fresh_engine(camera_pattern),
            ReplaySource(make_camera_stream(count=950).to_list()),
            sinks=[CollectorSink()],
            checkpoint_store=store,
            checkpoint_every=300,
        )
        pipeline.run()
        reopened = CheckpointStore(str(tmp_path / "ckpt"))
        reasons = reopened.stats()["reasons"]
        assert reasons.get("shutdown") == 1
        assert sum(reasons.values()) >= 1
        # The restored checkpoint carries its reason.
        restored = reopened.latest()
        assert getattr(restored, "reason", None) in (
            "periodic",
            "manual",
            "shutdown",
            "compaction",
        )

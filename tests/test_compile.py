"""The ``repro.compile`` subsystem: kernels, indexes, dedup, checkpoints.

Four layers of coverage:

1. **Kernel equivalence** — every compiled kernel shape (local / step /
   join, specialized and fallback) is fuzzed against the interpreted
   ``Condition.evaluate`` it was lowered from; the columnar ``rows_fn``
   variants must agree with their per-event kernels row for row.
2. **Equality-index semantics** — probe results partition the indexed
   items, ``None``/unhashable keys degrade safely, pruned counts add up.
3. **Condition identity** — ``cache_key`` equality tracks semantic
   equality for transparent conditions, stays per-instance for opaque
   ones, and ``ConditionSet`` drops duplicated conjuncts exactly once.
4. **Compiled checkpointing** — a compiled engine killed mid-stream and
   resumed from a full or delta checkpoint serves the byte-identical
   match set, and the module-level compile counter proves the restored
   engine re-compiled its plan (closures never travel in a snapshot).
"""

from __future__ import annotations

import json
import pickle
import random

import pytest

from repro.adaptive import InvariantBasedPolicy
from repro.compile import (
    COMPILE_MODES,
    CompiledPlanKernels,
    EqualityIndex,
    EventBatchColumns,
    compile_join_kernel,
    compile_local_kernel,
    compile_step_kernel,
    find_equality_index_spec,
    plans_compiled_total,
    specialization_counts,
    validate_compile_mode,
)
from repro.conditions import (
    AndCondition,
    AttributeComparisonCondition,
    AttributeThresholdCondition,
    ConditionSet,
    EqualityCondition,
    PredicateCondition,
)
from repro.engine import AdaptiveCEPEngine
from repro.errors import EngineError
from repro.events import Event, EventType
from repro.optimizer import GreedyOrderPlanner
from repro.patterns import seq
from repro.streaming import (
    CheckpointStore,
    JSONLMatchWriter,
    ReplaySource,
    StreamingPipeline,
)
from repro.streaming.sinks import match_record
from tests.conftest import make_camera_stream

A, B, C = EventType("A"), EventType("B"), EventType("C")


def _event(type_=A, t=0.0, **payload):
    return Event(type_, t, payload)


def _random_events(rng, count=200):
    """Events with occasionally-missing and occasionally-weird attributes."""
    events = []
    for i in range(count):
        payload = {}
        if rng.random() < 0.9:
            payload["speed"] = rng.uniform(-10, 110)
        if rng.random() < 0.9:
            payload["person_id"] = rng.randint(0, 4)
        if rng.random() < 0.1:
            payload["person_id"] = [1, 2]  # unhashable, still comparable
        events.append(_event(t=float(i), **payload))
    return events


# ----------------------------------------------------------------------
# 1. Kernel equivalence against the interpreted evaluator
# ----------------------------------------------------------------------
def test_local_kernel_matches_interpreted_threshold():
    condition = AttributeThresholdCondition("a", "speed", "<", 60.0)
    kernel = compile_local_kernel(condition, "a", None)
    assert kernel.specialized
    rng = random.Random(5)
    for event in _random_events(rng):
        assert kernel.fn(event) == condition.evaluate({"a": event})


def test_local_kernel_rows_fn_matches_per_event_kernel():
    condition = AttributeThresholdCondition("a", "speed", ">=", 50.0)
    kernel = compile_local_kernel(condition, "a", None)
    events = _random_events(random.Random(6), count=64)
    columns = EventBatchColumns(events)
    rows = list(range(len(events)))
    assert kernel.rows_fn is not None
    assert kernel.rows_fn(columns, rows) == [kernel.fn(e) for e in events]


def test_local_kernel_falls_back_on_opaque_predicate():
    condition = PredicateCondition(["a"], lambda a: a.get("speed", 0) > 10)
    kernel = compile_local_kernel(condition, "a", None)
    assert not kernel.specialized
    event = _event(speed=25.0)
    assert kernel.fn(event) == condition.evaluate({"a": event})


def test_step_kernel_matches_interpreted_comparison():
    condition = AttributeComparisonCondition("a", "speed", "<", "b", "speed")
    kernel = compile_step_kernel(condition, "b", None)
    assert kernel.specialized
    rng = random.Random(7)
    events = _random_events(rng)
    for bound, new in zip(events, reversed(events)):
        bindings = {"a": bound}
        expected = condition.evaluate({"a": bound, "b": new})
        assert kernel.fn(bindings, new) == expected


def test_step_kernel_threshold_on_new_variable():
    condition = AttributeThresholdCondition("b", "speed", ">", 30.0)
    kernel = compile_step_kernel(condition, "b", None)
    rng = random.Random(8)
    for event in _random_events(rng):
        assert kernel.fn({}, event) == condition.evaluate({"b": event})


def test_join_kernel_matches_interpreted_both_orientations():
    condition = EqualityCondition("a", "c", "person_id")
    left_vars, right_vars = frozenset({"a", "b"}), frozenset({"c"})
    forward = compile_join_kernel(condition, left_vars, right_vars, None)
    backward = compile_join_kernel(condition, right_vars, left_vars, None)
    rng = random.Random(9)
    events = _random_events(rng)
    for ea, ec in zip(events, reversed(events)):
        expected = condition.evaluate({"a": ea, "c": ec})
        assert forward.fn({"a": ea, "b": ea}, {"c": ec}) == expected
        assert backward.fn({"c": ec}, {"a": ea, "b": ea}) == expected


# ----------------------------------------------------------------------
# 2. Equality-index semantics
# ----------------------------------------------------------------------
def test_equality_index_partitions_and_counts_pruned():
    index = EqualityIndex()
    for key, item in [(1, "x"), (1, "y"), (2, "z")]:
        index.add(key, item)
    primary, fallback, pruned = index.probe(1)
    assert sorted(primary) == ["x", "y"]
    assert fallback == []
    assert pruned == 1  # "z" skipped without evaluation


def test_equality_index_none_probe_prunes_every_keyed_item():
    index = EqualityIndex()
    index.add(1, "x")
    index.add(2, "y")
    primary, fallback, pruned = index.probe(None)
    assert list(primary) == []
    assert fallback == []
    assert pruned == 2


def test_equality_index_unhashable_stored_key_lands_in_fallback():
    index = EqualityIndex()
    index.add([1, 2], "weird")  # TypeError -> fallback bucket
    index.add(1, "x")
    primary, fallback, pruned = index.probe(2)
    assert list(primary) == []
    assert fallback == ["weird"]  # always scanned, never pruned
    assert pruned == 1


def test_equality_index_unhashable_probe_key_disables_pruning():
    index = EqualityIndex()
    index.add(1, "x")
    primary, fallback, pruned = index.probe([1, 2])
    assert primary is None  # caller must fall back to a full scan
    assert pruned == 0


def test_find_equality_index_spec_orients_either_side():
    forward = EqualityCondition("a", "b", "person_id")
    backward = EqualityCondition("b", "a", "person_id")
    for condition in (forward, backward):
        spec = find_equality_index_spec([condition], "b", ("a",))
        assert spec is not None
        assert spec.bound_variable == "a"
        assert spec.bound_attribute == "person_id"
        assert spec.event_attribute == "person_id"
        assert spec.pair == ("a", "b")
    # A non-equality comparison must not be indexed.
    less = AttributeComparisonCondition("a", "speed", "<", "b", "speed")
    assert find_equality_index_spec([less], "b", ("a",)) is None


# ----------------------------------------------------------------------
# 3. cache_key identity and ConditionSet dedup
# ----------------------------------------------------------------------
def test_cache_key_tracks_semantic_equality():
    assert (
        AttributeThresholdCondition("a", "speed", "<", 60.0).cache_key()
        == AttributeThresholdCondition("a", "speed", "<", 60.0).cache_key()
    )
    assert (
        AttributeThresholdCondition("a", "speed", "<", 60.0).cache_key()
        != AttributeThresholdCondition("a", "speed", "<", 61.0).cache_key()
    )
    assert (
        EqualityCondition("a", "b", "person_id").cache_key()
        == EqualityCondition("a", "b", "person_id").cache_key()
    )


def test_cache_key_is_per_instance_for_opaque_predicates():
    def same(a):
        return True

    first = PredicateCondition(["a"], same)
    second = PredicateCondition(["a"], same)
    assert first.cache_key() != second.cache_key()
    assert first.cache_key() == first.cache_key()  # stable per instance


def test_condition_set_dedups_repeated_conjuncts():
    duplicated = AndCondition(
        [
            EqualityCondition("a", "b", "person_id"),
            AttributeThresholdCondition("a", "speed", "<", 60.0),
            EqualityCondition("a", "b", "person_id"),  # exact repeat
            AttributeThresholdCondition("a", "speed", "<", 60.0),
        ]
    )
    condition_set = ConditionSet(duplicated)
    assert len(list(condition_set.conjuncts)) == 2
    assert len(condition_set.single_variable_conditions("a")) == 1


def test_condition_set_keeps_distinct_opaque_conjuncts():
    first = PredicateCondition(["a"], lambda a: True)
    second = PredicateCondition(["a"], lambda a: True)
    condition_set = ConditionSet.from_conditions([first, first, second])
    # The repeated *instance* merges; the distinct lambda does not.
    assert len(list(condition_set.conjuncts)) == 2


def test_validate_compile_mode_rejects_unknown_modes():
    for mode in COMPILE_MODES:
        assert validate_compile_mode(mode) == mode
    with pytest.raises(EngineError):
        validate_compile_mode("jit")


# ----------------------------------------------------------------------
# 4. Compiled plans across pickling and kill/resume checkpoints
# ----------------------------------------------------------------------
def _pattern():
    condition = AndCondition(
        [
            EqualityCondition("a", "b", "person_id"),
            EqualityCondition("b", "c", "person_id"),
        ]
    )
    return seq([A, B, C], condition=condition, window=10.0)


def _engine(compile_mode):
    return AdaptiveCEPEngine(
        _pattern(),
        GreedyOrderPlanner(),
        InvariantBasedPolicy(),
        compile_mode=compile_mode,
    )


def test_compiled_plan_kernels_rebuild_on_unpickle():
    engine = _engine("compiled")
    kernels = engine.migration_manager.active_engine._compiled
    assert isinstance(kernels, CompiledPlanKernels)
    specialized, fallback = specialization_counts(
        [k for ks in kernels.local_kernels.values() for k in ks]
        + [k for step in kernels.steps for k in step.kernels]
    )
    assert specialized > 0
    before = plans_compiled_total()
    restored = pickle.loads(pickle.dumps(kernels))
    assert plans_compiled_total() == before + 1  # unpickle re-compiled
    assert restored.indexed == kernels.indexed
    assert len(restored.steps) == len(kernels.steps)


def test_restored_engine_recompiles_and_detects_identically():
    events = make_camera_stream(count=200, seed=41).to_list()
    reference = [
        json.dumps(match_record(m))
        for m in _engine("interpreted").run(events).matches
    ]
    engine = _engine("indexed")
    live = [json.dumps(match_record(m)) for m in engine.run(events).matches]
    assert sorted(live) == sorted(reference) and reference
    before = plans_compiled_total()
    restored = AdaptiveCEPEngine.restore_state(engine.snapshot_state())
    assert plans_compiled_total() > before  # snapshot shipped no closures
    assert restored.compile_mode == "indexed"


CHECKPOINT_EVERY = 40


@pytest.mark.parametrize("checkpoint_mode", ["full", "delta"])
@pytest.mark.parametrize("compile_mode", ["compiled", "indexed"])
def test_compiled_kill_resume_serves_reference_matches(
    tmp_path, checkpoint_mode, compile_mode
):
    """Kill a compiled engine mid-stream, resume, compare byte-for-byte.

    The kill (``final_checkpoint=False``) discards all in-memory state —
    including every compiled closure — so the resume must restore the
    engine from the checkpoint and re-compile its plan before serving the
    remaining events.  The compile counter pins the re-compilation down.
    """
    pattern = _pattern()
    events = make_camera_stream(count=300, seed=13).to_list()
    reference = sorted(
        json.dumps(match_record(m))
        for m in AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy()
        )
        .run(events)
        .matches
    )
    assert reference, "the kill/resume workload must produce matches"

    sink_path = str(tmp_path / "matches.jsonl")
    store = CheckpointStore(str(tmp_path / "ckpt"))

    def build():
        engine = AdaptiveCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            compile_mode=compile_mode,
        )
        return StreamingPipeline(
            engine,
            ReplaySource(events),
            sinks=[JSONLMatchWriter(sink_path)],
            checkpoint_store=store,
            checkpoint_every=CHECKPOINT_EVERY,
            checkpoint_mode=checkpoint_mode,
            checkpoint_full_every=3,
        )

    kill_at = CHECKPOINT_EVERY * 2 + CHECKPOINT_EVERY // 2  # mid-interval
    first = build().run(max_events=kill_at, final_checkpoint=False)
    assert first.stop_reason == "max-events"

    before = plans_compiled_total()
    second = build().run()
    assert second.stop_reason == "source-exhausted"
    assert second.resumed_from == CHECKPOINT_EVERY * 2
    # The fresh pipeline engine compiles once; restoring the checkpointed
    # engine state must compile again (the snapshot carries no closures).
    assert plans_compiled_total() >= before + 2

    served = sorted(
        line for line in open(sink_path).read().splitlines() if line
    )
    assert served == reference, (
        f"{compile_mode}/{checkpoint_mode}: kill/resume lost or duplicated "
        f"matches ({len(served)} vs {len(reference)})"
    )


# ----------------------------------------------------------------------
# Batch/columnar path and pruning counters
# ----------------------------------------------------------------------
def test_process_batch_modes_agree_and_indexed_prunes():
    events = make_camera_stream(count=300, seed=17).to_list()
    reference = None
    for mode in COMPILE_MODES:
        engine = _engine(mode)
        matches = []
        for start in range(0, len(events), 64):
            matches.extend(engine.process_batch(events[start : start + 64]))
        records = sorted(json.dumps(match_record(m)) for m in matches)
        if reference is None:
            reference = records
            assert reference
        else:
            assert records == reference, f"{mode} diverged in batch mode"
        pruned = engine.migration_manager.total_counters().candidates_pruned
        if mode == "indexed":
            assert pruned > 0, "equality index never pruned a candidate"
        else:
            assert pruned == 0


def test_event_batch_columns_lazy_views():
    events = [_event(t=float(i), speed=float(i)) for i in range(4)]
    events.append(Event(B, 4.0, {"speed": 9.0}))
    columns = EventBatchColumns(events)
    assert len(columns) == 5
    assert columns.column("speed") == [0.0, 1.0, 2.0, 3.0, 9.0]
    assert columns.column("speed") is columns.column("speed")  # cached
    assert columns.column("missing") == [None] * 5
    assert columns.rows_by_type() == {"A": [0, 1, 2, 3], "B": [4]}
    assert columns.last_timestamp == 4.0

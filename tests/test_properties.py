"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.conditions import AndCondition, EqualityCondition
from repro.engine import LazyNFAEngine, TreeEvaluationEngine
from repro.events import Event, EventType, InMemoryEventStream
from repro.optimizer import GreedyOrderPlanner, ZStreamTreePlanner
from repro.adaptive import build_invariant_set
from repro.patterns import seq
from repro.plans import OrderBasedPlan, TreeBasedPlan, order_plan_cost
from repro.statistics import BucketedSlidingCounter, StatisticsSnapshot

A, B, C = EventType("A"), EventType("B"), EventType("C")

TYPE_NAMES = ("A", "B", "C")
TYPES = {"A": A, "B": B, "C": C}


def camera_pattern(window=10.0):
    condition = AndCondition(
        [EqualityCondition("a", "b", "pid"), EqualityCondition("b", "c", "pid")]
    )
    return seq([A, B, C], condition=condition, window=window)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
rates_strategy = st.fixed_dictionaries(
    {
        "A": st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
        "B": st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
        "C": st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
    }
)

selectivities_strategy = st.fixed_dictionaries(
    {
        ("a", "b"): st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        ("b", "c"): st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    }
)


def snapshot_strategy():
    return st.builds(
        lambda rates, sels: StatisticsSnapshot(rates, sels),
        rates_strategy,
        selectivities_strategy,
    )


events_strategy = st.lists(
    st.tuples(
        st.sampled_from(TYPE_NAMES),
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=0,
    max_size=40,
)


def build_stream(rows):
    events = [
        Event(TYPES[name], timestamp, {"pid": pid}) for name, timestamp, pid in rows
    ]
    return InMemoryEventStream(events)


def reference_match_keys(events, window):
    """Brute-force SEQ(A,B,C) equi-join matches as a set of event-id triples."""
    events = list(events)
    matches = set()
    for a in events:
        if a.type_name != "A":
            continue
        for b in events:
            if b.type_name != "B" or not a.timestamp < b.timestamp:
                continue
            if b.payload["pid"] != a.payload["pid"]:
                continue
            for c in events:
                if c.type_name != "C" or not b.timestamp < c.timestamp:
                    continue
                if c.payload["pid"] != b.payload["pid"]:
                    continue
                if c.timestamp - a.timestamp > window:
                    continue
                matches.add(
                    frozenset(
                        (e.type_name, e.timestamp, e.sequence_number) for e in (a, b, c)
                    )
                )
    return matches


# ---------------------------------------------------------------------------
# Sliding-window counter properties
# ---------------------------------------------------------------------------
class TestSlidingCounterProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=60),
        st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_count_never_exceeds_total_and_matches_window(self, timestamps, window):
        timestamps = sorted(timestamps)
        counter = BucketedSlidingCounter(window=window, num_buckets=16)
        for timestamp in timestamps:
            counter.add(timestamp)
        if not timestamps:
            assert counter.count() == 0
            return
        now = timestamps[-1]
        in_window = sum(1 for t in timestamps if t > now - window)
        count = counter.count(now=now)
        # Bucketed expiry may retain at most one extra bucket's worth of events
        # and never loses events that are inside the window.
        assert count >= in_window
        assert count <= len(timestamps)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=40),
        st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_rate_is_nonnegative_and_finite(self, timestamps, window):
        counter = BucketedSlidingCounter(window=window, num_buckets=8)
        for timestamp in sorted(timestamps):
            counter.add(timestamp)
        rate = counter.rate()
        assert rate >= 0.0
        assert rate < float("inf")


# ---------------------------------------------------------------------------
# Cost model and planner properties
# ---------------------------------------------------------------------------
class TestPlannerProperties:
    @given(snapshot_strategy())
    @settings(max_examples=60, deadline=None)
    def test_greedy_plan_structure_invariants(self, snapshot):
        """Structural guarantees of the greedy planner for any statistics.

        The plan is a permutation of the positive items, its first step is
        the globally cheapest single item (the greedy base case), its cost is
        finite and positive, and each block carries at most (remaining
        candidates - 1) deciding conditions.
        """
        pattern = camera_pattern()
        result = GreedyOrderPlanner().generate(pattern, snapshot)
        order = result.plan.order
        assert sorted(order) == ["a", "b", "c"]
        first_costs = {
            variable: order_plan_cost(snapshot, pattern, [variable])
            for variable in ("a", "b", "c")
        }
        assert first_costs[order[0]] == min(first_costs.values())
        total = order_plan_cost(snapshot, pattern, order)
        assert 0.0 < total < float("inf")
        for index, condition_set in enumerate(result.condition_sets):
            assert len(condition_set) <= len(order) - 1 - index

    @given(snapshot_strategy())
    @settings(max_examples=60, deadline=None)
    def test_zstream_plan_not_worse_than_canonical_trees(self, snapshot):
        pattern = camera_pattern()
        result = ZStreamTreePlanner().generate(pattern, snapshot)
        for alternative in (TreeBasedPlan.left_deep(pattern), TreeBasedPlan.right_deep(pattern)):
            assert result.plan.cost(snapshot) <= alternative.cost(snapshot) * (1.0 + 1e-9)

    @given(snapshot_strategy())
    @settings(max_examples=60, deadline=None)
    def test_planners_are_deterministic(self, snapshot):
        pattern = camera_pattern()
        assert (
            GreedyOrderPlanner().generate(pattern, snapshot).plan
            == GreedyOrderPlanner().generate(pattern, snapshot).plan
        )
        assert (
            ZStreamTreePlanner().generate(pattern, snapshot).plan
            == ZStreamTreePlanner().generate(pattern, snapshot).plan
        )

    @given(snapshot_strategy())
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_at_creation(self, snapshot):
        """Freshly built invariants are satisfied by the snapshot that built them
        (up to exact ties, which are recorded with zero slack)."""
        pattern = camera_pattern()
        result = GreedyOrderPlanner().generate(pattern, snapshot)
        invariants = build_invariant_set(result, k=0)
        for invariant in invariants:
            assert invariant.slack(snapshot) >= -1e-12

    @given(snapshot_strategy(), snapshot_strategy())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_no_false_positives_property(self, creation_snapshot, later_snapshot):
        """Theorem 1 as a property: a violated invariant implies a different plan."""
        pattern = camera_pattern()
        planner = GreedyOrderPlanner()
        result = planner.generate(pattern, creation_snapshot)
        invariants = build_invariant_set(result, k=0)
        if invariants.is_violated(later_snapshot):
            regenerated = planner.generate(pattern, later_snapshot).plan
            assert regenerated != result.plan

    @given(snapshot_strategy(), snapshot_strategy())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_full_invariant_set_has_no_false_negatives(self, creation_snapshot, later_snapshot):
        """Theorem 2 as a property: with all deciding conditions monitored, a
        different (strictly better) greedy plan implies some violated invariant."""
        pattern = camera_pattern()
        planner = GreedyOrderPlanner()
        result = planner.generate(pattern, creation_snapshot)
        invariants = build_invariant_set(result, k=0)
        regenerated = planner.generate(pattern, later_snapshot).plan
        if regenerated != result.plan and not invariants.is_violated(later_snapshot):
            # The only admissible reason is an exact tie in some monitored
            # comparison: the planner then falls back to its deterministic
            # index-based tie-break, which is not driven by the statistics and
            # hence outside the scope of Theorem 2 (which assumes strict
            # comparisons).  Absent any tie, the new plan must not be
            # strictly cheaper than the old one.
            has_tie = any(
                abs(invariant.slack(later_snapshot)) <= 1e-12 for invariant in invariants
            )
            if not has_tie:
                old_cost = order_plan_cost(later_snapshot, pattern, result.plan.order)
                new_cost = order_plan_cost(later_snapshot, pattern, regenerated.order)
                assert new_cost >= old_cost * (1.0 - 1e-9)


# ---------------------------------------------------------------------------
# Engine correctness properties
# ---------------------------------------------------------------------------
class TestEngineProperties:
    @given(events_strategy, st.sampled_from([("a", "b", "c"), ("c", "b", "a"), ("b", "a", "c")]))
    @settings(max_examples=40, deadline=None)
    def test_nfa_matches_reference_for_any_stream_and_order(self, rows, order):
        pattern = camera_pattern(window=10.0)
        stream = build_stream(rows)
        expected = reference_match_keys(stream, window=10.0)
        engine = LazyNFAEngine(OrderBasedPlan(pattern, order))
        found = set()
        for event in stream:
            for match in engine.process(event):
                found.add(match.event_ids())
        assert found == expected

    @given(events_strategy)
    @settings(max_examples=40, deadline=None)
    def test_tree_matches_reference_for_any_stream(self, rows):
        pattern = camera_pattern(window=10.0)
        stream = build_stream(rows)
        expected = reference_match_keys(stream, window=10.0)
        engine = TreeEvaluationEngine(TreeBasedPlan.right_deep(pattern))
        found = set()
        for event in stream:
            for match in engine.process(event):
                found.add(match.event_ids())
        assert found == expected

    @given(events_strategy)
    @settings(max_examples=30, deadline=None)
    def test_nfa_and_tree_always_agree(self, rows):
        pattern = camera_pattern(window=8.0)
        stream = build_stream(rows)
        nfa = LazyNFAEngine(OrderBasedPlan(pattern, ("c", "a", "b")))
        tree = TreeEvaluationEngine(TreeBasedPlan.left_deep(pattern))
        nfa_found = set()
        tree_found = set()
        for event in stream:
            for match in nfa.process(event):
                nfa_found.add(match.event_ids())
        for event in stream:
            for match in tree.process(event):
                tree_found.add(match.event_ids())
        assert nfa_found == tree_found

"""Unit tests for the instrumented plan-generation algorithms."""

from __future__ import annotations

import pytest

from repro.conditions import AndCondition, EqualityCondition
from repro.errors import OptimizerError
from repro.events import EventType
from repro.optimizer import (
    ComparisonRecorder,
    ConstantTerm,
    GreedyOrderPlanner,
    LocalSelectivityTerm,
    ProductExpression,
    RateTerm,
    SelectivityTerm,
    SumExpression,
    TrivialOrderPlanner,
    TrivialTreePlanner,
    ZStreamTreePlanner,
)
from repro.optimizer.recorder import DecidingCondition
from repro.patterns import conjunction, seq
from repro.plans import OrderBasedPlan, TreeBasedPlan
from repro.statistics import StatisticsSnapshot


A, B, C, D, E = (EventType(name) for name in "ABCDE")


def camera_pattern():
    condition = AndCondition(
        [EqualityCondition("a", "b", "pid"), EqualityCondition("b", "c", "pid")]
    )
    return seq([A, B, C], condition=condition, window=10.0)


def camera_snapshot():
    return StatisticsSnapshot(
        {"A": 100.0, "B": 15.0, "C": 10.0}, {("a", "b"): 0.3, ("b", "c"): 0.2}
    )


class TestStatExpressions:
    def test_rate_term(self):
        assert RateTerm("A").evaluate(camera_snapshot()) == 100.0
        assert RateTerm("ZZ").evaluate(camera_snapshot()) == 0.0

    def test_selectivity_term_symmetric(self):
        snapshot = camera_snapshot()
        assert SelectivityTerm("a", "b").evaluate(snapshot) == 0.3
        assert SelectivityTerm("b", "a").evaluate(snapshot) == 0.3

    def test_local_selectivity_term(self):
        snapshot = StatisticsSnapshot({"A": 1.0}, {("a", "a"): 0.4})
        assert LocalSelectivityTerm("a").evaluate(snapshot) == 0.4

    def test_constant_term(self):
        assert ConstantTerm(7.5).evaluate(camera_snapshot()) == 7.5

    def test_product_and_sum(self):
        snapshot = camera_snapshot()
        product = ProductExpression([RateTerm("B"), SelectivityTerm("a", "b")])
        assert product.evaluate(snapshot) == pytest.approx(4.5)
        total = SumExpression([ConstantTerm(1.0), product])
        assert total.evaluate(snapshot) == pytest.approx(5.5)

    def test_operator_overloads(self):
        snapshot = camera_snapshot()
        expression = RateTerm("C") * SelectivityTerm("b", "c") + ConstantTerm(1.0)
        assert expression.evaluate(snapshot) == pytest.approx(3.0)

    def test_nested_products_flattened(self):
        product = ProductExpression(
            [ProductExpression([RateTerm("A"), RateTerm("B")]), RateTerm("C")]
        )
        assert len(product.factors) == 3

    def test_describe(self):
        assert RateTerm("A").describe() == "rate(A)"
        assert "sel(a,b)" in ProductExpression([RateTerm("A"), SelectivityTerm("a", "b")]).describe()


class TestDecidingCondition:
    def test_holds_and_slack(self):
        condition = DecidingCondition(lhs=RateTerm("C"), rhs=RateTerm("B"))
        snapshot = camera_snapshot()
        assert condition.holds(snapshot)
        assert condition.slack(snapshot) == pytest.approx(5.0)

    def test_distance_requires_reversal_by_margin(self):
        condition = DecidingCondition(lhs=RateTerm("C"), rhs=RateTerm("B"))
        # C grows slightly above B: violated with d=0 but not with d=0.5.
        snapshot = StatisticsSnapshot({"B": 10.0, "C": 12.0})
        assert not condition.holds(snapshot, distance=0.0)
        assert condition.holds(snapshot, distance=0.5)
        # C grows far above B: violated for both.
        snapshot = StatisticsSnapshot({"B": 10.0, "C": 20.0})
        assert not condition.holds(snapshot, distance=0.5)

    def test_relative_difference(self):
        condition = DecidingCondition(lhs=RateTerm("C"), rhs=RateTerm("B"))
        assert condition.relative_difference(camera_snapshot()) == pytest.approx(0.5)


class TestComparisonRecorder:
    def test_records_in_block_order(self):
        recorder = ComparisonRecorder()
        recorder.record("block1", RateTerm("C"), RateTerm("B"))
        recorder.record("block2", RateTerm("B"), RateTerm("A"))
        recorder.record("block1", RateTerm("C"), RateTerm("A"))
        sets = recorder.condition_sets()
        assert [s.block_label for s in sets] == ["block1", "block2"]
        assert len(sets[0]) == 2

    def test_drop_blocks_not_in(self):
        recorder = ComparisonRecorder()
        recorder.record("keep", RateTerm("C"), RateTerm("B"))
        recorder.record("drop", RateTerm("B"), RateTerm("A"))
        recorder.drop_blocks_not_in(["keep"])
        assert [s.block_label for s in recorder.condition_sets()] == ["keep"]

    def test_reorder_blocks_unknown_label(self):
        recorder = ComparisonRecorder()
        recorder.record("x", RateTerm("C"), RateTerm("B"))
        with pytest.raises(OptimizerError):
            recorder.reorder_blocks(["x", "y"])

    def test_tightest_selection(self):
        recorder = ComparisonRecorder()
        recorder.record("block", RateTerm("C"), RateTerm("B"))   # slack 5
        recorder.record("block", RateTerm("C"), RateTerm("A"))   # slack 90
        snapshot = camera_snapshot()
        tightest = recorder.condition_sets()[0].tightest(snapshot, k=1)
        assert len(tightest) == 1
        assert tightest[0].rhs.describe() == "rate(B)"

    def test_tightest_k_zero_selects_all(self):
        recorder = ComparisonRecorder()
        recorder.record("block", RateTerm("C"), RateTerm("B"))
        recorder.record("block", RateTerm("C"), RateTerm("A"))
        assert len(recorder.condition_sets()[0].tightest(camera_snapshot(), k=0)) == 2


class TestPlanGenerationResult:
    def _result(self):
        return GreedyOrderPlanner().generate(camera_pattern(), camera_snapshot())

    def test_bundles_plan_with_its_creation_snapshot(self):
        result = self._result()
        # The snapshot the result carries is the statistics the plan was
        # generated from -- what makes ``plan.cost(result.snapshot)`` the
        # *predicted* cost the drift monitor freezes at install time.
        assert result.snapshot.rate("A") == 100.0
        assert result.plan.cost(result.snapshot) > 0.0
        assert result.generator_name == GreedyOrderPlanner().name

    def test_block_counts_agree_with_condition_sets(self):
        result = self._result()
        assert result.num_blocks == len(result.condition_sets)
        assert result.total_conditions() == sum(
            len(s) for s in result.condition_sets
        )
        assert result.total_conditions() >= result.num_blocks - 1

    def test_describe_lists_every_deciding_condition(self):
        result = self._result()
        text = result.describe()
        assert result.plan.describe() in text
        for condition_set in result.condition_sets:
            for condition in condition_set:
                assert condition.describe() in text

    def test_open_block_registers_empty_sets_in_order(self):
        recorder = ComparisonRecorder()
        recorder.open_block("first")
        recorder.record("second", RateTerm("C"), RateTerm("B"))
        recorder.open_block("first")  # idempotent
        sets = recorder.condition_sets()
        assert [s.block_label for s in sets] == ["first", "second"]
        assert sets[0].is_empty() and not sets[1].is_empty()

    def test_count_comparison_tracks_unrecorded_comparisons(self):
        recorder = ComparisonRecorder()
        recorder.count_comparison()
        recorder.count_comparison()
        recorder.record("block", RateTerm("C"), RateTerm("B"))
        assert recorder.comparisons_performed == 2


class TestGreedyOrderPlanner:
    def test_orders_by_ascending_rate(self):
        result = GreedyOrderPlanner().generate(camera_pattern(), camera_snapshot())
        assert isinstance(result.plan, OrderBasedPlan)
        assert result.plan.order == ("c", "b", "a")

    def test_deciding_conditions_match_paper_example(self):
        result = GreedyOrderPlanner().generate(camera_pattern(), camera_snapshot())
        # DCS1 = {rateC < rateB, rateC < rateA}, DCS2 = {rateB*sel < rateA}, DCS3 = {}
        sizes = [len(s) for s in result.condition_sets]
        assert sizes == [2, 1, 0]

    def test_block_order_matches_plan_order(self):
        result = GreedyOrderPlanner().generate(camera_pattern(), camera_snapshot())
        labels = [s.block_label for s in result.condition_sets]
        assert "C" in labels[0] and "B" in labels[1] and "A" in labels[2]

    def test_selectivity_influences_order(self):
        pattern = camera_pattern()
        # B is rarer than C in raw rate, but the b-c predicate is so selective
        # that starting from C and then B is still best; make A's selectivity
        # to b extremely low so A is picked second.
        snapshot = StatisticsSnapshot(
            {"A": 100.0, "B": 15.0, "C": 10.0}, {("a", "b"): 0.001, ("b", "c"): 0.9}
        )
        result = GreedyOrderPlanner().generate(pattern, snapshot)
        assert result.plan.order[0] == "c"

    def test_deterministic_for_equal_rates(self):
        snapshot = StatisticsSnapshot({"A": 5.0, "B": 5.0, "C": 5.0})
        first = GreedyOrderPlanner().generate(camera_pattern(), snapshot)
        second = GreedyOrderPlanner().generate(camera_pattern(), snapshot)
        assert first.plan == second.plan
        # Ties are recorded so the adaptation layer can revisit the choice.
        assert first.total_conditions() > 0

    def test_missing_rates_rejected(self):
        with pytest.raises(OptimizerError):
            GreedyOrderPlanner().generate(camera_pattern(), StatisticsSnapshot({"A": 1.0}))

    def test_missing_rates_allowed_when_disabled(self):
        planner = GreedyOrderPlanner(require_rates=False)
        result = planner.generate(camera_pattern(), StatisticsSnapshot({"A": 1.0}))
        assert isinstance(result.plan, OrderBasedPlan)

    def test_requires_snapshot(self):
        with pytest.raises(OptimizerError):
            GreedyOrderPlanner().generate(camera_pattern(), None)

    def test_conjunction_pattern_supported(self):
        pattern = conjunction([A, B, C], condition=EqualityCondition("a", "b", "pid"))
        result = GreedyOrderPlanner().generate(pattern, camera_snapshot())
        assert result.plan.order[0] == "c"

    def test_comparisons_counted(self):
        result = GreedyOrderPlanner().generate(camera_pattern(), camera_snapshot())
        assert result.comparisons_performed == 3  # 2 + 1 + 0


class TestZStreamTreePlanner:
    def test_produces_tree_plan(self):
        result = ZStreamTreePlanner().generate(camera_pattern(), camera_snapshot())
        assert isinstance(result.plan, TreeBasedPlan)

    def test_chooses_cheapest_tree(self):
        pattern = camera_pattern()
        snapshot = camera_snapshot()
        result = ZStreamTreePlanner().generate(pattern, snapshot)
        # With A frequent and B, C rare, joining (B, C) first is cheapest.
        alternatives = [
            TreeBasedPlan.left_deep(pattern),
            TreeBasedPlan.right_deep(pattern),
        ]
        best_alternative = min(plan.cost(snapshot) for plan in alternatives)
        assert result.plan.cost(snapshot) <= best_alternative

    def test_condition_sets_bottom_up(self):
        result = ZStreamTreePlanner().generate(camera_pattern(), camera_snapshot())
        labels = [s.block_label for s in result.condition_sets]
        assert len(labels) == 2
        # The last block is the root (covers all three variables).
        assert labels[-1].count("+") == 2

    def test_root_block_has_conditions(self):
        result = ZStreamTreePlanner().generate(camera_pattern(), camera_snapshot())
        assert len(result.condition_sets[-1]) >= 1

    def test_larger_pattern(self):
        condition = AndCondition(
            [
                EqualityCondition("a", "b", "pid"),
                EqualityCondition("b", "c", "pid"),
                EqualityCondition("c", "d", "pid"),
                EqualityCondition("d", "e", "pid"),
            ]
        )
        pattern = seq([A, B, C, D, E], condition=condition, window=10)
        snapshot = StatisticsSnapshot(
            {"A": 50.0, "B": 5.0, "C": 30.0, "D": 2.0, "E": 10.0},
            {("a", "b"): 0.5, ("b", "c"): 0.5, ("c", "d"): 0.5, ("d", "e"): 0.5},
        )
        result = ZStreamTreePlanner().generate(pattern, snapshot)
        assert len(result.plan.leaves()) == 5
        assert len(result.condition_sets) == 4

    def test_single_item_pattern(self):
        pattern = seq([A], window=10)
        result = ZStreamTreePlanner().generate(pattern, StatisticsSnapshot({"A": 5.0}))
        assert result.plan.variables_in_plan_order() == ("a",)
        assert result.condition_sets == []

    def test_missing_rates_rejected(self):
        with pytest.raises(OptimizerError):
            ZStreamTreePlanner().generate(camera_pattern(), StatisticsSnapshot({}))

    def test_determinism(self):
        first = ZStreamTreePlanner().generate(camera_pattern(), camera_snapshot())
        second = ZStreamTreePlanner().generate(camera_pattern(), camera_snapshot())
        assert first.plan == second.plan


class TestTrivialPlanners:
    def test_trivial_order_planner(self):
        result = TrivialOrderPlanner().generate(camera_pattern(), None)
        assert result.plan.order == ("a", "b", "c")
        assert all(s.is_empty() for s in result.condition_sets)

    def test_trivial_tree_planner(self):
        result = TrivialTreePlanner().generate(camera_pattern(), None)
        assert isinstance(result.plan, TreeBasedPlan)
        assert all(s.is_empty() for s in result.condition_sets)

    def test_trivial_planners_ignore_statistics(self):
        snapshot = camera_snapshot()
        assert TrivialOrderPlanner().generate(camera_pattern(), snapshot).plan.order == (
            "a",
            "b",
            "c",
        )

"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.conditions import AndCondition, EqualityCondition
from repro.events import Event, EventType, InMemoryEventStream
from repro.patterns import seq
from repro.statistics import StatisticsSnapshot


@pytest.fixture
def camera_types():
    """The three camera event types of the paper's Example 1."""
    return EventType("A"), EventType("B"), EventType("C")


@pytest.fixture
def camera_pattern(camera_types):
    """SEQ(A, B, C) with the person-id equi-join conditions and a 10-unit window."""
    a, b, c = camera_types
    condition = AndCondition(
        [EqualityCondition("a", "b", "person_id"), EqualityCondition("b", "c", "person_id")]
    )
    return seq([a, b, c], condition=condition, window=10.0)


@pytest.fixture
def camera_snapshot():
    """The arrival rates used throughout the paper's running example."""
    return StatisticsSnapshot(
        {"A": 100.0, "B": 15.0, "C": 10.0},
        {("a", "b"): 0.3, ("b", "c"): 0.2},
        timestamp=0.0,
    )


def make_camera_stream(count: int = 300, seed: int = 0, persons: int = 5):
    """A small random stream over the camera types, biased towards A."""
    a, b, c = EventType("A"), EventType("B"), EventType("C")
    rng = random.Random(seed)
    events = []
    t = 0.0
    for _ in range(count):
        t += rng.uniform(0.05, 0.2)
        roll = rng.random()
        event_type = a if roll < 0.6 else (b if roll < 0.85 else c)
        events.append(Event(event_type, t, {"person_id": rng.randint(0, persons - 1)}))
    return InMemoryEventStream(events)


@pytest.fixture
def camera_stream():
    return make_camera_stream()


def brute_force_sequence_matches(events, type_order, window, key="person_id"):
    """Reference implementation: count SEQ matches with an equi-join on ``key``.

    Events must occur in the given type order, strictly increasing in time,
    within the window, and all sharing the same ``key`` value.
    """
    events = list(events)

    def extend(prefix, next_index):
        if next_index == len(type_order):
            return 1
        total = 0
        last = prefix[-1] if prefix else None
        for event in events:
            if event.type_name != type_order[next_index]:
                continue
            if last is not None:
                if not event.timestamp > last.timestamp:
                    continue
                if event.payload[key] != last.payload[key]:
                    continue
                first = prefix[0]
                if event.timestamp - first.timestamp > window:
                    continue
            total += extend(prefix + [event], next_index + 1)
        return total

    return extend([], 0)

"""Tests for the partitioned parallel execution subsystem (repro.parallel)."""

from __future__ import annotations

import pytest

from repro.adaptive import InvariantBasedPolicy, StaticPolicy
from repro.datasets import StockDatasetSimulator, TrafficDatasetSimulator
from repro.engine import AdaptiveCEPEngine
from repro.errors import ParallelExecutionError, PartitionError
from repro.events import Event, EventType, InMemoryEventStream
from repro.optimizer import GreedyOrderPlanner, ZStreamTreePlanner
from repro.parallel import (
    BroadcastPartitioner,
    EventBatch,
    KeyPartitioner,
    MultiprocessExecutor,
    ParallelCEPEngine,
    RoundRobinPartitioner,
    SerialExecutor,
    ShardedEngine,
    batched,
    match_signature,
    merge_matches,
)
from repro.parallel.shard import ShardOutput
from repro.patterns import seq
from repro.workloads import WorkloadGenerator

from tests.conftest import make_camera_stream


# ----------------------------------------------------------------------
# Shared workloads (module-scoped: streams are re-iterable and engines are
# built fresh per run, so sharing is safe and keeps the suite fast).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stocks_workload():
    dataset = StockDatasetSimulator(duration_hint=60.0)
    workload = WorkloadGenerator(dataset)
    stream = dataset.generate(duration=60.0, seed=3, max_events=2500)
    return workload, stream


@pytest.fixture(scope="module")
def traffic_workload():
    dataset = TrafficDatasetSimulator(duration_hint=60.0)
    workload = WorkloadGenerator(dataset)
    stream = dataset.generate(duration=60.0, seed=3, max_events=2500)
    return workload, stream


@pytest.fixture(scope="module")
def keyed_workload():
    dataset = StockDatasetSimulator(duration_hint=60.0)
    workload = WorkloadGenerator(dataset)
    return workload.keyed_workload(3, duration=60.0, entities=5, max_events=3000)


def sequential_matches(pattern, stream, planner=None, policy=None):
    engine = AdaptiveCEPEngine(
        pattern, planner or GreedyOrderPlanner(), policy or InvariantBasedPolicy()
    )
    return engine.run(stream)


def signatures(matches):
    return sorted(match_signature(match) for match in matches)


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    def _event(self, **payload):
        return Event(EventType("A"), 0.0, payload)

    def test_broadcast_routes_to_every_shard(self):
        assert BroadcastPartitioner().route(self._event(), 4) == (0, 1, 2, 3)

    def test_round_robin_cycles(self):
        partitioner = RoundRobinPartitioner()
        routes = [partitioner.route(self._event(), 3)[0] for _ in range(6)]
        assert routes == [0, 1, 2, 0, 1, 2]

    def test_key_partitioner_is_deterministic_and_key_consistent(self):
        partitioner = KeyPartitioner("user")
        first = partitioner.route(self._event(user=42), 4)
        second = partitioner.route(self._event(user=42), 4)
        assert first == second
        assert len(first) == 1 and 0 <= first[0] < 4

    def test_key_partitioner_numeric_keys_hash_by_value_not_type(self):
        # 7 == 7.0 == True under the engine's equality joins, so numerically
        # equal keys of different types must land on the same shard.
        partitioner = KeyPartitioner("user")
        for shards in (2, 3, 5, 7):
            assert (
                partitioner.route(self._event(user=7), shards)
                == partitioner.route(self._event(user=7.0), shards)
            )
            assert (
                partitioner.route(self._event(user=1), shards)
                == partitioner.route(self._event(user=True), shards)
            )

    def test_key_partitioner_missing_key_routes_to_one_shard(self):
        partitioner = KeyPartitioner("user")
        routes = {partitioner.route(self._event(), 4)[0] for _ in range(5)}
        assert len(routes) == 1

    def test_key_partitioner_requires_attribute_name(self):
        with pytest.raises(PartitionError):
            KeyPartitioner("")

    def test_key_validation_accepts_key_joined_pattern(self, keyed_workload):
        pattern, _ = keyed_workload
        KeyPartitioner("entity_id").validate(pattern, 4)

    def test_key_validation_rejects_cross_key_correlation(self, stocks_workload):
        # Stock patterns correlate events through price differences, not a
        # shared key: a match may combine events of different entities.
        workload, _ = stocks_workload
        pattern = workload.sequence_pattern(3)
        with pytest.raises(PartitionError):
            KeyPartitioner("entity_id").validate(pattern, 2)

    def test_key_validation_rejects_unconstrained_negated_item(self, camera_types):
        # The negated item is not key-joined: whether it suppresses a match
        # can depend on events living in another shard.
        a, b, c = camera_types
        from repro.conditions import EqualityCondition
        from repro.patterns import PatternBuilder

        pattern = (
            PatternBuilder.sequence()
            .event(a, "a")
            .negated_event(b, "b")
            .event(c, "c")
            .where(EqualityCondition("a", "c", "person_id"))
            .within(10.0)
            .build()
        )
        with pytest.raises(PartitionError):
            KeyPartitioner("person_id").validate(pattern, 2)

    def test_key_validation_single_shard_always_allowed(self, stocks_workload):
        workload, _ = stocks_workload
        KeyPartitioner("entity_id").validate(workload.sequence_pattern(3), 1)

    def test_round_robin_validation_rejects_multi_event_patterns(self, camera_pattern):
        with pytest.raises(PartitionError):
            RoundRobinPartitioner().validate(camera_pattern, 2)

    def test_round_robin_validation_allows_single_event_pattern(self):
        pattern = seq([EventType("A")], window=5.0)
        RoundRobinPartitioner().validate(pattern, 4)

    def test_round_robin_validation_rejects_single_kleene_item(self):
        # A lone Kleene item still combines several events per match, so a
        # content-blind split would corrupt its runs.
        from repro.patterns import PatternBuilder

        pattern = (
            PatternBuilder.sequence().kleene_event(EventType("A"), "a").within(5.0).build()
        )
        with pytest.raises(PartitionError):
            RoundRobinPartitioner().validate(pattern, 2)

    def test_key_validation_rejects_unconstrained_single_kleene_item(self):
        from repro.patterns import PatternBuilder

        pattern = (
            PatternBuilder.sequence().kleene_event(EventType("A"), "a").within(5.0).build()
        )
        with pytest.raises(PartitionError):
            KeyPartitioner("entity_id").validate(pattern, 2)


# ----------------------------------------------------------------------
# Merger
# ----------------------------------------------------------------------
class TestMerger:
    def _output(self, shard_id, matches):
        from repro.metrics import RunMetrics

        return ShardOutput(shard_id=shard_id, matches=matches, metrics=RunMetrics())

    def test_merge_deduplicates_identical_matches(self):
        from repro.engine.match import Match

        event = Event(EventType("A"), 1.0, {"x": 1})
        duplicate = Match("p", {"a": event}, detection_time=1.0)
        merged, dropped = merge_matches(
            [self._output(0, [duplicate]), self._output(1, [duplicate])]
        )
        assert len(merged) == 1
        assert dropped == 1

    def test_merge_orders_by_detection_time(self):
        from repro.engine.match import Match

        early = Match("p", {"a": Event(EventType("A"), 1.0)}, detection_time=1.0)
        late = Match("p", {"a": Event(EventType("A"), 5.0)}, detection_time=5.0)
        merged, dropped = merge_matches(
            [self._output(0, [late]), self._output(1, [early])]
        )
        assert [match.detection_time for match in merged] == [1.0, 5.0]
        assert dropped == 0

    def test_distinct_matches_at_same_time_are_kept(self):
        from repro.engine.match import Match

        first = Match("p", {"a": Event(EventType("A"), 2.0)}, detection_time=2.0)
        second = Match("p", {"a": Event(EventType("A"), 2.0)}, detection_time=2.0)
        merged, dropped = merge_matches([self._output(0, [first, second])])
        assert len(merged) == 2
        assert dropped == 0


# ----------------------------------------------------------------------
# Sharded engine plumbing
# ----------------------------------------------------------------------
class TestShardedEngine:
    def test_rejects_non_positive_shard_count(self, camera_pattern):
        with pytest.raises(ParallelExecutionError):
            ShardedEngine(
                camera_pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), 0
            )

    def test_replicas_have_independent_state(self, camera_pattern):
        sharded = ShardedEngine(
            camera_pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), 3
        )
        engines = [shard.engine for shard in sharded.shards]
        assert len({id(engine) for engine in engines}) == 3
        assert len({id(engine.collector) for engine in engines}) == 3
        assert len({id(engine.controller) for engine in engines}) == 3

    def test_dispatch_counts_distinct_events_under_broadcast(self, camera_pattern):
        sharded = ShardedEngine(
            camera_pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), 2
        )
        stream = make_camera_stream(count=50)
        ingested = sharded.dispatch(stream, BroadcastPartitioner(), batch_size=16)
        assert ingested == 50
        for shard in sharded.shards:
            assert shard.pending_events == 50

    def test_dispatch_preserves_per_shard_order(self, keyed_workload):
        pattern, stream = keyed_workload
        sharded = ShardedEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), 4)
        sharded.dispatch(stream, KeyPartitioner("entity_id"), batch_size=64)
        for shard in sharded.shards:
            timestamps = [
                event.timestamp for batch in shard.batches for event in batch
            ]
            assert timestamps == sorted(timestamps)

    def test_batches_respect_requested_size(self, camera_pattern):
        sharded = ShardedEngine(
            camera_pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), 1
        )
        stream = make_camera_stream(count=100)
        sharded.dispatch(stream, BroadcastPartitioner(), batch_size=32)
        sizes = [len(batch) for batch in sharded.shards[0].batches]
        assert sizes == [32, 32, 32, 4]


# ----------------------------------------------------------------------
# Parallel-vs-sequential equivalence (the subsystem's core property)
# ----------------------------------------------------------------------
class TestEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("family", ["sequence", "conjunction", "kleene"])
    def test_broadcast_equivalence_on_stocks(self, stocks_workload, family, shards):
        workload, stream = stocks_workload
        pattern = workload.pattern(family, 3)
        sequential = sequential_matches(pattern, stream)
        parallel = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=shards,
            partitioner=BroadcastPartitioner(),
        ).run(stream)
        assert signatures(parallel.matches) == signatures(sequential.matches)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_broadcast_equivalence_on_traffic(self, traffic_workload, shards):
        workload, stream = traffic_workload
        pattern = workload.sequence_pattern(3)
        sequential = sequential_matches(pattern, stream)
        parallel = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=shards,
        ).run(stream)
        assert signatures(parallel.matches) == signatures(sequential.matches)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_key_partitioned_equivalence(self, keyed_workload, shards):
        pattern, stream = keyed_workload
        sequential = sequential_matches(pattern, stream)
        parallel = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=shards,
            partitioner=KeyPartitioner("entity_id"),
        ).run(stream)
        assert signatures(parallel.matches) == signatures(sequential.matches)
        # Key partitioning never duplicates work across shards.
        assert parallel.metrics.extra["duplicates_dropped"] == 0.0

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_round_robin_equivalence_on_single_event_pattern(self, shards):
        from repro.conditions import AttributeThresholdCondition

        pattern = seq(
            [EventType("A")],
            condition=AttributeThresholdCondition("a", "person_id", ">=", 2),
            window=10.0,
        )
        stream = make_camera_stream(count=200)
        sequential = sequential_matches(pattern, stream)
        parallel = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=shards,
            partitioner=RoundRobinPartitioner(),
        ).run(stream)
        assert signatures(parallel.matches) == signatures(sequential.matches)

    def test_zstream_planner_equivalence(self, keyed_workload):
        pattern, stream = keyed_workload
        sequential = sequential_matches(
            pattern, stream, planner=ZStreamTreePlanner(), policy=StaticPolicy()
        )
        parallel = ParallelCEPEngine(
            pattern,
            ZStreamTreePlanner(),
            StaticPolicy(),
            shards=2,
            partitioner=KeyPartitioner("entity_id"),
        ).run(stream)
        assert signatures(parallel.matches) == signatures(sequential.matches)

    def test_single_shard_serial_is_identical_to_sequential(self, keyed_workload):
        """The acceptance criterion: shards=1 + SerialExecutor reproduces the
        sequential engine bit for bit (same matches, same count metrics)."""
        pattern, stream = keyed_workload
        sequential = sequential_matches(pattern, stream)
        parallel = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=1,
            executor=SerialExecutor(),
        ).run(stream)
        assert signatures(parallel.matches) == signatures(sequential.matches)
        assert parallel.metrics.matches_emitted == sequential.metrics.matches_emitted
        assert parallel.metrics.events_processed == sequential.metrics.events_processed
        assert (
            parallel.metrics.partial_matches_created
            == sequential.metrics.partial_matches_created
        )
        assert parallel.metrics.reoptimizations == sequential.metrics.reoptimizations

    def test_unsafe_configurations_are_refused(self, stocks_workload):
        workload, _ = stocks_workload
        pattern = workload.sequence_pattern(3)
        with pytest.raises(PartitionError):
            ParallelCEPEngine(
                pattern,
                GreedyOrderPlanner(),
                InvariantBasedPolicy(),
                shards=2,
                partitioner=KeyPartitioner("entity_id"),
            )
        with pytest.raises(PartitionError):
            ParallelCEPEngine(
                pattern,
                GreedyOrderPlanner(),
                InvariantBasedPolicy(),
                shards=2,
                partitioner=RoundRobinPartitioner(),
            )


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class TestExecutors:
    def test_multiprocess_matches_serial(self, keyed_workload):
        pattern, stream = keyed_workload

        def run(executor):
            return ParallelCEPEngine(
                pattern,
                GreedyOrderPlanner(),
                InvariantBasedPolicy(),
                shards=2,
                partitioner=KeyPartitioner("entity_id"),
                executor=executor,
            ).run(stream)

        serial = run(SerialExecutor())
        multiprocess = run(MultiprocessExecutor(max_workers=2))
        assert signatures(multiprocess.matches) == signatures(serial.matches)
        assert multiprocess.metrics.matches_emitted == serial.metrics.matches_emitted

    def test_multiprocess_single_shard_runs_inline(self, keyed_workload):
        pattern, stream = keyed_workload
        result = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=1,
            executor=MultiprocessExecutor(),
        ).run(stream)
        assert result.metrics.extra["shards"] == 1.0

    def test_multiprocess_rejects_non_positive_workers(self):
        with pytest.raises(ParallelExecutionError):
            MultiprocessExecutor(max_workers=0)

    def test_buffers_drained_after_multiprocess_run(self, keyed_workload):
        # The process pool runs *copies* of the shards; the facade must still
        # drain the parent-side buffers so later runs never re-dispatch.
        pattern, stream = keyed_workload
        engine = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=2,
            partitioner=KeyPartitioner("entity_id"),
            executor=MultiprocessExecutor(max_workers=2),
        )
        engine.run(stream)
        assert all(
            shard.pending_events == 0 for shard in engine.sharded_engine.shards
        )

    def test_unpicklable_shard_reports_pickling_error(self):
        from repro.conditions import PredicateCondition

        pattern = seq(
            [EventType("A"), EventType("B")],
            condition=PredicateCondition(
                ["a", "b"], lambda a, b: True, name="closure"
            ),
            window=10.0,
        )
        engine = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=2,
            executor=MultiprocessExecutor(max_workers=2),
        )
        with pytest.raises(ParallelExecutionError, match="not picklable"):
            engine.run(make_camera_stream(count=20))


# ----------------------------------------------------------------------
# Facade details
# ----------------------------------------------------------------------
class TestParallelCEPEngine:
    def test_plan_history_is_prefixed_per_shard(self, keyed_workload):
        pattern, stream = keyed_workload
        result = ParallelCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), shards=2,
            partitioner=KeyPartitioner("entity_id"),
        ).run(stream)
        assert result.plan_history
        assert all(entry.startswith("shard ") for entry in result.plan_history)

    def test_metrics_extra_records_dispatch_totals(self, keyed_workload):
        pattern, stream = keyed_workload
        result = ParallelCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), shards=3,
        ).run(stream)
        # Broadcast dispatches every event to every shard.
        assert result.metrics.extra["events_dispatched"] == 3.0 * len(stream)
        assert result.metrics.extra["shards"] == 3.0

    def test_keyed_stream_tags_every_event(self, stocks_workload):
        workload, _ = stocks_workload
        stream = workload.keyed_stream(duration=20.0, entities=4, max_events=500)
        entities = {event["entity_id"] for event in stream}
        assert entities <= set(range(4))
        assert len(entities) > 1

    def test_empty_stream_yields_empty_result(self, keyed_workload):
        pattern, _ = keyed_workload
        result = ParallelCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), shards=2,
            partitioner=KeyPartitioner("entity_id"),
        ).run(InMemoryEventStream([]))
        assert result.matches == []
        assert result.metrics.events_processed == 0

"""Tests for the experiment drivers (small-scale runs)."""

from __future__ import annotations

import pytest

from repro.adaptive import ConstantThresholdPolicy, InvariantBasedPolicy, StaticPolicy, UnconditionalPolicy
from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    PolicySpec,
    build_planner,
    build_policy,
    compare_methods,
    distance_estimation_table,
    distance_sweep,
    find_optimal_distance,
    format_table,
    k_invariant_ablation,
    make_stream,
    rows_to_csv,
    run_single,
    selection_strategy_ablation,
)
from repro.experiments.config import default_method_specs
from repro.experiments.distance_estimation import accuracy_ratio
from repro.experiments.method_comparison import DEFAULT_METHODS
from repro.experiments.reporting import pivot
from repro.experiments.runner import build_dataset, build_workload
from repro.optimizer import GreedyOrderPlanner, ZStreamTreePlanner


SMALL = ExperimentConfig(
    dataset="traffic",
    algorithm="greedy",
    duration=40.0,
    max_events=2500,
    sizes=(3,),
    monitoring_interval=2.0,
    num_types=8,
)


class TestConfig:
    def test_policy_spec_validation(self):
        with pytest.raises(ExperimentError):
            PolicySpec("bogus")

    def test_policy_spec_names(self):
        assert PolicySpec("invariant", distance=0.1).name == "invariant(d=0.1)"
        assert PolicySpec("invariant", use_davg_distance=True).name == "invariant(davg)"
        assert PolicySpec("invariant", distance=0.1, k=3).name == "invariant(d=0.1,K=3)"
        assert PolicySpec("threshold", threshold=0.3).name == "threshold(t=0.3)"
        assert PolicySpec("static").name == "static"
        assert PolicySpec("invariant", label="custom").name == "custom"

    def test_experiment_config_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(algorithm="bogus")
        with pytest.raises(ExperimentError):
            ExperimentConfig(duration=-1)

    def test_default_method_specs(self):
        specs = default_method_specs()
        assert [spec.kind for spec in specs] == [
            "invariant",
            "threshold",
            "unconditional",
            "static",
        ]

    def test_default_methods_per_combination(self):
        specs = DEFAULT_METHODS("traffic", "zstream")
        invariant = specs[0]
        assert invariant.k == 3  # K-invariant recommended for ZStream


class TestBuilders:
    def test_build_planner(self):
        assert isinstance(build_planner("greedy"), GreedyOrderPlanner)
        assert isinstance(build_planner("zstream"), ZStreamTreePlanner)
        with pytest.raises(ExperimentError):
            build_planner("bogus")

    def test_build_policy(self):
        assert isinstance(build_policy(PolicySpec("invariant")), InvariantBasedPolicy)
        assert isinstance(build_policy(PolicySpec("threshold")), ConstantThresholdPolicy)
        assert isinstance(build_policy(PolicySpec("unconditional")), UnconditionalPolicy)
        assert isinstance(build_policy(PolicySpec("static")), StaticPolicy)

    def test_build_policy_davg(self):
        policy = build_policy(PolicySpec("invariant", use_davg_distance=True))
        assert isinstance(policy, InvariantBasedPolicy)

    def test_build_dataset_and_stream(self):
        dataset = build_dataset(SMALL)
        stream = make_stream(dataset, SMALL)
        assert len(stream) > 100
        assert len(stream) <= SMALL.max_events


class TestRunSingle:
    def test_run_single_produces_metrics(self):
        dataset = build_dataset(SMALL)
        workload = build_workload(SMALL, dataset)
        stream = make_stream(dataset, SMALL)
        pattern = workload.sequence_pattern(3)
        metrics = run_single(pattern, dataset, stream, "greedy", PolicySpec("invariant", distance=0.1))
        assert metrics.events_processed == len(stream)
        assert metrics.throughput > 0

    def test_static_policy_never_reoptimizes(self):
        dataset = build_dataset(SMALL)
        workload = build_workload(SMALL, dataset)
        stream = make_stream(dataset, SMALL)
        pattern = workload.sequence_pattern(3)
        metrics = run_single(pattern, dataset, stream, "greedy", PolicySpec("static"))
        assert metrics.reoptimizations == 0

    def test_composite_pattern_runs_through_multi_engine(self):
        dataset = build_dataset(SMALL)
        workload = build_workload(SMALL, dataset)
        stream = make_stream(dataset, SMALL)
        composite = workload.composite_pattern(3)
        metrics = run_single(composite, dataset, stream, "greedy", PolicySpec("invariant"))
        assert metrics.events_processed == len(stream)

    def test_all_methods_find_same_matches(self):
        dataset = build_dataset(SMALL)
        workload = build_workload(SMALL, dataset)
        stream = make_stream(dataset, SMALL)
        pattern = workload.sequence_pattern(3)
        counts = {
            spec.kind: run_single(pattern, dataset, stream, "greedy", spec).matches_emitted
            for spec in default_method_specs()
        }
        assert len(set(counts.values())) == 1, counts

    def test_sharded_run_matches_sequential(self):
        dataset = build_dataset(SMALL)
        workload = build_workload(SMALL, dataset)
        stream = make_stream(dataset, SMALL)
        pattern = workload.sequence_pattern(3)
        spec = PolicySpec("invariant", distance=0.1)
        sequential = run_single(pattern, dataset, stream, "greedy", spec)
        sharded = run_single(
            pattern, dataset, stream, "greedy", spec, shards=2, batch_size=128
        )
        assert sharded.matches_emitted == sequential.matches_emitted
        assert sharded.events_processed == sequential.events_processed
        assert sharded.extra["shards"] == 2.0


class TestParallelScaling:
    def test_parallel_speedup_rows_shape_and_correctness(self):
        from repro.experiments import parallel_speedup_rows

        rows = parallel_speedup_rows(SMALL, shard_counts=(2,), entities=4)
        modes = {row["mode"] for row in rows}
        assert modes == {"sequential", "sharded(2)"}
        by_size_matches = {
            row["size"]: set() for row in rows
        }
        for row in rows:
            by_size_matches[row["size"]].add(row["matches"])
        # Sharded and sequential runs must agree on the match count per size.
        assert all(len(counts) == 1 for counts in by_size_matches.values())
        assert all(row["throughput"] > 0 for row in rows)


class TestComparisonDriver:
    def test_compare_methods_rows(self):
        result = compare_methods(SMALL)
        assert len(result.rows) == 4  # one size x four methods
        methods = {row["method"] for row in result.rows}
        assert methods == {"invariant", "threshold", "unconditional", "static"}
        static_row = result.rows_for_method("static")[0]
        assert static_row["relative_gain"] == pytest.approx(1.0)

    def test_result_accessors(self):
        result = compare_methods(SMALL)
        assert result.throughput("static", 3) > 0
        assert result.mean_throughput("invariant") > 0
        assert result.mean_value("unconditional", "reoptimizations") >= 0
        with pytest.raises(KeyError):
            result.throughput("static", 99)


class TestDistanceExperiments:
    def test_distance_sweep_rows(self):
        rows = distance_sweep(SMALL, distances=(0.0, 0.3))
        assert len(rows) == 2
        assert {row["distance"] for row in rows} == {0.0, 0.3}

    def test_find_optimal_distance(self):
        rows = [
            {"size": 3, "distance": 0.0, "throughput": 10.0},
            {"size": 3, "distance": 0.1, "throughput": 30.0},
            {"size": 3, "distance": 0.5, "throughput": 20.0},
        ]
        dopt, throughput = find_optimal_distance(rows)
        assert dopt == 0.1 and throughput == 30.0

    def test_find_optimal_distance_empty(self):
        with pytest.raises(ValueError):
            find_optimal_distance([], size=3)

    def test_accuracy_ratio(self):
        assert accuracy_ratio(0.1, 0.1) == 1.0
        assert accuracy_ratio(0.05, 0.1) == pytest.approx(0.5)
        assert accuracy_ratio(0.2, 0.1) == pytest.approx(0.5)
        assert accuracy_ratio(0.0, 0.1) == 0.0

    def test_distance_estimation_table(self):
        rows = distance_estimation_table(SMALL, dopt=0.1, sizes=(3, 4))
        assert len(rows) == 2
        for row in rows:
            assert row["davg"] >= 0
            assert 0.0 <= row["accuracy"] <= 1.0


class TestAblations:
    def test_k_invariant_ablation(self):
        rows = k_invariant_ablation(SMALL, k_values=(1, 0), size=3)
        assert len(rows) == 2
        all_conditions = rows[1]
        assert all_conditions["num_invariants"] >= rows[0]["num_invariants"]

    def test_selection_strategy_ablation(self):
        rows = selection_strategy_ablation(SMALL, size=3)
        assert {row["strategy"] for row in rows} == {
            "tightest",
            "violation-probability",
            "random",
        }


class TestReporting:
    ROWS = [
        {"size": 3, "method": "invariant", "throughput": 1234.5},
        {"size": 3, "method": "static", "throughput": 456.7},
    ]

    def test_format_table(self):
        text = format_table(self.ROWS, ["size", "method", "throughput"], title="demo")
        assert "demo" in text and "invariant" in text and "1,234" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(self.ROWS)
        assert csv_text.splitlines()[0] == "size,method,throughput"
        assert len(csv_text.splitlines()) == 3

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_pivot(self):
        pivoted = pivot(self.ROWS, index="size", column="method", value="throughput")
        assert len(pivoted) == 1
        assert pivoted[0]["invariant"] == 1234.5
        assert pivoted[0]["static"] == 456.7

"""Unit tests for the event model substrate."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError, ParallelExecutionError, SchemaError
from repro.events import (
    AttributeSpec,
    Event,
    EventSchema,
    EventType,
    EventStream,
    GeneratorEventStream,
    InMemoryEventStream,
    MergedEventStream,
)
from repro.events.stream import stream_from_tuples


class _UnsizedStream(EventStream):
    """A sorted stream without a defined length (e.g. a live subscription)."""

    def __init__(self, events):
        self._events = list(events)

    def __iter__(self):
        return iter(self._events)


class TestAttributeSpec:
    def test_validate_accepts_correct_type(self):
        AttributeSpec("speed", float).validate(12.5)

    def test_validate_accepts_int_where_float_expected(self):
        AttributeSpec("speed", float).validate(12)

    def test_validate_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            AttributeSpec("speed", float).validate("fast")

    def test_validate_rejects_missing_required(self):
        with pytest.raises(SchemaError):
            AttributeSpec("speed", float, required=True).validate(None)

    def test_validate_accepts_missing_optional(self):
        AttributeSpec("speed", float, required=False).validate(None)

    def test_object_dtype_accepts_anything(self):
        AttributeSpec("payload", object).validate({"nested": 1})


class TestEventSchema:
    def test_attribute_names_preserved_in_order(self):
        schema = EventSchema([AttributeSpec("a"), AttributeSpec("b")])
        assert schema.attribute_names == ("a", "b")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            EventSchema([AttributeSpec("a"), AttributeSpec("a")])

    def test_contains_and_len(self):
        schema = EventSchema([AttributeSpec("a"), AttributeSpec("b")])
        assert "a" in schema and "c" not in schema
        assert len(schema) == 2

    def test_validate_payload_missing_required(self):
        schema = EventSchema([AttributeSpec("a", float)])
        with pytest.raises(SchemaError):
            schema.validate_payload({})

    def test_validate_payload_allows_extra_attributes(self):
        schema = EventSchema([AttributeSpec("a", float)])
        schema.validate_payload({"a": 1.0, "extra": "ok"})

    def test_get_returns_spec_or_none(self):
        spec = AttributeSpec("a", float)
        schema = EventSchema([spec])
        assert schema.get("a") is spec
        assert schema.get("missing") is None


class TestEventType:
    def test_equality_is_by_name(self):
        assert EventType("A") == EventType("A")
        assert EventType("A") != EventType("B")

    def test_usable_as_dict_key(self):
        mapping = {EventType("A"): 1}
        assert mapping[EventType("A")] == 1

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            EventType("")

    def test_str_is_name(self):
        assert str(EventType("STK")) == "STK"

    def test_schema_validation_through_type(self):
        schema = EventSchema([AttributeSpec("price", float)])
        stock = EventType("STK", schema=schema)
        stock.validate_payload({"price": 10.0})
        with pytest.raises(SchemaError):
            stock.validate_payload({"price": "ten"})


class TestEvent:
    def test_basic_accessors(self):
        event = Event(EventType("A"), 3.5, {"x": 1})
        assert event.type_name == "A"
        assert event.timestamp == 3.5
        assert event["x"] == 1
        assert event.get("missing", 7) == 7
        assert "x" in event and "y" not in event

    def test_getitem_missing_raises_keyerror(self):
        event = Event(EventType("A"), 0.0)
        with pytest.raises(KeyError):
            event["nope"]

    def test_requires_event_type_instance(self):
        with pytest.raises(SchemaError):
            Event("A", 0.0)  # type: ignore[arg-type]

    def test_ordering_by_timestamp(self):
        early = Event(EventType("A"), 1.0)
        late = Event(EventType("B"), 2.0)
        assert early < late
        assert sorted([late, early]) == [early, late]

    def test_ordering_tie_broken_by_sequence_number(self):
        first = Event(EventType("A"), 1.0)
        second = Event(EventType("A"), 1.0)
        assert first < second  # created earlier

    def test_with_payload_returns_updated_copy(self):
        event = Event(EventType("A"), 1.0, {"x": 1})
        updated = event.with_payload(x=2, y=3)
        assert updated["x"] == 2 and updated["y"] == 3
        assert event["x"] == 1 and "y" not in event

    def test_validation_flag(self):
        schema = EventSchema([AttributeSpec("x", float)])
        typed = EventType("A", schema=schema)
        Event(typed, 0.0, {"x": 1.0}, validate=True)
        with pytest.raises(SchemaError):
            Event(typed, 0.0, {"x": "bad"}, validate=True)

    def test_equality_and_hash(self):
        a1 = Event(EventType("A"), 1.0, {"x": 1}, sequence_number=5)
        a2 = Event(EventType("A"), 1.0, {"x": 1}, sequence_number=5)
        assert a1 == a2
        assert hash(a1) == hash(a2)


class TestInMemoryEventStream:
    def test_sorts_events_by_default(self):
        a = Event(EventType("A"), 5.0)
        b = Event(EventType("B"), 1.0)
        stream = InMemoryEventStream([a, b])
        assert [e.timestamp for e in stream] == [1.0, 5.0]

    def test_unsorted_input_rejected_when_sort_disabled(self):
        a = Event(EventType("A"), 5.0)
        b = Event(EventType("B"), 1.0)
        with pytest.raises(DatasetError):
            InMemoryEventStream([a, b], sort=False)

    def test_len_and_indexing(self):
        events = [Event(EventType("A"), float(i)) for i in range(4)]
        stream = InMemoryEventStream(events)
        assert len(stream) == 4
        assert stream[0].timestamp == 0.0

    def test_count_by_type(self):
        events = [Event(EventType("A"), 0.0), Event(EventType("A"), 1.0), Event(EventType("B"), 2.0)]
        assert InMemoryEventStream(events).count_by_type() == {"A": 2, "B": 1}

    def test_count_by_type_empty_stream(self):
        assert InMemoryEventStream([]).count_by_type() == {}

    def test_count_by_type_on_unsized_stream(self):
        events = [Event(EventType("A"), 0.0), Event(EventType("B"), 1.0)]
        assert _UnsizedStream(events).count_by_type() == {"A": 1, "B": 1}

    def test_len_empty_stream(self):
        assert len(InMemoryEventStream([])) == 0

    def test_len_counts_duplicated_timestamps(self):
        events = [Event(EventType("A"), 1.0) for _ in range(3)]
        assert len(InMemoryEventStream(events)) == 3

    def test_unsized_stream_has_no_len(self):
        with pytest.raises(TypeError):
            len(_UnsizedStream([]))

    def test_time_span(self):
        events = [Event(EventType("A"), 1.0), Event(EventType("A"), 6.0)]
        assert InMemoryEventStream(events).time_span() == 5.0
        assert InMemoryEventStream(events[:1]).time_span() == 0.0

    def test_filter_types(self):
        events = [Event(EventType("A"), 0.0), Event(EventType("B"), 1.0)]
        filtered = InMemoryEventStream(events).filter_types([EventType("B")])
        assert [e.type_name for e in filtered] == ["B"]

    def test_slice_time_is_half_open(self):
        events = [Event(EventType("A"), float(i)) for i in range(5)]
        sliced = InMemoryEventStream(events).slice_time(1.0, 3.0)
        assert [e.timestamp for e in sliced] == [1.0, 2.0]


class TestGeneratorEventStream:
    def _events(self, count=4):
        return [Event(EventType("A"), float(t)) for t in range(count)]

    def test_yields_lazily_from_generator(self):
        events = self._events()
        stream = GeneratorEventStream(e for e in events)
        assert list(stream) == events

    def test_reiteration_raises_instead_of_yielding_nothing(self):
        stream = GeneratorEventStream(iter(self._events()))
        stream.to_list()
        with pytest.raises(DatasetError, match="single-pass"):
            iter(stream)

    def test_to_list_after_consumption_raises(self):
        stream = GeneratorEventStream(iter(self._events()))
        list(stream)
        with pytest.raises(DatasetError):
            stream.to_list()

    def test_consumed_flag(self):
        stream = GeneratorEventStream(iter(self._events()))
        assert not stream.consumed
        iter(stream)
        assert stream.consumed

    def test_has_no_len(self):
        with pytest.raises(TypeError):
            len(GeneratorEventStream(iter(self._events())))

    def test_merged_over_consumed_generator_raises(self):
        generator_stream = GeneratorEventStream(iter(self._events()))
        merged = MergedEventStream([generator_stream])
        assert len(list(merged)) == 4
        with pytest.raises(DatasetError, match="single-pass"):
            list(merged)


class TestMergedEventStream:
    def test_merges_in_timestamp_order(self):
        s1 = InMemoryEventStream([Event(EventType("A"), t) for t in (0.0, 2.0)])
        s2 = InMemoryEventStream([Event(EventType("B"), t) for t in (1.0, 3.0)])
        merged = MergedEventStream([s1, s2])
        assert [e.timestamp for e in merged] == [0.0, 1.0, 2.0, 3.0]
        assert len(merged) == 4

    def test_requires_at_least_one_stream(self):
        with pytest.raises(DatasetError):
            MergedEventStream([])

    def test_len_sums_sized_sub_streams(self):
        streams = [
            InMemoryEventStream([Event(EventType("A"), float(i)) for i in range(n)])
            for n in (0, 2, 5)
        ]
        assert len(MergedEventStream(streams)) == 7

    def test_len_with_unsized_sub_stream_raises_named_typeerror(self):
        sized = InMemoryEventStream([Event(EventType("A"), 0.0)])
        merged = MergedEventStream([sized, _UnsizedStream([])])
        with pytest.raises(TypeError, match="_UnsizedStream"):
            len(merged)


class TestBatched:
    """Edge cases of the sharded runtime's batched-ingestion helper."""

    @staticmethod
    def _stream(count):
        return InMemoryEventStream(
            [Event(EventType("A"), float(i)) for i in range(count)]
        )

    def test_empty_stream_yields_no_batches(self):
        assert list(self._stream(0).batched(4)) == []

    def test_batch_size_larger_than_stream_yields_one_short_batch(self):
        batches = list(self._stream(3).batched(10))
        assert len(batches) == 1
        assert len(batches[0]) == 3
        assert batches[0].index == 0

    def test_batch_size_one_yields_singleton_batches(self):
        batches = list(self._stream(3).batched(1))
        assert [len(b) for b in batches] == [1, 1, 1]
        assert [b.index for b in batches] == [0, 1, 2]

    def test_uneven_split_preserves_order_and_events(self):
        batches = list(self._stream(7).batched(3))
        assert [len(b) for b in batches] == [3, 3, 1]
        flattened = [event.timestamp for batch in batches for event in batch]
        assert flattened == [float(i) for i in range(7)]

    def test_non_positive_batch_size_rejected(self):
        with pytest.raises(ParallelExecutionError):
            list(self._stream(2).batched(0))

    def test_batch_time_span_and_bounds(self):
        (batch,) = list(self._stream(3).batched(5))
        assert batch.first_timestamp == 0.0
        assert batch.last_timestamp == 2.0
        assert batch.time_span() == 2.0


class TestStreamFromTuples:
    def test_builds_payloads_from_attribute_names(self):
        types = {"A": EventType("A")}
        stream = stream_from_tuples(
            [("A", 1.0, 42)], types, attribute_names=["value"]
        )
        assert stream[0]["value"] == 42

    def test_unknown_type_rejected(self):
        with pytest.raises(DatasetError):
            stream_from_tuples([("X", 1.0)], {"A": EventType("A")})

    def test_too_many_values_rejected(self):
        with pytest.raises(DatasetError):
            stream_from_tuples(
                [("A", 1.0, 1, 2)], {"A": EventType("A")}, attribute_names=["only_one"]
            )

"""Cross-engine equivalence: every execution mode finds the same matches.

The paper's correctness invariant — plan adaptation, sharding and the
streaming runtime change *how fast* detection runs, never *what* is
detected — is enforced here as a differential harness.  One seeded
workload is pushed through every execution mode the library offers:

1. sequential ``AdaptiveCEPEngine.run`` (the reference),
2. batch ``ParallelCEPEngine.run`` with the serial executor,
3. batch ``ParallelCEPEngine.run`` with the multiprocess executor,
4. streaming pipeline, inline backend, sequential engine,
5. streaming pipeline, inline backend, sharded engine (``process()``),
6. streaming pipeline, thread worker backend,
7. streaming pipeline, process worker backend,

and the *byte-identical* sorted JSON records of the match sets are
compared.  Sorting removes the one legitimate difference (emission order
across shards); everything else — bindings, timestamps, sequence numbers,
detection times — must agree exactly.

The compile-mode differential re-runs all seven execution modes with
``compile_mode="compiled"`` and ``"indexed"`` (see :mod:`repro.compile`):
lowering conditions into specialized kernels and pruning join candidates
through equality indexes must leave every byte of the match set alone.

The disorder differential extends the same invariant to out-of-order
arrival: each workload is shuffled within a bounded slack
(:func:`~repro.streaming.bounded_shuffle`) and re-run through every mode
with the event-time reordering layer absorbing the disorder — the
streaming modes via the pipeline's ``max_lateness`` ordering stage, the
batch modes via offline :func:`~repro.streaming.reorder_events`.  The
sorted match records must still equal the sorted-replay reference byte
for byte.
"""

from __future__ import annotations

import json

import pytest

from repro.adaptive import InvariantBasedPolicy
from repro.conditions import AndCondition, EqualityCondition
from repro.datasets import StockDatasetSimulator
from repro.engine import AdaptiveCEPEngine
from repro.events import EventType
from repro.optimizer import GreedyOrderPlanner
from repro.parallel import (
    BroadcastPartitioner,
    KeyPartitioner,
    MultiprocessExecutor,
    ParallelCEPEngine,
    SerialExecutor,
)
from repro.patterns import seq
from repro.streaming import (
    CollectorSink,
    ProcessWorkerBackend,
    ReplaySource,
    StreamingPipeline,
    ThreadWorkerBackend,
    bounded_shuffle,
    reorder_events,
)
from repro.streaming.sinks import match_record
from repro.workloads import WorkloadGenerator
from tests.conftest import make_camera_stream

SHARDS = 2

#: Stream-time slack of the disorder differential (must stay below the
#: workloads' pattern windows so reordered detection is meaningful).
DISORDER_SLACK = 1.5
DISORDER_SEED = 97


def _records(matches):
    """Byte-comparable canonical form: sorted JSON lines."""
    return sorted(json.dumps(match_record(match)) for match in matches)


def _planner():
    return GreedyOrderPlanner()


def _policy():
    return InvariantBasedPolicy()


def _parallel(pattern, partitioner, executor=None, compile_mode="interpreted"):
    return ParallelCEPEngine(
        pattern,
        _planner(),
        _policy(),
        shards=SHARDS,
        partitioner=partitioner,
        executor=executor,
        compile_mode=compile_mode,
    )


# ----------------------------------------------------------------------
# Execution modes
# ----------------------------------------------------------------------
def run_sequential(pattern, events, partitioner, compile_mode="interpreted"):
    engine = AdaptiveCEPEngine(
        pattern, _planner(), _policy(), compile_mode=compile_mode
    )
    return engine.run(events).matches


def run_batch_serial(pattern, events, partitioner, compile_mode="interpreted"):
    engine = _parallel(
        pattern, partitioner, SerialExecutor(), compile_mode=compile_mode
    )
    return engine.run(events).matches


def run_batch_multiprocess(pattern, events, partitioner, compile_mode="interpreted"):
    executor = MultiprocessExecutor(max_workers=SHARDS)
    engine = _parallel(pattern, partitioner, executor, compile_mode=compile_mode)
    return engine.run(events).matches


def run_pipeline_inline(
    pattern, events, partitioner, compile_mode="interpreted", **pipeline_kwargs
):
    sink = CollectorSink()
    engine = AdaptiveCEPEngine(
        pattern, _planner(), _policy(), compile_mode=compile_mode
    )
    StreamingPipeline(
        engine, ReplaySource(events), sinks=[sink], **pipeline_kwargs
    ).run()
    return sink.matches


def run_pipeline_inline_sharded(
    pattern, events, partitioner, compile_mode="interpreted", **pipeline_kwargs
):
    sink = CollectorSink()
    engine = _parallel(pattern, partitioner, compile_mode=compile_mode)
    StreamingPipeline(
        engine, ReplaySource(events), sinks=[sink], **pipeline_kwargs
    ).run()
    return sink.matches


def run_pipeline_thread_workers(
    pattern, events, partitioner, compile_mode="interpreted", **pipeline_kwargs
):
    sink = CollectorSink()
    backend = ThreadWorkerBackend(
        _parallel(pattern, partitioner, compile_mode=compile_mode), feed_batch=16
    )
    StreamingPipeline(
        backend, ReplaySource(events), sinks=[sink], **pipeline_kwargs
    ).run()
    return sink.matches


def run_pipeline_process_workers(
    pattern, events, partitioner, compile_mode="interpreted", **pipeline_kwargs
):
    sink = CollectorSink()
    backend = ProcessWorkerBackend(
        _parallel(pattern, partitioner, compile_mode=compile_mode), feed_batch=16
    )
    StreamingPipeline(
        backend, ReplaySource(events), sinks=[sink], **pipeline_kwargs
    ).run()
    return sink.matches


MODES = {
    "batch-serial": run_batch_serial,
    "batch-multiprocess": run_batch_multiprocess,
    "pipeline-inline": run_pipeline_inline,
    "pipeline-inline-sharded": run_pipeline_inline_sharded,
    "pipeline-thread-workers": run_pipeline_thread_workers,
    "pipeline-process-workers": run_pipeline_process_workers,
}

#: Modes whose disorder handling is the pipeline's event-time ordering
#: stage; the rest (sequential / batch) reorder offline before ingesting.
STREAMING_MODES = frozenset(
    name for name in MODES if name.startswith("pipeline-")
)


# ----------------------------------------------------------------------
# Workloads (seeded, deterministic)
# ----------------------------------------------------------------------
def _camera_workload():
    """Broadcast-partitioned workload: the paper's Example 1 pattern."""
    a, b, c = EventType("A"), EventType("B"), EventType("C")
    condition = AndCondition(
        [
            EqualityCondition("a", "b", "person_id"),
            EqualityCondition("b", "c", "person_id"),
        ]
    )
    pattern = seq([a, b, c], condition=condition, window=10.0)
    events = make_camera_stream(count=300, seed=21).to_list()
    return pattern, events, BroadcastPartitioner()


def _keyed_workload():
    """Key-partitioned workload: multi-entity stocks stream."""
    dataset = StockDatasetSimulator(duration_hint=60.0)
    workload = WorkloadGenerator(dataset, seed=1)
    pattern, stream = workload.keyed_workload(
        3, duration=60.0, entities=4, max_events=2000
    )
    return pattern, stream.to_list(), KeyPartitioner("entity_id")


WORKLOADS = {
    "camera-broadcast": _camera_workload,
    "stocks-keyed": _keyed_workload,
}


@pytest.fixture(scope="module")
def references():
    """Reference match records per workload (computed once)."""
    cache = {}
    for name, build in WORKLOADS.items():
        pattern, events, partitioner = build()
        reference = _records(run_sequential(pattern, events, partitioner))
        assert reference, f"workload {name} must produce matches"
        cache[name] = (pattern, events, partitioner, reference)
    return cache


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("mode_name", sorted(MODES))
def test_mode_equals_sequential_reference(references, workload_name, mode_name):
    pattern, events, partitioner, reference = references[workload_name]
    matches = MODES[mode_name](pattern, events, partitioner)
    assert _records(matches) == reference, (
        f"{mode_name} diverged from the sequential reference on "
        f"{workload_name}: {len(matches)} matches vs {len(reference)}"
    )


# ----------------------------------------------------------------------
# Compile-mode differential: compiled kernels change speed, never matches
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("mode_name", ["sequential"] + sorted(MODES))
@pytest.mark.parametrize("compile_mode", ["compiled", "indexed"])
def test_compile_mode_equals_interpreted_reference(
    references, workload_name, mode_name, compile_mode
):
    """3 compile modes x 7 execution modes, one byte-identical match set.

    The interpreted reference is the module fixture; this parametrization
    re-runs every execution mode with plan-compiled kernels (and, in
    ``indexed`` mode, equality-index pruning) and demands the exact same
    sorted JSON records.  The worker-backend modes double as a pickling
    check: compiled engines cross the process boundary by shipping the
    compilation *recipe* and rebuilding kernels on the other side.
    """
    pattern, events, partitioner, reference = references[workload_name]
    runner = run_sequential if mode_name == "sequential" else MODES[mode_name]
    matches = runner(pattern, events, partitioner, compile_mode=compile_mode)
    assert _records(matches) == reference, (
        f"{mode_name} in {compile_mode} mode diverged from the interpreted "
        f"reference on {workload_name}: {len(matches)} matches vs "
        f"{len(reference)}"
    )


def test_reference_is_nonempty_and_deterministic(references):
    """Re-running the sequential reference reproduces itself byte-for-byte."""
    for name, (pattern, events, partitioner, reference) in references.items():
        again = _records(run_sequential(pattern, events, partitioner))
        assert again == reference, f"sequential reference for {name} is unstable"


# ----------------------------------------------------------------------
# Disorder differential: shuffled-within-slack arrival must change nothing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("mode_name", sorted(MODES))
def test_disordered_arrival_equals_sorted_reference(
    references, workload_name, mode_name
):
    pattern, events, partitioner, reference = references[workload_name]
    shuffled = bounded_shuffle(events, DISORDER_SLACK, seed=DISORDER_SEED)
    assert shuffled != events, "the disorder workload must actually be disordered"
    if mode_name in STREAMING_MODES:
        matches = MODES[mode_name](
            pattern, shuffled, partitioner, max_lateness=DISORDER_SLACK
        )
    else:
        matches = MODES[mode_name](
            pattern, reorder_events(shuffled, DISORDER_SLACK), partitioner
        )
    assert _records(matches) == reference, (
        f"{mode_name} diverged from the sorted-replay reference on the "
        f"disordered {workload_name} workload"
    )


def test_disordered_sequential_equals_sorted_reference(references):
    """The reference engine itself, fed an offline-reordered shuffle."""
    for name, (pattern, events, partitioner, reference) in references.items():
        shuffled = bounded_shuffle(events, DISORDER_SLACK, seed=DISORDER_SEED)
        restored = reorder_events(shuffled, DISORDER_SLACK)
        assert restored == list(events)
        matches = run_sequential(pattern, restored, partitioner)
        assert _records(matches) == reference, name

"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import pytest

from repro.adaptive import (
    AverageRelativeDifferenceDistance,
    InvariantBasedPolicy,
    StaticPolicy,
    UnconditionalPolicy,
)
from repro.datasets import StockDatasetSimulator, TrafficDatasetSimulator
from repro.engine import AdaptiveCEPEngine, MultiPatternEngine
from repro.events import InMemoryEventStream
from repro.optimizer import GreedyOrderPlanner, ZStreamTreePlanner
from repro.workloads import WorkloadGenerator


@pytest.fixture(scope="module")
def traffic():
    return TrafficDatasetSimulator(num_types=10, base_rate=6.0, duration_hint=80, seed=2)


@pytest.fixture(scope="module")
def traffic_stream(traffic):
    return traffic.generate(duration=80, seed=4, max_events=6000)


class TestAdaptiveRunsOnSyntheticTraffic:
    def test_all_policies_detect_the_same_matches(self, traffic, traffic_stream):
        pattern = WorkloadGenerator(traffic, seed=3).sequence_pattern(4)
        counts = {}
        for label, policy in [
            ("invariant", InvariantBasedPolicy(distance=0.1)),
            ("static", StaticPolicy()),
            ("unconditional", UnconditionalPolicy()),
        ]:
            engine = AdaptiveCEPEngine(
                pattern, GreedyOrderPlanner(), policy, monitoring_interval=2.0
            )
            counts[label] = engine.run(InMemoryEventStream(list(traffic_stream))).match_count
        assert len(set(counts.values())) == 1, counts

    def test_greedy_and_zstream_detect_the_same_matches(self, traffic, traffic_stream):
        pattern = WorkloadGenerator(traffic, seed=3).sequence_pattern(4)
        greedy = AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy(distance=0.1),
            monitoring_interval=2.0,
        ).run(InMemoryEventStream(list(traffic_stream)))
        zstream = AdaptiveCEPEngine(
            pattern, ZStreamTreePlanner(), InvariantBasedPolicy(distance=0.1, k=3),
            monitoring_interval=2.0,
        ).run(InMemoryEventStream(list(traffic_stream)))
        assert greedy.match_count == zstream.match_count

    def test_adaptation_reduces_partial_match_work_for_bad_declared_order(
        self, traffic, traffic_stream
    ):
        """With the pattern declared in descending-rate order (the worst static
        plan), the adaptive engine quickly reorders and ends up doing less
        partial-match work than the static pattern-order plan."""
        from repro.patterns import Pattern, PatternItem, PatternOperator
        from repro.conditions import ConditionSet

        # Pick the four most frequent types, declared most-frequent-first.
        names = sorted(
            traffic.type_names(), key=lambda n: -traffic.true_rate(n, 0.0)
        )[:4]
        variables = ["a", "b", "c", "d"]
        items = [
            PatternItem(v, traffic.event_type(n)) for v, n in zip(variables, names)
        ]
        conditions = ConditionSet()
        for first, second in zip(variables, variables[1:]):
            conditions.add(traffic.condition_between(first, second))
        pattern = Pattern(
            PatternOperator.SEQUENCE, items, condition=conditions, window=5.0
        )

        adaptive = AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy(distance=0.1),
            monitoring_interval=1.0,
        ).run(InMemoryEventStream(list(traffic_stream)))
        static = AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), StaticPolicy(), monitoring_interval=1.0
        ).run(InMemoryEventStream(list(traffic_stream)))
        assert adaptive.match_count == static.match_count
        assert adaptive.metrics.extension_attempts <= static.metrics.extension_attempts

    def test_invariant_policy_requests_fewer_regenerations_than_unconditional(
        self, traffic, traffic_stream
    ):
        pattern = WorkloadGenerator(traffic, seed=3).sequence_pattern(4)
        invariant_engine = AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy(distance=0.1),
            monitoring_interval=1.0,
        )
        unconditional_engine = AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), UnconditionalPolicy(), monitoring_interval=1.0
        )
        invariant_engine.run(InMemoryEventStream(list(traffic_stream)))
        unconditional_engine.run(InMemoryEventStream(list(traffic_stream)))
        invariant_generated = invariant_engine.controller.statistics.plans_generated
        unconditional_generated = unconditional_engine.controller.statistics.plans_generated
        assert invariant_generated < unconditional_generated

    def test_plan_history_reflects_reoptimizations(self, traffic, traffic_stream):
        pattern = WorkloadGenerator(traffic, seed=3).sequence_pattern(4)
        engine = AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy(distance=0.1),
            monitoring_interval=1.0,
        )
        engine.run(InMemoryEventStream(list(traffic_stream)))
        assert len(engine.plan_history) == engine.reoptimization_count() + 1


class TestStocksIntegration:
    def test_davg_distance_policy_runs_end_to_end(self):
        stocks = StockDatasetSimulator(num_types=8, duration_hint=60, seed=5)
        stream = stocks.generate(duration=60, seed=6, max_events=4000)
        pattern = WorkloadGenerator(stocks, seed=1).sequence_pattern(4)
        engine = AdaptiveCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(distance=AverageRelativeDifferenceDistance()),
            monitoring_interval=2.0,
        )
        result = engine.run(stream)
        assert result.metrics.events_processed == len(stream)

    def test_negation_and_kleene_workloads_run(self):
        stocks = StockDatasetSimulator(num_types=8, duration_hint=40, seed=5)
        stream = stocks.generate(duration=40, seed=6, max_events=2500)
        workload = WorkloadGenerator(stocks, seed=1)
        for family in ("negation", "kleene"):
            pattern = workload.pattern(family, 3)
            engine = AdaptiveCEPEngine(
                pattern, GreedyOrderPlanner(), InvariantBasedPolicy(distance=0.2),
                monitoring_interval=2.0,
            )
            result = engine.run(InMemoryEventStream(list(stream)))
            assert result.metrics.events_processed == len(stream)

    def test_composite_workload_runs_through_multi_engine(self):
        stocks = StockDatasetSimulator(num_types=10, duration_hint=40, seed=5)
        stream = stocks.generate(duration=40, seed=6, max_events=2500)
        composite = WorkloadGenerator(stocks, seed=1).composite_pattern(3)
        engine = MultiPatternEngine(
            composite,
            GreedyOrderPlanner(),
            policy_factory=lambda: InvariantBasedPolicy(distance=0.2),
            monitoring_interval=2.0,
        )
        result = engine.run(stream)
        assert result.metrics.events_processed == len(stream)
        assert len(engine.sub_engines) == 3

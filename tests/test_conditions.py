"""Unit tests for the condition (predicate) framework."""

from __future__ import annotations

import pytest

from repro.conditions import (
    AndCondition,
    AttributeComparisonCondition,
    AttributeThresholdCondition,
    ConditionSet,
    EqualityCondition,
    NotCondition,
    OrCondition,
    PredicateCondition,
    TrueCondition,
)
from repro.errors import PatternError
from repro.events import Event, EventType


def make_event(type_name: str, timestamp: float = 0.0, **payload) -> Event:
    return Event(EventType(type_name), timestamp, payload)


class TestTrueCondition:
    def test_always_true(self):
        assert TrueCondition().evaluate({}) is True

    def test_no_variables(self):
        assert TrueCondition().variables == frozenset()

    def test_flatten_is_empty(self):
        assert TrueCondition().flatten() == ()


class TestAttributeThresholdCondition:
    def test_satisfied(self):
        condition = AttributeThresholdCondition("a", "speed", "<", 60)
        assert condition.evaluate({"a": make_event("A", speed=40)})

    def test_violated(self):
        condition = AttributeThresholdCondition("a", "speed", "<", 60)
        assert not condition.evaluate({"a": make_event("A", speed=80)})

    def test_unbound_variable_is_vacuously_true(self):
        condition = AttributeThresholdCondition("a", "speed", "<", 60)
        assert condition.evaluate({})

    def test_missing_attribute_fails(self):
        condition = AttributeThresholdCondition("a", "speed", "<", 60)
        assert not condition.evaluate({"a": make_event("A", other=1)})

    def test_kleene_binding_requires_all_elements(self):
        condition = AttributeThresholdCondition("a", "speed", ">", 10)
        fast = make_event("A", speed=20)
        slow = make_event("A", speed=5)
        assert condition.evaluate({"a": [fast, fast]})
        assert not condition.evaluate({"a": [fast, slow]})

    def test_all_operators(self):
        event = make_event("A", x=5)
        assert AttributeThresholdCondition("a", "x", "<=", 5).evaluate({"a": event})
        assert AttributeThresholdCondition("a", "x", ">=", 5).evaluate({"a": event})
        assert AttributeThresholdCondition("a", "x", "==", 5).evaluate({"a": event})
        assert AttributeThresholdCondition("a", "x", "!=", 6).evaluate({"a": event})
        assert AttributeThresholdCondition("a", "x", ">", 4).evaluate({"a": event})

    def test_invalid_operator_rejected(self):
        with pytest.raises(PatternError):
            AttributeThresholdCondition("a", "x", "<>", 5)

    def test_variables(self):
        assert AttributeThresholdCondition("a", "x", "<", 5).variables == frozenset({"a"})


class TestAttributeComparisonCondition:
    def test_cross_variable_comparison(self):
        condition = AttributeComparisonCondition("a", "price", "<", "b", "price")
        binding = {"a": make_event("A", price=10), "b": make_event("B", price=20)}
        assert condition.evaluate(binding)
        binding["b"] = make_event("B", price=5)
        assert not condition.evaluate(binding)

    def test_partial_binding_is_vacuously_true(self):
        condition = AttributeComparisonCondition("a", "price", "<", "b", "price")
        assert condition.evaluate({"a": make_event("A", price=10)})

    def test_same_variable_rejected(self):
        with pytest.raises(PatternError):
            AttributeComparisonCondition("a", "x", "<", "a", "y")

    def test_missing_attribute_fails(self):
        condition = AttributeComparisonCondition("a", "price", "<", "b", "price")
        binding = {"a": make_event("A"), "b": make_event("B", price=20)}
        assert not condition.evaluate(binding)

    def test_variables(self):
        condition = AttributeComparisonCondition("a", "x", "<", "b", "y")
        assert condition.variables == frozenset({"a", "b"})

    def test_kleene_binding_all_pairs(self):
        condition = AttributeComparisonCondition("a", "x", "<", "b", "x")
        low = make_event("A", x=1)
        high = make_event("B", x=10)
        mid = make_event("B", x=2)
        assert condition.evaluate({"a": low, "b": [high, mid]})
        assert not condition.evaluate({"a": low, "b": [high, make_event("B", x=0)]})


class TestEqualityCondition:
    def test_equijoin(self):
        condition = EqualityCondition("a", "b", "person_id")
        binding = {"a": make_event("A", person_id=7), "b": make_event("B", person_id=7)}
        assert condition.evaluate(binding)
        binding["b"] = make_event("B", person_id=8)
        assert not condition.evaluate(binding)


class TestPredicateCondition:
    def test_custom_predicate(self):
        condition = PredicateCondition(
            ["a", "b"], lambda a, b: a["x"] + b["x"] > 10, name="sum_gt_10"
        )
        assert condition.evaluate({"a": make_event("A", x=6), "b": make_event("B", x=5)})
        assert not condition.evaluate({"a": make_event("A", x=1), "b": make_event("B", x=2)})

    def test_arguments_passed_in_declared_order(self):
        condition = PredicateCondition(["a", "b"], lambda a, b: a["x"] < b["x"])
        binding = {"b": make_event("B", x=1), "a": make_event("A", x=0)}
        assert condition.evaluate(binding)

    def test_requires_variables(self):
        with pytest.raises(PatternError):
            PredicateCondition([], lambda: True)

    def test_duplicate_variables_rejected(self):
        with pytest.raises(PatternError):
            PredicateCondition(["a", "a"], lambda x, y: True)

    def test_partial_binding_vacuously_true(self):
        condition = PredicateCondition(["a", "b"], lambda a, b: False)
        assert condition.evaluate({"a": make_event("A")})


class TestCombinators:
    def test_and_condition(self):
        condition = AttributeThresholdCondition("a", "x", ">", 0) & AttributeThresholdCondition(
            "a", "x", "<", 10
        )
        assert isinstance(condition, AndCondition)
        assert condition.evaluate({"a": make_event("A", x=5)})
        assert not condition.evaluate({"a": make_event("A", x=15)})

    def test_or_condition(self):
        condition = AttributeThresholdCondition("a", "x", ">", 10) | AttributeThresholdCondition(
            "a", "x", "<", 0
        )
        assert isinstance(condition, OrCondition)
        assert condition.evaluate({"a": make_event("A", x=-5)})
        assert not condition.evaluate({"a": make_event("A", x=5)})

    def test_or_vacuous_when_partially_bound(self):
        left = AttributeThresholdCondition("a", "x", ">", 10)
        right = AttributeThresholdCondition("b", "x", ">", 10)
        assert (left | right).evaluate({"a": make_event("A", x=0)})

    def test_not_condition(self):
        condition = ~AttributeThresholdCondition("a", "x", ">", 10)
        assert isinstance(condition, NotCondition)
        assert condition.evaluate({"a": make_event("A", x=5)})
        assert not condition.evaluate({"a": make_event("A", x=15)})

    def test_not_vacuous_when_unbound(self):
        assert (~AttributeThresholdCondition("a", "x", ">", 10)).evaluate({})

    def test_and_flatten_recursive(self):
        c1 = AttributeThresholdCondition("a", "x", ">", 0)
        c2 = AttributeThresholdCondition("b", "x", ">", 0)
        c3 = AttributeThresholdCondition("c", "x", ">", 0)
        nested = AndCondition([AndCondition([c1, c2]), c3])
        assert set(nested.flatten()) == {c1, c2, c3}

    def test_composite_variables_union(self):
        c1 = AttributeThresholdCondition("a", "x", ">", 0)
        c2 = AttributeThresholdCondition("b", "x", ">", 0)
        assert (c1 & c2).variables == frozenset({"a", "b"})

    def test_empty_composite_rejected(self):
        with pytest.raises(PatternError):
            AndCondition([])

    def test_non_condition_operand_rejected(self):
        with pytest.raises(PatternError):
            AndCondition([AttributeThresholdCondition("a", "x", ">", 0), "not a condition"])


class TestConditionSet:
    def _set(self):
        return ConditionSet(
            AndCondition(
                [
                    EqualityCondition("a", "b", "pid"),
                    EqualityCondition("b", "c", "pid"),
                    AttributeThresholdCondition("a", "speed", "<", 60),
                ]
            )
        )

    def test_flattens_conjunction(self):
        assert len(self._set()) == 3

    def test_true_condition_is_dropped(self):
        condition_set = ConditionSet(TrueCondition())
        assert len(condition_set) == 0

    def test_variables(self):
        assert self._set().variables() == frozenset({"a", "b", "c"})

    def test_conditions_over_subset(self):
        over_ab = self._set().conditions_over(["a", "b"])
        assert len(over_ab) == 2  # the a-b join and the local a condition

    def test_conditions_between_groups(self):
        between = self._set().conditions_between(["a"], ["b"])
        assert len(between) == 1

    def test_conditions_between_ignores_conditions_outside_groups(self):
        between = self._set().conditions_between(["a"], ["c"])
        assert between == []

    def test_newly_applicable(self):
        new = self._set().newly_applicable(["a"], "b")
        assert len(new) == 1
        new_with_c = self._set().newly_applicable(["a", "b"], "c")
        assert len(new_with_c) == 1

    def test_newly_applicable_includes_local_conditions(self):
        new = self._set().newly_applicable([], "a")
        assert len(new) == 1  # the local speed condition on a

    def test_variable_pairs(self):
        assert self._set().variable_pairs() == [("a", "b"), ("b", "c")]

    def test_single_variable_conditions(self):
        assert len(self._set().single_variable_conditions("a")) == 1
        assert self._set().single_variable_conditions("b") == []

    def test_evaluate_full_binding(self):
        binding = {
            "a": make_event("A", pid=1, speed=30),
            "b": make_event("B", pid=1),
            "c": make_event("C", pid=1),
        }
        assert self._set().evaluate(binding)
        binding["c"] = make_event("C", pid=2)
        assert not self._set().evaluate(binding)

    def test_as_condition_round_trip(self):
        condition = self._set().as_condition()
        binding = {
            "a": make_event("A", pid=1, speed=30),
            "b": make_event("B", pid=1),
            "c": make_event("C", pid=1),
        }
        assert condition.evaluate(binding)

    def test_as_condition_empty_is_true(self):
        assert isinstance(ConditionSet().as_condition(), TrueCondition)

    def test_from_conditions(self):
        conditions = [EqualityCondition("a", "b", "pid"), EqualityCondition("b", "c", "pid")]
        assert len(ConditionSet.from_conditions(conditions)) == 2

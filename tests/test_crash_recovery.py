"""Crash-recovery fuzz: kill the multi-worker pipeline anywhere, lose nothing.

The pipeline's contract is exactly-once match delivery across a hard kill:
a killed service resumes from its last checkpoint, re-processes only the
post-checkpoint suffix, and the sink rollback withdraws matches the resume
will re-derive.  This suite fuzzes that contract for the multi-core worker
backends by killing the pipeline at ≥10 seeded, randomized event offsets
(`final_checkpoint=False` simulates the kill: the in-memory state is
discarded without a final snapshot, exactly as SIGKILL would) and checking
that the served match file always ends up byte-identical to an
uninterrupted sequential run.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.adaptive import InvariantBasedPolicy
from repro.conditions import AndCondition, EqualityCondition
from repro.engine import AdaptiveCEPEngine
from repro.engine.state import restore_ordering_state
from repro.events import EventType
from repro.optimizer import GreedyOrderPlanner
from repro.parallel import BroadcastPartitioner, KeyPartitioner, ParallelCEPEngine
from repro.patterns import seq
from repro.streaming import (
    CheckpointStore,
    JSONLMatchWriter,
    ProcessWorkerBackend,
    ReplaySource,
    StreamingPipeline,
    ThreadWorkerBackend,
    bounded_shuffle,
)
from repro.streaming.sinks import match_record
from tests.conftest import make_camera_stream

EVENT_COUNT = 400
CHECKPOINT_EVERY = 40
KILL_POINTS = 10
FUZZ_SEED = 20260730


def _pattern():
    a, b, c = EventType("A"), EventType("B"), EventType("C")
    condition = AndCondition(
        [
            EqualityCondition("a", "b", "person_id"),
            EqualityCondition("b", "c", "person_id"),
        ]
    )
    return seq([a, b, c], condition=condition, window=10.0)


@pytest.fixture(scope="module")
def workload():
    pattern = _pattern()
    events = make_camera_stream(count=EVENT_COUNT, seed=31).to_list()
    expected = sorted(
        json.dumps(match_record(match))
        for match in AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy()
        )
        .run(events)
        .matches
    )
    assert expected, "fuzz workload must produce matches"
    return pattern, events, expected


#: Delta-mode chain length used by the fuzz (short, so random kill points
#: frequently land *between* a base and its deltas).
FULL_EVERY = 3


def _build_pipeline(
    pattern,
    events,
    sink_path,
    store,
    backend_cls,
    partitioner,
    checkpoint_mode="full",
):
    engine = ParallelCEPEngine(
        pattern,
        GreedyOrderPlanner(),
        InvariantBasedPolicy(),
        shards=2,
        partitioner=partitioner,
    )
    backend = backend_cls(engine, feed_batch=8)
    return StreamingPipeline(
        backend,
        ReplaySource(events),
        sinks=[JSONLMatchWriter(sink_path)],
        checkpoint_store=store,
        checkpoint_every=CHECKPOINT_EVERY,
        checkpoint_mode=checkpoint_mode,
        checkpoint_full_every=FULL_EVERY,
    )


def _kill_resume_verify(
    pattern,
    events,
    expected,
    tmp_path,
    label,
    kill_at,
    backend_cls,
    partitioner,
    checkpoint_mode="full",
):
    sink_path = str(tmp_path / f"matches-{label}.jsonl")
    store = CheckpointStore(str(tmp_path / f"ckpt-{label}"))

    def build():
        return _build_pipeline(
            pattern,
            events,
            sink_path,
            store,
            backend_cls,
            partitioner,
            checkpoint_mode=checkpoint_mode,
        )

    # Kill: process exactly `kill_at` events, then drop all in-memory state
    # without a final checkpoint — the worker engines, the dedup filter and
    # the pipeline counters are lost; only the store and the sink file stay.
    first = build().run(max_events=kill_at, final_checkpoint=False)
    assert first.stop_reason == "max-events"

    second = build().run()
    assert second.stop_reason == "source-exhausted"
    expected_resume = (kill_at // CHECKPOINT_EVERY) * CHECKPOINT_EVERY
    assert second.resumed_from == expected_resume
    assert second.total_events_processed == len(events)

    served = sorted(
        line for line in open(sink_path).read().splitlines() if line
    )
    assert served == expected, (
        f"kill at event {kill_at}: served {len(served)} matches, "
        f"expected {len(expected)} (lost or duplicated across the resume)"
    )


def _fuzz_offsets():
    rng = random.Random(FUZZ_SEED)
    # Strictly between the first checkpoint and the end, so every kill has
    # a checkpoint to resume from and a suffix left to re-process.
    return sorted(rng.sample(range(CHECKPOINT_EVERY + 1, EVENT_COUNT - 5), KILL_POINTS))


@pytest.mark.parametrize("kill_at", _fuzz_offsets())
def test_thread_worker_kill_resume_fuzz(workload, tmp_path, kill_at):
    pattern, events, expected = workload
    _kill_resume_verify(
        pattern,
        events,
        expected,
        tmp_path,
        f"thread-{kill_at}",
        kill_at,
        ThreadWorkerBackend,
        BroadcastPartitioner(),
    )


@pytest.mark.parametrize(
    "kill_at", _fuzz_offsets()[:: max(1, KILL_POINTS // 3)][:3]
)
def test_process_worker_kill_resume_fuzz(workload, tmp_path, kill_at):
    """The process backend re-runs a subset (worker start-up is expensive)."""
    pattern, events, expected = workload
    _kill_resume_verify(
        pattern,
        events,
        expected,
        tmp_path,
        f"process-{kill_at}",
        kill_at,
        ProcessWorkerBackend,
        BroadcastPartitioner(),
    )


@pytest.mark.parametrize("kill_at", _fuzz_offsets()[::2][:5])
def test_delta_checkpoint_kill_resume_fuzz(workload, tmp_path, kill_at):
    """Incremental checkpoints keep the exactly-once contract under kills.

    ``checkpoint_every=40`` with ``checkpoint_full_every=3`` makes every
    fourth checkpoint a base, so these randomized kill points land at
    every chain position — on a fresh base, mid-chain between a base and
    its deltas, and on the last delta before a rebase.
    """
    pattern, events, expected = workload
    _kill_resume_verify(
        pattern,
        events,
        expected,
        tmp_path,
        f"delta-{kill_at}",
        kill_at,
        ThreadWorkerBackend,
        BroadcastPartitioner(),
        checkpoint_mode="delta",
    )


def test_delta_kill_lands_between_base_and_deltas(workload, tmp_path):
    """A kill whose recovery point is provably a base + deltas chain."""
    pattern, events, expected = workload
    sink_path = str(tmp_path / "matches-midchain.jsonl")
    store = CheckpointStore(str(tmp_path / "ckpt-midchain"))

    def build():
        return _build_pipeline(
            pattern,
            events,
            sink_path,
            store,
            ThreadWorkerBackend,
            BroadcastPartitioner(),
            checkpoint_mode="delta",
        )

    # 2 checkpoints fit before the kill: a base (40) and one delta (80) —
    # the resume must replay the chain, not just a full snapshot.
    kill_at = 2 * CHECKPOINT_EVERY + CHECKPOINT_EVERY // 2
    first = build().run(max_events=kill_at, final_checkpoint=False)
    assert first.stop_reason == "max-events"
    stats = store.stats()
    assert stats["checkpoints"] >= 1 and stats["deltas"] >= 1, (
        "the kill point must leave a base plus at least one delta behind "
        "for this test to exercise chain replay"
    )
    assert store.latest().events_processed == 2 * CHECKPOINT_EVERY

    second = build().run()
    assert second.resumed_from == 2 * CHECKPOINT_EVERY
    assert second.total_events_processed == len(events)
    served = sorted(line for line in open(sink_path).read().splitlines() if line)
    assert served == expected


def test_delta_process_worker_kill_resume(workload, tmp_path):
    """Per-shard deltas over the process-worker barrier survive a kill."""
    pattern, events, expected = workload
    _kill_resume_verify(
        pattern,
        events,
        expected,
        tmp_path,
        "delta-process",
        EVENT_COUNT // 2 + 7,
        ProcessWorkerBackend,
        BroadcastPartitioner(),
        checkpoint_mode="delta",
    )


def test_delta_double_kill_resume(workload, tmp_path):
    """kill → resume → kill → resume with incremental checkpoints."""
    pattern, events, expected = workload
    sink_path = str(tmp_path / "matches-delta-double.jsonl")
    store = CheckpointStore(str(tmp_path / "ckpt-delta-double"))

    def build():
        return _build_pipeline(
            pattern,
            events,
            sink_path,
            store,
            ThreadWorkerBackend,
            BroadcastPartitioner(),
            checkpoint_mode="delta",
        )

    build().run(max_events=130, final_checkpoint=False)
    build().run(max_events=150, final_checkpoint=False)  # resumes at 120, dies again
    final = build().run()
    assert final.total_events_processed == len(events)
    served = sorted(line for line in open(sink_path).read().splitlines() if line)
    assert served == expected


def test_delta_kill_with_nonempty_reorder_buffer(workload, tmp_path):
    """Disorder + incremental checkpoints + kill: ordering state survives."""
    pattern, events, expected = workload
    slack = 1.5
    shuffled = bounded_shuffle(events, slack, seed=47)
    sink_path = str(tmp_path / "matches-delta-reorder.jsonl")
    store = CheckpointStore(str(tmp_path / "ckpt-delta-reorder"))

    def build():
        engine = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=2,
            partitioner=BroadcastPartitioner(),
        )
        return StreamingPipeline(
            ThreadWorkerBackend(engine, feed_batch=8),
            ReplaySource(shuffled),
            sinks=[JSONLMatchWriter(sink_path)],
            checkpoint_store=store,
            checkpoint_every=CHECKPOINT_EVERY,
            checkpoint_mode="delta",
            checkpoint_full_every=FULL_EVERY,
            max_lateness=slack,
        )

    first = build().run(max_events=173, final_checkpoint=False)
    assert first.stop_reason == "max-events"
    checkpoint = store.latest()
    state = restore_ordering_state(checkpoint.ordering_blob)
    assert state["ordering"].depth > 0

    second = build().run()
    assert second.total_events_processed == len(events)
    served = sorted(line for line in open(sink_path).read().splitlines() if line)
    assert served == expected


def test_full_mode_resumes_delta_mode_store(workload, tmp_path):
    """Mode downgrade: a full-mode pipeline resumes a delta-mode store."""
    pattern, events, expected = workload
    sink_path = str(tmp_path / "matches-downgrade.jsonl")
    store = CheckpointStore(str(tmp_path / "ckpt-downgrade"))

    def build(mode):
        return _build_pipeline(
            pattern,
            events,
            sink_path,
            store,
            ThreadWorkerBackend,
            BroadcastPartitioner(),
            checkpoint_mode=mode,
        )

    build("delta").run(max_events=170, final_checkpoint=False)
    assert store.stats()["deltas"] >= 1
    final = build("full").run()
    assert final.resumed_from == 160
    assert final.total_events_processed == len(events)
    served = sorted(line for line in open(sink_path).read().splitlines() if line)
    assert served == expected


def test_key_partitioned_kill_resume(workload, tmp_path):
    """Key partitioning (no duplicate suppression in play) survives a kill."""
    pattern, events, expected = workload
    _kill_resume_verify(
        pattern,
        events,
        expected,
        tmp_path,
        "keyed",
        EVENT_COUNT // 2,
        ThreadWorkerBackend,
        KeyPartitioner("person_id"),
    )


def test_double_kill_resume(workload, tmp_path):
    """Two consecutive kills (kill → resume → kill → resume) stay lossless."""
    pattern, events, expected = workload
    sink_path = str(tmp_path / "matches-double.jsonl")
    store = CheckpointStore(str(tmp_path / "ckpt-double"))

    def build():
        return _build_pipeline(
            pattern,
            events,
            sink_path,
            store,
            ThreadWorkerBackend,
            BroadcastPartitioner(),
        )

    build().run(max_events=130, final_checkpoint=False)
    build().run(max_events=150, final_checkpoint=False)  # resumes at 120, dies again
    final = build().run()
    assert final.total_events_processed == len(events)
    served = sorted(line for line in open(sink_path).read().splitlines() if line)
    assert served == expected


def test_kill_with_nonempty_reorder_buffer(workload, tmp_path):
    """Disorder + kill: in-flight reorder-buffer events survive the resume.

    The stream is shuffled within a bounded slack and served through a
    worker backend with the event-time ordering stage in front.  The kill
    lands while the reorder buffer holds admitted-but-unreleased events
    (asserted against the recovered checkpoint), so the resume exercises
    the ordering-state restore path — and the served file must still be
    byte-identical to the uninterrupted *sorted* reference.
    """
    pattern, events, expected = workload
    slack = 1.5
    shuffled = bounded_shuffle(events, slack, seed=47)
    assert shuffled != events
    sink_path = str(tmp_path / "matches-reorder.jsonl")
    store = CheckpointStore(str(tmp_path / "ckpt-reorder"))

    def build():
        engine = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=2,
            partitioner=BroadcastPartitioner(),
        )
        return StreamingPipeline(
            ThreadWorkerBackend(engine, feed_batch=8),
            ReplaySource(shuffled),
            sinks=[JSONLMatchWriter(sink_path)],
            checkpoint_store=store,
            checkpoint_every=CHECKPOINT_EVERY,
            max_lateness=slack,
        )

    first = build().run(max_events=173, final_checkpoint=False)
    assert first.stop_reason == "max-events"
    checkpoint = store.latest()
    state = restore_ordering_state(checkpoint.ordering_blob)
    assert state["ordering"].depth > 0, (
        "the kill point must leave events in the reorder buffer for this "
        "test to exercise the in-flight restore path"
    )
    assert checkpoint.records_ingested > checkpoint.events_processed

    second = build().run()
    assert second.stop_reason == "source-exhausted"
    assert second.total_events_processed == len(events)
    served = sorted(line for line in open(sink_path).read().splitlines() if line)
    assert served == expected, (
        f"served {len(served)} matches, expected {len(expected)} "
        "(lost or duplicated across a resume with a non-empty reorder buffer)"
    )


def test_double_kill_with_reorder_buffer(workload, tmp_path):
    """Two kills with an ordering stage stay lossless end to end."""
    pattern, events, expected = workload
    slack = 1.5
    shuffled = bounded_shuffle(events, slack, seed=53)
    sink_path = str(tmp_path / "matches-reorder-double.jsonl")
    store = CheckpointStore(str(tmp_path / "ckpt-reorder-double"))

    def build():
        engine = AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy()
        )
        return StreamingPipeline(
            engine,
            ReplaySource(shuffled),
            sinks=[JSONLMatchWriter(sink_path)],
            checkpoint_store=store,
            checkpoint_every=CHECKPOINT_EVERY,
            max_lateness=slack,
        )

    build().run(max_events=130, final_checkpoint=False)
    build().run(max_events=150, final_checkpoint=False)
    final = build().run()
    assert final.total_events_processed == len(events)
    served = sorted(line for line in open(sink_path).read().splitlines() if line)
    assert served == expected


def test_inline_checkpoint_resumes_on_worker_backend(workload, tmp_path):
    """Backend upgrade mid-life: inline checkpoints feed a worker resume."""
    pattern, events, expected = workload
    sink_path = str(tmp_path / "matches-upgrade.jsonl")
    store = CheckpointStore(str(tmp_path / "ckpt-upgrade"))

    inline_engine = ParallelCEPEngine(
        pattern,
        GreedyOrderPlanner(),
        InvariantBasedPolicy(),
        shards=2,
        partitioner=BroadcastPartitioner(),
    )
    StreamingPipeline(
        inline_engine,
        ReplaySource(events),
        sinks=[JSONLMatchWriter(sink_path)],
        checkpoint_store=store,
        checkpoint_every=CHECKPOINT_EVERY,
    ).run(max_events=200, final_checkpoint=False)

    second = _build_pipeline(
        pattern, events, sink_path, store, ProcessWorkerBackend, BroadcastPartitioner()
    ).run()
    assert second.resumed_from == 200 - (200 % CHECKPOINT_EVERY)
    served = sorted(line for line in open(sink_path).read().splitlines() if line)
    assert served == expected

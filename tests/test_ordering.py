"""Event-time ordering: watermarks, the reorder buffer and late policies.

Unit tests for :mod:`repro.streaming.ordering` plus the integration
surface the tentpole wires it into: the pipeline ordering stage, the
metrics gauges, the checkpointed in-flight reorder buffer, and the
late-sample tolerance of the sliding-window statistics.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.adaptive import InvariantBasedPolicy
from repro.engine import AdaptiveCEPEngine
from repro.engine.state import (
    is_ordering_snapshot,
    restore_ordering_state,
    snapshot_ordering_state,
)
from repro.errors import CheckpointError, StreamingError
from repro.events import Event, EventType
from repro.optimizer import GreedyOrderPlanner
from repro.streaming import (
    BoundedOutOfOrdernessWatermarks,
    CheckpointStore,
    CollectorSink,
    IterableSource,
    JSONLMatchWriter,
    PayloadWatermarkExtractor,
    PunctuatedWatermarks,
    ReorderBuffer,
    ReplaySource,
    StreamingPipeline,
    bounded_shuffle,
    reorder_events,
)
from repro.streaming.sinks import match_record
from tests.conftest import make_camera_stream

E = EventType("E")


def _event(ts, seq=None, **payload):
    return Event(E, ts, payload, sequence_number=seq)


def _sequential_engine(pattern):
    return AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())


def _records(matches):
    return sorted(json.dumps(match_record(match)) for match in matches)


# ----------------------------------------------------------------------
# Watermark generators
# ----------------------------------------------------------------------
class TestWatermarkGenerators:
    def test_bounded_trails_max_timestamp(self):
        generator = BoundedOutOfOrdernessWatermarks(2.0)
        assert generator.current_watermark == float("-inf")
        assert generator.observe(_event(10.0)) == 8.0
        # A smaller timestamp never regresses the watermark.
        assert generator.observe(_event(5.0)) is None
        assert generator.current_watermark == 8.0
        assert generator.observe(_event(11.0)) == 9.0

    def test_zero_lateness_asserts_sorted(self):
        generator = BoundedOutOfOrdernessWatermarks(0.0)
        assert generator.observe(_event(3.0)) == 3.0

    def test_negative_lateness_rejected(self):
        with pytest.raises(StreamingError):
            BoundedOutOfOrdernessWatermarks(-1.0)

    def test_punctuated_reads_payload_field(self):
        generator = PunctuatedWatermarks(PayloadWatermarkExtractor("wm"))
        assert generator.observe(_event(5.0)) is None  # no punctuation
        assert generator.observe(_event(6.0, wm=4.0)) == 4.0
        assert generator.observe(_event(7.0, wm=3.0)) is None  # monotone
        assert generator.current_watermark == 4.0

    def test_punctuated_requires_callable(self):
        with pytest.raises(StreamingError):
            PunctuatedWatermarks("not-callable")


# ----------------------------------------------------------------------
# The reorder buffer
# ----------------------------------------------------------------------
class TestReorderBuffer:
    def test_sorted_input_passes_through(self):
        buffer = ReorderBuffer(0.0)
        out = []
        for ts in (1.0, 2.0, 3.0):
            out.extend(buffer.push(_event(ts)))
        out.extend(buffer.flush())
        # Each event is held until the watermark strictly passes it (an
        # equal-timestamp peer could still arrive), so the boundary event
        # comes out one step (or one flush) later — but in exact order.
        assert [event.timestamp for event in out] == [1.0, 2.0, 3.0]
        assert buffer.depth == 0
        assert buffer.late_events == 0

    def test_reorders_within_lateness(self):
        buffer = ReorderBuffer(2.0)
        arrivals = [3.0, 1.5, 2.0, 4.0, 3.5, 6.0]
        released = []
        for ts in arrivals:
            released.extend(buffer.push(_event(ts)))
        released.extend(buffer.flush())
        assert [event.timestamp for event in released] == sorted(arrivals)
        assert buffer.late_events == 0

    def test_equal_timestamps_release_by_sequence_number(self):
        buffer = ReorderBuffer(5.0)
        first = _event(1.0, seq=7)
        second = _event(1.0, seq=3)
        buffer.push(first)
        buffer.push(second)
        assert buffer.flush() == [second, first]

    def test_late_drop_counts(self):
        buffer = ReorderBuffer(1.0)
        buffer.push(_event(10.0))  # watermark -> 9.0
        assert buffer.push(_event(5.0)) == []
        assert buffer.late_events == 1
        assert buffer.depth == 1  # only the on-time event

    def test_late_side_output(self):
        diverted = []
        buffer = ReorderBuffer(1.0, late_policy="side-output", late_sink=diverted.append)
        buffer.push(_event(10.0))
        late = _event(5.0)
        buffer.push(late)
        assert diverted == [late]
        assert buffer.late_events == 1

    def test_late_raise(self):
        buffer = ReorderBuffer(1.0, late_policy="raise")
        buffer.push(_event(10.0))
        with pytest.raises(StreamingError, match="late event"):
            buffer.push(_event(5.0))

    def test_side_output_requires_sink(self):
        with pytest.raises(StreamingError):
            ReorderBuffer(1.0, late_policy="side-output")

    def test_unknown_policy_rejected(self):
        with pytest.raises(StreamingError):
            ReorderBuffer(1.0, late_policy="what")

    def test_max_depth_tracks_occupancy(self):
        buffer = ReorderBuffer(10.0)
        for ts in (1.0, 2.0, 3.0):
            buffer.push(_event(ts))
        assert buffer.max_depth == 3
        buffer.flush()
        assert buffer.max_depth == 3

    def test_pending_is_release_ordered(self):
        buffer = ReorderBuffer(10.0)
        buffer.push(_event(3.0))
        buffer.push(_event(1.0))
        assert [event.timestamp for event in buffer.pending()] == [1.0, 3.0]

    def test_pickle_round_trip_preserves_state(self):
        buffer = ReorderBuffer(2.0)
        buffer.push(_event(10.0))
        buffer.push(_event(9.0))
        buffer.push(_event(1.0))  # late
        clone = pickle.loads(pickle.dumps(buffer))
        assert clone.depth == buffer.depth
        assert clone.watermark == buffer.watermark
        assert clone.late_events == 1
        assert [e.timestamp for e in clone.flush()] == [9.0, 10.0]

    def test_punctuated_holds_until_punctuation(self):
        buffer = ReorderBuffer(
            PunctuatedWatermarks(PayloadWatermarkExtractor("wm"))
        )
        for ts in (5.0, 3.0, 4.0):
            assert buffer.push(_event(ts)) == []
        released = buffer.push(_event(6.0, wm=5.0))
        # ts == watermark is held back (an equal-timestamp straggler could
        # still legally arrive); everything strictly below is released.
        assert [event.timestamp for event in released] == [3.0, 4.0]
        assert [event.timestamp for event in buffer.flush()] == [5.0, 6.0]

    def test_boundary_straggler_keeps_sequence_order(self):
        """An arrival with ts exactly on the watermark still sorts by seq.

        Regression: with release-at-<=, B(ts=6,seq=1) was emitted before
        the straggler A(ts=6,seq=0) whenever a third event pushed the
        watermark to exactly 6 between their arrivals.
        """
        buffer = ReorderBuffer(2.0)
        released = []
        released.extend(buffer.push(_event(6.0, seq=1)))
        released.extend(buffer.push(_event(8.0, seq=2)))  # watermark -> 6.0
        released.extend(buffer.push(_event(6.0, seq=0)))  # not late: 6 !< 6
        released.extend(buffer.flush())
        assert buffer.late_events == 0
        keys = [(event.timestamp, event.sequence_number) for event in released]
        assert keys == [(6.0, 0), (6.0, 1), (8.0, 2)]


# ----------------------------------------------------------------------
# bounded_shuffle + offline reordering
# ----------------------------------------------------------------------
class TestBoundedShuffle:
    def test_is_a_seeded_permutation_within_slack(self):
        events = make_camera_stream(count=150, seed=3).to_list()
        shuffled = bounded_shuffle(events, 1.5, seed=11)
        assert shuffled != events
        assert sorted(shuffled) == events
        assert bounded_shuffle(events, 1.5, seed=11) == shuffled
        # Bounded displacement: nothing arrives more than `slack` of stream
        # time after a later event.
        max_seen = float("-inf")
        for event in shuffled:
            assert event.timestamp > max_seen - 1.5 - 1e-9
            max_seen = max(max_seen, event.timestamp)

    def test_recovered_exactly_by_matching_lateness(self):
        events = make_camera_stream(count=200, seed=4).to_list()
        shuffled = bounded_shuffle(events, 2.0, seed=9)
        assert reorder_events(shuffled, 2.0) == events

    def test_negative_slack_rejected(self):
        with pytest.raises(StreamingError):
            bounded_shuffle([], -0.5)

    def test_zero_slack_is_identity(self):
        events = make_camera_stream(count=40, seed=5).to_list()
        assert bounded_shuffle(events, 0.0, seed=1) == events


# ----------------------------------------------------------------------
# Ordering snapshot framing
# ----------------------------------------------------------------------
class TestOrderingSnapshots:
    def test_round_trip(self):
        buffer = ReorderBuffer(2.0)
        buffer.push(_event(10.0))
        staged = [_event(7.0), _event(7.5)]
        blob = snapshot_ordering_state({"ordering": buffer, "staged": staged})
        assert is_ordering_snapshot(blob)
        state = restore_ordering_state(blob)
        assert state["ordering"].depth == 1
        assert state["staged"] == staged

    def test_requires_ordering_entry(self):
        with pytest.raises(CheckpointError):
            snapshot_ordering_state({"staged": []})

    def test_rejects_foreign_blobs(self):
        assert not is_ordering_snapshot(b"junk")
        with pytest.raises(CheckpointError):
            restore_ordering_state(b"junk")


# ----------------------------------------------------------------------
# Pipeline integration
# ----------------------------------------------------------------------
SLACK = 1.5


class TestPipelineOrdering:
    def _run(self, pattern, events, **kwargs):
        sink = CollectorSink()
        pipeline = StreamingPipeline(
            _sequential_engine(pattern),
            ReplaySource(events),
            sinks=[sink],
            **kwargs,
        )
        result = pipeline.run()
        return sink.matches, result

    def test_disordered_stream_equals_sorted_replay(self, camera_pattern):
        events = make_camera_stream(count=250, seed=8).to_list()
        reference, _ = self._run(camera_pattern, events)
        shuffled = bounded_shuffle(events, SLACK, seed=13)
        disordered, result = self._run(
            camera_pattern, shuffled, max_lateness=SLACK
        )
        assert _records(reference) and _records(disordered) == _records(reference)
        assert result.metrics.late_events == 0
        assert result.metrics.watermark_lag.observations == len(events)
        assert result.metrics.reorder_depth_high_water > 0

    def test_late_events_dropped_and_counted(self, camera_pattern):
        events = make_camera_stream(count=100, seed=9).to_list()
        # Shuffle beyond the tolerance: some events must arrive late.
        shuffled = bounded_shuffle(events, 4.0, seed=17)
        matches, result = self._run(
            camera_pattern, shuffled, max_lateness=0.5, late_policy="drop"
        )
        assert result.metrics.late_events > 0
        assert result.events_processed == len(events) - result.metrics.late_events

    def test_late_raise_policy_fails_the_run(self, camera_pattern):
        events = make_camera_stream(count=100, seed=9).to_list()
        shuffled = bounded_shuffle(events, 4.0, seed=17)
        with pytest.raises(StreamingError, match="late event"):
            self._run(
                camera_pattern, shuffled, max_lateness=0.5, late_policy="raise"
            )

    def test_late_side_output_receives_events(self, camera_pattern):
        events = make_camera_stream(count=100, seed=10).to_list()
        shuffled = bounded_shuffle(events, 4.0, seed=23)
        diverted = []
        _, result = self._run(
            camera_pattern,
            shuffled,
            max_lateness=0.5,
            late_policy="side-output",
            late_sink=diverted.append,
        )
        assert len(diverted) == result.metrics.late_events > 0

    def test_ordering_and_max_lateness_are_exclusive(self, camera_pattern):
        with pytest.raises(StreamingError):
            StreamingPipeline(
                _sequential_engine(camera_pattern),
                ReplaySource([]),
                ordering=ReorderBuffer(1.0),
                max_lateness=1.0,
            )

    def test_push_style_submit_flush_drain(self, camera_pattern):
        events = make_camera_stream(count=120, seed=12).to_list()
        expected, _ = self._run(camera_pattern, events)
        pipeline = StreamingPipeline(
            _sequential_engine(camera_pattern),
            [],
            buffer_capacity=512,
            max_lateness=SLACK,
        )
        collected = []
        try:
            for event in bounded_shuffle(events, SLACK, seed=29):
                assert pipeline.submit(event)
                collected.extend(pipeline.drain())
            pipeline.flush_ordering()
            collected.extend(pipeline.drain())
        finally:
            pipeline.close()
        assert _records(collected) == _records(expected)

    def test_checkpoint_resume_with_inflight_buffer(self, camera_pattern, tmp_path):
        events = make_camera_stream(count=300, seed=15).to_list()
        expected = _sequential_engine(camera_pattern).run(events).matches
        shuffled = bounded_shuffle(events, SLACK, seed=31)
        sink_path = str(tmp_path / "matches.jsonl")
        store = CheckpointStore(str(tmp_path / "ckpt"))

        def build():
            return StreamingPipeline(
                _sequential_engine(camera_pattern),
                ReplaySource(shuffled),
                sinks=[JSONLMatchWriter(sink_path)],
                checkpoint_store=store,
                checkpoint_every=50,
                max_lateness=SLACK,
            )

        first = build().run(max_events=137, final_checkpoint=False)
        assert first.stop_reason == "max-events"
        checkpoint = store.latest()
        state = restore_ordering_state(checkpoint.ordering_blob)
        assert state["ordering"].depth > 0, "want in-flight events at the cut"
        assert checkpoint.records_ingested > checkpoint.events_processed

        second = build().run()
        assert second.stop_reason == "source-exhausted"
        assert second.total_events_processed == len(events)
        served = sorted(line for line in open(sink_path).read().splitlines() if line)
        assert served == _records(expected)

    def test_ordering_checkpoint_needs_ordering_stage_to_resume(
        self, camera_pattern, tmp_path
    ):
        events = make_camera_stream(count=120, seed=16).to_list()
        shuffled = bounded_shuffle(events, SLACK, seed=37)
        store = CheckpointStore(str(tmp_path / "ckpt"))
        StreamingPipeline(
            _sequential_engine(camera_pattern),
            ReplaySource(shuffled),
            checkpoint_store=store,
            checkpoint_every=40,
            max_lateness=SLACK,
        ).run(max_events=90, final_checkpoint=False)
        plain = StreamingPipeline(
            _sequential_engine(camera_pattern),
            ReplaySource(shuffled),
            checkpoint_store=store,
        )
        with pytest.raises(CheckpointError, match="reorder buffer"):
            plain.run()


# ----------------------------------------------------------------------
# Satellite regressions
# ----------------------------------------------------------------------
class TestSourceRateValidation:
    def test_rate_zero_is_rejected(self):
        with pytest.raises(StreamingError):
            IterableSource([], rate=0)

    def test_negative_rate_is_rejected(self):
        with pytest.raises(StreamingError):
            ReplaySource([], rate=-5.0)

    def test_rate_none_disables_pacing(self):
        source = IterableSource([_event(1.0)])
        assert [event.timestamp for event in source] == [1.0]


class TestSlidingWindowLateTolerance:
    def test_statistics_survive_disordered_feed(self):
        from repro.statistics import SlidingWindowRateEstimator

        estimator = SlidingWindowRateEstimator(window=10.0)
        for ts in (1.0, 2.0, 1.5, 3.0, 0.5):
            estimator.observe(ts)  # would previously raise StatisticsError
        assert estimator.late_samples == 2
        assert estimator.count(now=3.0) == 5

    def test_selectivity_estimator_counts_late(self):
        from repro.statistics import SlidingSelectivityEstimator

        estimator = SlidingSelectivityEstimator(window=10.0)
        estimator.observe(2.0, True)
        estimator.observe(1.0, False)
        assert estimator.late_samples == 1
        assert 0.0 <= estimator.selectivity() <= 1.0

"""Unit tests for the statistics substrate."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.conditions import AndCondition, EqualityCondition
from repro.errors import StatisticsError
from repro.events import Event, EventType
from repro.patterns import seq
from repro.statistics import (
    BucketedSlidingCounter,
    ConstantValue,
    GroundTruthStatisticsProvider,
    LinearDriftValue,
    NoisyStatisticsProvider,
    OscillatingValue,
    RandomWalkValue,
    SlidingSelectivityEstimator,
    SlidingWindowRateEstimator,
    StaticStatisticsProvider,
    StatisticsCollector,
    StatisticsSnapshot,
    StepValue,
    pair_key,
)


class TestPairKey:
    def test_canonical_order(self):
        assert pair_key("b", "a") == ("a", "b")
        assert pair_key("a", "b") == ("a", "b")

    def test_self_pair(self):
        assert pair_key("a", "a") == ("a", "a")


class TestStatisticsSnapshot:
    def test_rate_lookup(self):
        snapshot = StatisticsSnapshot({"A": 5.0})
        assert snapshot.rate("A") == 5.0
        assert snapshot.has_rate("A") and not snapshot.has_rate("B")

    def test_unknown_rate_raises(self):
        with pytest.raises(StatisticsError):
            StatisticsSnapshot({}).rate("A")

    def test_rate_or_default(self):
        assert StatisticsSnapshot({}).rate_or_default("A", 3.0) == 3.0

    def test_negative_rate_rejected(self):
        with pytest.raises(StatisticsError):
            StatisticsSnapshot({"A": -1.0})

    def test_selectivity_defaults_to_one(self):
        assert StatisticsSnapshot({"A": 1.0}).selectivity("a", "b") == 1.0

    def test_selectivity_symmetric_key(self):
        snapshot = StatisticsSnapshot({"A": 1.0}, {("b", "a"): 0.3})
        assert snapshot.selectivity("a", "b") == 0.3
        assert snapshot.selectivity("b", "a") == 0.3

    def test_selectivity_out_of_range_rejected(self):
        with pytest.raises(StatisticsError):
            StatisticsSnapshot({"A": 1.0}, {("a", "b"): 1.5})

    def test_local_selectivity(self):
        snapshot = StatisticsSnapshot({"A": 1.0}, {("a", "a"): 0.4})
        assert snapshot.local_selectivity("a") == 0.4
        assert snapshot.local_selectivity("b") == 1.0

    def test_restrict(self):
        snapshot = StatisticsSnapshot({"A": 1.0, "B": 2.0})
        restricted = snapshot.restrict(["A"])
        assert restricted.has_rate("A") and not restricted.has_rate("B")

    def test_with_rate_and_with_selectivity_copy(self):
        snapshot = StatisticsSnapshot({"A": 1.0})
        updated = snapshot.with_rate("A", 9.0).with_selectivity("a", "b", 0.2)
        assert updated.rate("A") == 9.0
        assert updated.selectivity("a", "b") == 0.2
        assert snapshot.rate("A") == 1.0

    def test_max_relative_deviation(self):
        baseline = StatisticsSnapshot({"A": 10.0, "B": 5.0}, {("a", "b"): 0.5})
        current = StatisticsSnapshot({"A": 15.0, "B": 5.0}, {("a", "b"): 0.55})
        assert current.max_relative_deviation(baseline) == pytest.approx(0.5)

    def test_max_relative_deviation_ignores_unshared(self):
        baseline = StatisticsSnapshot({"A": 10.0})
        current = StatisticsSnapshot({"B": 99.0})
        assert current.max_relative_deviation(baseline) == 0.0

    def test_equality(self):
        assert StatisticsSnapshot({"A": 1.0}) == StatisticsSnapshot({"A": 1.0})
        assert StatisticsSnapshot({"A": 1.0}) != StatisticsSnapshot({"A": 2.0})


class TestBucketedSlidingCounter:
    def test_counts_within_window(self):
        counter = BucketedSlidingCounter(window=10.0, num_buckets=10)
        for t in range(5):
            counter.add(float(t))
        assert counter.count(now=4.0) == 5

    def test_expires_old_buckets(self):
        counter = BucketedSlidingCounter(window=10.0, num_buckets=10)
        counter.add(0.0)
        counter.add(20.0)
        assert counter.count(now=20.0) == 1

    def test_rate_estimate(self):
        counter = BucketedSlidingCounter(window=10.0, num_buckets=10)
        for t in np.arange(0, 10, 0.5):
            counter.add(float(t))
        assert counter.rate(now=10.0) == pytest.approx(2.0, rel=0.3)

    def test_out_of_order_clamped_and_counted(self):
        """Boundedly late updates are absorbed into the newest bucket."""
        counter = BucketedSlidingCounter(window=10.0)
        counter.add(5.0)
        counter.add(1.0)  # late by 4 < window: clamped to 5.0
        assert counter.late_samples == 1
        assert counter.count(now=5.0) == 2
        # The clamp must not rewind the clock: window expiry still works.
        counter.add(5.5)
        assert counter.late_samples == 1
        assert counter.count(now=5.5) == 3

    def test_grossly_out_of_order_still_rejected(self):
        """Beyond one window, disorder stays a loud caller bug."""
        counter = BucketedSlidingCounter(window=10.0)
        counter.add(50.0)
        with pytest.raises(StatisticsError):
            counter.add(10.0)
        assert counter.late_samples == 0

    def test_unpickle_state_without_late_samples_slot(self):
        """Counters from pre-late_samples engine checkpoints keep working."""
        from collections import deque

        old = BucketedSlidingCounter.__new__(BucketedSlidingCounter)
        # The slots state an older build would have pickled (no late_samples).
        old.__setstate__(
            (
                None,
                {
                    "window": 10.0,
                    "num_buckets": 32,
                    "_bucket_width": 10.0 / 32,
                    "_buckets": deque([(4.6875, 1.0)]),
                    "_last_time": 5.0,
                },
            )
        )
        assert old.late_samples == 0
        old.add(4.0)  # boundedly late: clamps instead of AttributeError
        assert old.late_samples == 1
        assert old.count(now=5.0) == 2

    def test_empty_counter(self):
        counter = BucketedSlidingCounter(window=10.0)
        assert counter.count() == 0.0
        assert counter.rate() == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(StatisticsError):
            BucketedSlidingCounter(window=0)
        with pytest.raises(StatisticsError):
            BucketedSlidingCounter(window=1, num_buckets=0)

    def test_advance_expires_without_counting(self):
        counter = BucketedSlidingCounter(window=5.0, num_buckets=5)
        counter.add(0.0)
        counter.advance(100.0)
        assert counter.count() == 0.0


class TestRateEstimator:
    def test_steady_rate(self):
        estimator = SlidingWindowRateEstimator(window=20.0)
        for t in np.arange(0, 20, 0.25):  # 4 events per time unit
            estimator.observe(float(t))
        assert estimator.rate() == pytest.approx(4.0, rel=0.2)

    def test_rate_drops_after_burst_expires(self):
        estimator = SlidingWindowRateEstimator(window=10.0)
        for t in np.arange(0, 5, 0.1):
            estimator.observe(float(t))
        burst_rate = estimator.rate(now=5.0)
        estimator.advance(30.0)
        assert estimator.rate(now=30.0) < burst_rate / 5

    def test_count(self):
        estimator = SlidingWindowRateEstimator(window=10.0)
        for t in range(5):
            estimator.observe(float(t))
        assert estimator.count(now=4.0) == 5


class TestSelectivityEstimator:
    def test_converges_to_observed_fraction(self):
        estimator = SlidingSelectivityEstimator(window=100.0, prior_weight=1.0)
        rng = np.random.default_rng(0)
        for t in np.arange(0, 100, 0.1):
            estimator.observe(float(t), bool(rng.random() < 0.3))
        assert estimator.selectivity() == pytest.approx(0.3, abs=0.05)

    def test_prior_used_before_evidence(self):
        estimator = SlidingSelectivityEstimator(window=10.0, prior_selectivity=0.7)
        assert estimator.selectivity() == pytest.approx(0.7)

    def test_selectivity_bounded(self):
        estimator = SlidingSelectivityEstimator(window=10.0, prior_weight=0.0)
        estimator.observe(1.0, True)
        assert 0.0 <= estimator.selectivity() <= 1.0

    def test_invalid_prior_rejected(self):
        with pytest.raises(StatisticsError):
            SlidingSelectivityEstimator(window=10.0, prior_selectivity=1.5)

    def test_attempts_counter(self):
        estimator = SlidingSelectivityEstimator(window=10.0)
        estimator.observe(0.0, True)
        estimator.observe(1.0, False)
        assert estimator.attempts(now=1.0) == 2


class TestTimeVaryingValues:
    def test_constant(self):
        assert ConstantValue(3.0).value_at(100.0) == 3.0

    def test_step_value(self):
        value = StepValue(1.0, [(10.0, 5.0), (20.0, 2.0)])
        assert value.value_at(0.0) == 1.0
        assert value.value_at(10.0) == 5.0
        assert value.value_at(15.0) == 5.0
        assert value.value_at(25.0) == 2.0
        assert value.shift_times == (10.0, 20.0)

    def test_step_value_requires_increasing_times(self):
        with pytest.raises(StatisticsError):
            StepValue(1.0, [(10.0, 5.0), (5.0, 2.0)])

    def test_linear_drift(self):
        value = LinearDriftValue(0.0, 10.0, t0=0.0, t1=10.0)
        assert value.value_at(-1.0) == 0.0
        assert value.value_at(5.0) == pytest.approx(5.0)
        assert value.value_at(20.0) == 10.0

    def test_linear_drift_invalid_interval(self):
        with pytest.raises(StatisticsError):
            LinearDriftValue(0.0, 1.0, t0=5.0, t1=5.0)

    def test_oscillating_value_range(self):
        value = OscillatingValue(base=10.0, amplitude=0.5, period=10.0)
        samples = [value.value_at(t) for t in np.arange(0, 20, 0.1)]
        assert max(samples) <= 15.0 + 1e-9
        assert min(samples) >= 5.0 - 1e-9
        assert max(samples) > 12.0 and min(samples) < 8.0

    def test_oscillating_invalid_period(self):
        with pytest.raises(StatisticsError):
            OscillatingValue(1.0, 0.1, period=0.0)

    def test_random_walk_deterministic(self):
        walk1 = RandomWalkValue(10.0, 0.05, horizon=100, step=1.0, rng=np.random.default_rng(3))
        walk2 = RandomWalkValue(10.0, 0.05, horizon=100, step=1.0, rng=np.random.default_rng(3))
        assert walk1.value_at(42.0) == walk2.value_at(42.0)

    def test_random_walk_bounds(self):
        walk = RandomWalkValue(
            10.0, 0.5, horizon=100, step=1.0, rng=np.random.default_rng(1), lower=5.0, upper=15.0
        )
        samples = [walk.value_at(t) for t in range(100)]
        assert min(samples) >= 5.0 and max(samples) <= 15.0

    def test_clamp(self):
        value = ConstantValue(5.0).clamp(0.0, 1.0)
        assert value.value_at(0.0) == 1.0


def make_pattern():
    a, b, c = EventType("A"), EventType("B"), EventType("C")
    condition = AndCondition(
        [EqualityCondition("a", "b", "pid"), EqualityCondition("b", "c", "pid")]
    )
    return seq([a, b, c], condition=condition, window=10.0)


class TestStatisticsCollector:
    def test_register_pattern_tracks_types_and_pairs(self):
        collector = StatisticsCollector(window=20.0)
        collector.register_pattern(make_pattern())
        assert set(collector.tracked_types) == {"A", "B", "C"}
        assert set(collector.tracked_pairs) == {("a", "b"), ("b", "c")}

    def test_observe_events_produces_rates(self):
        collector = StatisticsCollector(window=10.0)
        collector.register_pattern(make_pattern())
        for t in np.arange(0, 10, 0.5):
            collector.observe_event(Event(EventType("A"), float(t)))
        snapshot = collector.snapshot()
        assert snapshot.rate("A") == pytest.approx(2.0, rel=0.3)
        assert snapshot.rate("B") == 0.0

    def test_unregistered_type_ignored(self):
        collector = StatisticsCollector(window=10.0)
        collector.register_pattern(make_pattern())
        collector.observe_event(Event(EventType("ZZZ"), 1.0))
        assert not collector.snapshot().has_rate("ZZZ")

    def test_observe_condition_updates_selectivity(self):
        collector = StatisticsCollector(window=50.0, prior_selectivity=0.5)
        collector.register_pattern(make_pattern())
        for t in np.arange(0, 50, 0.5):
            collector.observe_condition("a", "b", float(t), success=(int(t) % 4 == 0))
        selectivity = collector.snapshot().selectivity("a", "b")
        assert selectivity < 0.4

    def test_invalid_window_rejected(self):
        with pytest.raises(StatisticsError):
            StatisticsCollector(window=0.0)

    def test_seed_from_snapshot(self):
        collector = StatisticsCollector(window=10.0)
        collector.register_pattern(make_pattern())
        collector.advance_time(10.0)
        collector.seed_from_snapshot(
            StatisticsSnapshot({"A": 4.0, "B": 2.0, "C": 1.0}, {("a", "b"): 0.25})
        )
        snapshot = collector.snapshot()
        assert snapshot.rate("A") > snapshot.rate("C") > 0
        assert snapshot.selectivity("a", "b") == pytest.approx(0.25, abs=0.05)


class TestProviders:
    def test_static_provider(self):
        provider = StaticStatisticsProvider(StatisticsSnapshot({"A": 2.0}))
        snapshot = provider.snapshot(now=42.0)
        assert snapshot.rate("A") == 2.0
        assert snapshot.timestamp == 42.0

    def test_ground_truth_provider(self):
        provider = GroundTruthStatisticsProvider(
            {"A": StepValue(1.0, [(10.0, 9.0)])},
            {("a", "b"): ConstantValue(0.3)},
        )
        assert provider.snapshot(0.0).rate("A") == 1.0
        assert provider.snapshot(11.0).rate("A") == 9.0
        assert provider.snapshot(0.0).selectivity("a", "b") == 0.3

    def test_ground_truth_requires_rate_models(self):
        with pytest.raises(StatisticsError):
            GroundTruthStatisticsProvider({})

    def test_ground_truth_clamps_selectivity(self):
        provider = GroundTruthStatisticsProvider(
            {"A": ConstantValue(1.0)}, {("a", "b"): ConstantValue(1.7)}
        )
        assert provider.snapshot(0.0).selectivity("a", "b") == 1.0

    def test_noisy_provider_perturbs_but_stays_valid(self):
        inner = StaticStatisticsProvider(
            StatisticsSnapshot({"A": 10.0}, {("a", "b"): 0.5})
        )
        provider = NoisyStatisticsProvider(inner, noise=0.2, seed=1)
        snapshot = provider.snapshot(5.0)
        assert snapshot.rate("A") >= 0.0
        assert 0.0 <= snapshot.selectivity("a", "b") <= 1.0

    def test_noisy_provider_zero_noise_is_identity(self):
        inner = StaticStatisticsProvider(StatisticsSnapshot({"A": 10.0}))
        provider = NoisyStatisticsProvider(inner, noise=0.0)
        assert provider.snapshot(1.0).rate("A") == 10.0

    def test_noisy_provider_deterministic_per_time(self):
        inner = StaticStatisticsProvider(StatisticsSnapshot({"A": 10.0}))
        provider = NoisyStatisticsProvider(inner, noise=0.3, seed=5)
        assert provider.snapshot(3.0).rate("A") == provider.snapshot(3.0).rate("A")

"""Unit tests for evaluation plans and the cost model."""

from __future__ import annotations

import pytest

from repro.conditions import AndCondition, EqualityCondition
from repro.errors import PlanError
from repro.events import EventType
from repro.patterns import seq
from repro.plans import (
    OrderBasedPlan,
    TreeBasedPlan,
    TreeInternalNode,
    TreeLeaf,
    order_plan_cost,
    order_step_cost,
    pair_selectivity_product,
    tree_plan_cost,
)
from repro.statistics import StatisticsSnapshot


A, B, C, D = EventType("A"), EventType("B"), EventType("C"), EventType("D")


def camera_pattern():
    condition = AndCondition(
        [EqualityCondition("a", "b", "pid"), EqualityCondition("b", "c", "pid")]
    )
    return seq([A, B, C], condition=condition, window=10.0)


def camera_snapshot():
    return StatisticsSnapshot(
        {"A": 100.0, "B": 15.0, "C": 10.0}, {("a", "b"): 0.3, ("b", "c"): 0.2}
    )


class TestOrderBasedPlan:
    def test_in_pattern_order(self):
        plan = OrderBasedPlan.in_pattern_order(camera_pattern())
        assert plan.order == ("a", "b", "c")
        assert plan.initiator == "a"

    def test_custom_order(self):
        plan = OrderBasedPlan(camera_pattern(), ["c", "b", "a"])
        assert plan.initiator == "c"
        assert plan.position("b") == 1

    def test_order_must_be_permutation(self):
        pattern = camera_pattern()
        with pytest.raises(PlanError):
            OrderBasedPlan(pattern, ["a", "b"])
        with pytest.raises(PlanError):
            OrderBasedPlan(pattern, ["a", "b", "b"])
        with pytest.raises(PlanError):
            OrderBasedPlan(pattern, ["a", "b", "z"])

    def test_position_unknown_variable(self):
        plan = OrderBasedPlan.in_pattern_order(camera_pattern())
        with pytest.raises(PlanError):
            plan.position("z")

    def test_block_labels_one_per_step(self):
        plan = OrderBasedPlan(camera_pattern(), ["c", "b", "a"])
        labels = plan.block_labels()
        assert len(labels) == 3
        assert "C" in labels[0]

    def test_equality(self):
        pattern = camera_pattern()
        assert OrderBasedPlan(pattern, ["c", "b", "a"]) == OrderBasedPlan(pattern, ["c", "b", "a"])
        assert OrderBasedPlan(pattern, ["c", "b", "a"]) != OrderBasedPlan(pattern, ["a", "b", "c"])

    def test_rate_ascending_order_is_cheaper(self):
        pattern = camera_pattern()
        snapshot = camera_snapshot()
        ascending = OrderBasedPlan(pattern, ["c", "b", "a"])
        descending = OrderBasedPlan(pattern, ["a", "b", "c"])
        assert ascending.cost(snapshot) < descending.cost(snapshot)

    def test_items_in_order(self):
        plan = OrderBasedPlan(camera_pattern(), ["c", "b", "a"])
        assert [item.event_type.name for item in plan.items_in_order()] == ["C", "B", "A"]

    def test_plan_excludes_negated_items(self):
        from repro.patterns import Pattern, PatternItem, PatternOperator

        pattern = Pattern(
            PatternOperator.SEQUENCE,
            [PatternItem("a", A), PatternItem("n", B, negated=True), PatternItem("c", C)],
        )
        plan = OrderBasedPlan.in_pattern_order(pattern)
        assert plan.order == ("a", "c")


class TestCostModel:
    def test_order_step_cost_uses_rate_and_selectivities(self):
        pattern = camera_pattern()
        snapshot = camera_snapshot()
        first = order_step_cost(snapshot, pattern, [], "c")
        assert first == pytest.approx(10.0)
        second = order_step_cost(snapshot, pattern, ["c"], "b")
        assert second == pytest.approx(15.0 * 0.2)

    def test_order_step_cost_uncoupled_pair_has_no_selectivity(self):
        pattern = camera_pattern()
        snapshot = camera_snapshot()
        # a and c are not directly coupled by a condition.
        step = order_step_cost(snapshot, pattern, ["c"], "a")
        assert step == pytest.approx(100.0)

    def test_order_plan_cost_is_sum_of_prefix_products(self):
        pattern = camera_pattern()
        snapshot = camera_snapshot()
        cost = order_plan_cost(snapshot, pattern, ["c", "b", "a"])
        step1 = 10.0
        step2 = step1 * (15.0 * 0.2)
        step3 = step2 * (100.0 * 0.3)
        assert cost == pytest.approx(step1 + step2 + step3)

    def test_pair_selectivity_product(self):
        pattern = camera_pattern()
        snapshot = camera_snapshot()
        product = pair_selectivity_product(snapshot, ["a"], ["b", "c"], pattern)
        assert product == pytest.approx(0.3)
        assert pair_selectivity_product(snapshot, ["a"], ["c"], pattern) == 1.0

    def test_local_selectivity_in_cost(self):
        from repro.conditions import AttributeThresholdCondition

        pattern = seq(
            [A, B],
            condition=AttributeThresholdCondition("a", "x", "<", 5),
            window=10,
        )
        snapshot = StatisticsSnapshot({"A": 10.0, "B": 1.0}, {("a", "a"): 0.1})
        assert order_step_cost(snapshot, pattern, [], "a") == pytest.approx(1.0)


class TestTreePlan:
    def test_left_deep_structure(self):
        plan = TreeBasedPlan.left_deep(camera_pattern())
        assert plan.variables_in_plan_order() == ("a", "b", "c")
        assert len(plan.internal_nodes_bottom_up()) == 2
        assert plan.root.height() == 2

    def test_right_deep_structure(self):
        plan = TreeBasedPlan.right_deep(camera_pattern())
        root = plan.root
        assert isinstance(root.left, TreeLeaf)
        assert isinstance(root.right, TreeInternalNode)

    def test_custom_order(self):
        plan = TreeBasedPlan.left_deep(camera_pattern(), order=["c", "b", "a"])
        assert plan.variables_in_plan_order() == ("c", "b", "a")

    def test_leaves(self):
        plan = TreeBasedPlan.left_deep(camera_pattern())
        assert [leaf.variable for leaf in plan.leaves()] == ["a", "b", "c"]

    def test_must_cover_all_positive_variables(self):
        pattern = camera_pattern()
        incomplete = TreeInternalNode(TreeLeaf("a", "A"), TreeLeaf("b", "B"))
        with pytest.raises(PlanError):
            TreeBasedPlan(pattern, incomplete)

    def test_overlapping_children_rejected(self):
        with pytest.raises(PlanError):
            TreeInternalNode(TreeLeaf("a", "A"), TreeLeaf("a", "A"))

    def test_structural_equality(self):
        pattern = camera_pattern()
        assert TreeBasedPlan.left_deep(pattern) == TreeBasedPlan.left_deep(pattern)
        assert TreeBasedPlan.left_deep(pattern) != TreeBasedPlan.right_deep(pattern)

    def test_block_labels_bottom_up(self):
        plan = TreeBasedPlan.left_deep(camera_pattern())
        labels = plan.block_labels()
        assert len(labels) == 2
        assert "a" in labels[0]

    def test_tree_cost_follows_zstream_recursion(self):
        pattern = camera_pattern()
        snapshot = camera_snapshot()
        plan = TreeBasedPlan.left_deep(pattern)  # ((a, b), c)
        card_ab = 100.0 * 15.0 * 0.3
        cost_ab = 100.0 + 15.0 + card_ab
        card_abc = card_ab * 10.0 * 0.2
        expected = cost_ab + 10.0 + card_abc
        assert plan.cost(snapshot) == pytest.approx(expected)
        assert tree_plan_cost(snapshot, pattern, plan.root) == pytest.approx(expected)

    def test_cheaper_tree_identified(self):
        pattern = camera_pattern()
        snapshot = camera_snapshot()
        left_deep = TreeBasedPlan.left_deep(pattern)
        right_deep = TreeBasedPlan.right_deep(pattern)
        # Joining the two rare types (B, C) first is cheaper than joining
        # the frequent A with B first.
        assert right_deep.cost(snapshot) < left_deep.cost(snapshot)

    def test_iter_nodes(self):
        plan = TreeBasedPlan.left_deep(camera_pattern())
        nodes = list(plan.iter_nodes())
        assert len(nodes) == 5  # 3 leaves + 2 internal

"""Tests for the lazy NFA engine (order-based plans)."""

from __future__ import annotations

import pytest

from repro.conditions import AndCondition, AttributeThresholdCondition, EqualityCondition
from repro.engine import LazyNFAEngine
from repro.errors import EngineError
from repro.events import Event, EventType
from repro.patterns import Pattern, PatternItem, PatternOperator, conjunction, seq
from repro.plans import OrderBasedPlan, TreeBasedPlan
from repro.statistics import StatisticsCollector

from tests.conftest import brute_force_sequence_matches, make_camera_stream

A, B, C = EventType("A"), EventType("B"), EventType("C")


def camera_pattern(window=10.0):
    condition = AndCondition(
        [EqualityCondition("a", "b", "person_id"), EqualityCondition("b", "c", "person_id")]
    )
    return seq([A, B, C], condition=condition, window=window)


def run_engine(engine, events):
    matches = []
    for event in events:
        matches.extend(engine.process(event))
    return matches


def ev(event_type, t, **payload):
    return Event(event_type, t, payload)


class TestBasicMatching:
    def test_simple_sequence_match(self):
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(camera_pattern()))
        events = [ev(A, 1, person_id=1), ev(B, 2, person_id=1), ev(C, 3, person_id=1)]
        matches = run_engine(engine, events)
        assert len(matches) == 1
        assert matches[0]["a"].timestamp == 1

    def test_condition_filters_matches(self):
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(camera_pattern()))
        events = [ev(A, 1, person_id=1), ev(B, 2, person_id=2), ev(C, 3, person_id=1)]
        assert run_engine(engine, events) == []

    def test_temporal_order_enforced(self):
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(camera_pattern()))
        events = [ev(B, 1, person_id=1), ev(A, 2, person_id=1), ev(C, 3, person_id=1)]
        assert run_engine(engine, events) == []

    def test_window_enforced(self):
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(camera_pattern(window=5)))
        events = [ev(A, 1, person_id=1), ev(B, 2, person_id=1), ev(C, 20, person_id=1)]
        assert run_engine(engine, events) == []

    def test_reordered_plan_finds_same_matches(self):
        pattern = camera_pattern()
        events = [ev(A, 1, person_id=1), ev(B, 2, person_id=1), ev(C, 3, person_id=1)]
        for order in [("a", "b", "c"), ("c", "b", "a"), ("b", "a", "c")]:
            engine = LazyNFAEngine(OrderBasedPlan(pattern, order))
            assert len(run_engine(engine, list(events))) == 1, order

    def test_multiple_matches_per_event(self):
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(camera_pattern()))
        events = [
            ev(A, 1, person_id=1),
            ev(A, 2, person_id=1),
            ev(B, 3, person_id=1),
            ev(C, 4, person_id=1),
        ]
        assert len(run_engine(engine, events)) == 2

    def test_conjunction_ignores_temporal_order(self):
        pattern = conjunction(
            [A, B, C],
            condition=AndCondition(
                [EqualityCondition("a", "b", "person_id"), EqualityCondition("b", "c", "person_id")]
            ),
            window=10,
        )
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern))
        events = [ev(C, 1, person_id=1), ev(A, 2, person_id=1), ev(B, 3, person_id=1)]
        assert len(run_engine(engine, events)) == 1

    def test_local_condition_filters_events(self):
        pattern = seq(
            [A, B],
            condition=AttributeThresholdCondition("a", "speed", "<", 50),
            window=10,
        )
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern))
        events = [ev(A, 1, speed=80), ev(B, 2), ev(A, 3, speed=30), ev(B, 4)]
        assert len(run_engine(engine, events)) == 1

    def test_requires_order_plan(self):
        with pytest.raises(EngineError):
            LazyNFAEngine(TreeBasedPlan.left_deep(camera_pattern()))


class TestAgainstBruteForce:
    @pytest.mark.parametrize("order", [("a", "b", "c"), ("c", "b", "a"), ("b", "c", "a")])
    def test_random_stream_matches_brute_force(self, order):
        pattern = camera_pattern()
        stream = make_camera_stream(count=250, seed=3)
        expected = brute_force_sequence_matches(
            stream, ["A", "B", "C"], window=10.0, key="person_id"
        )
        engine = LazyNFAEngine(OrderBasedPlan(pattern, order))
        assert len(run_engine(engine, stream)) == expected

    def test_small_window_matches_brute_force(self):
        pattern = camera_pattern(window=1.0)
        stream = make_camera_stream(count=250, seed=5)
        expected = brute_force_sequence_matches(
            stream, ["A", "B", "C"], window=1.0, key="person_id"
        )
        engine = LazyNFAEngine(OrderBasedPlan(pattern, ("c", "b", "a")))
        assert len(run_engine(engine, stream)) == expected


class TestPartialMatchAccounting:
    def test_rare_initiator_creates_fewer_partial_matches(self):
        pattern = camera_pattern()
        stream = make_camera_stream(count=400, seed=7)  # A is the frequent type
        ascending = LazyNFAEngine(OrderBasedPlan(pattern, ("c", "b", "a")))
        descending = LazyNFAEngine(OrderBasedPlan(pattern, ("a", "b", "c")))
        run_engine(ascending, stream)
        run_engine(descending, stream)
        assert (
            ascending.counters.partial_matches_created
            < descending.counters.partial_matches_created
        )

    def test_expiry_prunes_buffers_and_matches(self):
        pattern = camera_pattern(window=2.0)
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern))
        engine.process(ev(A, 1, person_id=1))
        assert engine.partial_match_count() == 1
        engine.process(ev(A, 100, person_id=1))
        engine.expire(100.0)
        assert engine.partial_match_count() == 1  # only the fresh one
        assert engine.buffered_event_count() == 1

    def test_counters_track_events(self):
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(camera_pattern()))
        run_engine(engine, make_camera_stream(count=50))
        assert engine.counters.events_processed == 50
        assert engine.counters.extension_attempts > 0

    def test_collector_receives_condition_feedback(self):
        collector = StatisticsCollector(window=50.0)
        pattern = camera_pattern()
        collector.register_pattern(pattern)
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern), collector)
        run_engine(engine, make_camera_stream(count=200, seed=1))
        snapshot = collector.snapshot()
        # The equi-join on 5 person ids succeeds ~20% of the time.
        assert 0.05 < snapshot.selectivity("a", "b") < 0.5


class TestNegation:
    def negation_pattern(self):
        """SEQ(A, ~B, C): no B with the same person id between A and C."""
        items = [
            PatternItem("a", A),
            PatternItem("n", B, negated=True),
            PatternItem("c", C),
        ]
        condition = AndCondition(
            [EqualityCondition("a", "c", "person_id"), EqualityCondition("a", "n", "person_id")]
        )
        return Pattern(PatternOperator.SEQUENCE, items, condition=condition, window=10)

    def _engine(self):
        pattern = self.negation_pattern()
        return LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern))

    def test_match_when_no_negated_event(self):
        engine = self._engine()
        events = [ev(A, 1, person_id=1), ev(C, 3, person_id=1)]
        assert len(run_engine(engine, events)) == 1

    def test_suppressed_when_negated_event_between(self):
        engine = self._engine()
        events = [ev(A, 1, person_id=1), ev(B, 2, person_id=1), ev(C, 3, person_id=1)]
        assert run_engine(engine, events) == []
        assert engine.counters.matches_suppressed_by_negation == 1

    def test_not_suppressed_by_unrelated_negated_event(self):
        engine = self._engine()
        events = [ev(A, 1, person_id=1), ev(B, 2, person_id=99), ev(C, 3, person_id=1)]
        assert len(run_engine(engine, events)) == 1

    def test_not_suppressed_when_negated_event_outside_positions(self):
        engine = self._engine()
        events = [ev(B, 0.5, person_id=1), ev(A, 1, person_id=1), ev(C, 3, person_id=1)]
        assert len(run_engine(engine, events)) == 1


class TestKleene:
    def kleene_pattern(self):
        """SEQ(A, B*, C): one or more B events between A and C."""
        items = [
            PatternItem("a", A),
            PatternItem("k", B, kleene=True),
            PatternItem("c", C),
        ]
        condition = AndCondition(
            [EqualityCondition("a", "k", "person_id"), EqualityCondition("a", "c", "person_id")]
        )
        return Pattern(PatternOperator.SEQUENCE, items, condition=condition, window=10)

    def test_kleene_collects_all_matching_events(self):
        pattern = self.kleene_pattern()
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern))
        events = [
            ev(A, 1, person_id=1),
            ev(B, 2, person_id=1),
            ev(B, 3, person_id=1),
            ev(C, 4, person_id=1),
        ]
        matches = run_engine(engine, events)
        assert len(matches) == 1
        assert len(matches[0]["k"]) == 2

    def test_kleene_requires_at_least_one_event(self):
        pattern = self.kleene_pattern()
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern))
        events = [ev(A, 1, person_id=1), ev(C, 4, person_id=1)]
        assert run_engine(engine, events) == []

    def test_kleene_respects_person_condition(self):
        pattern = self.kleene_pattern()
        engine = LazyNFAEngine(OrderBasedPlan.in_pattern_order(pattern))
        events = [
            ev(A, 1, person_id=1),
            ev(B, 2, person_id=1),
            ev(B, 3, person_id=2),  # other person: excluded from the closure
            ev(C, 4, person_id=1),
        ]
        matches = run_engine(engine, events)
        assert len(matches) == 1
        assert len(matches[0]["k"]) == 1

    def test_kleene_events_sorted_by_time(self):
        pattern = self.kleene_pattern()
        engine = LazyNFAEngine(OrderBasedPlan(pattern, ("c", "k", "a")))
        events = [
            ev(A, 1, person_id=1),
            ev(B, 3, person_id=1),
            ev(B, 2, person_id=1),
            ev(C, 4, person_id=1),
        ]
        matches = run_engine(engine, events)
        assert len(matches) == 1
        timestamps = [event.timestamp for event in matches[0]["k"]]
        assert timestamps == sorted(timestamps)

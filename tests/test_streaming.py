"""Tests for the streaming I/O and service runtime (repro.streaming)."""

from __future__ import annotations

import json

import pytest

from repro.engine import AdaptiveCEPEngine, restore_engine, snapshot_engine
from repro.errors import (
    CheckpointError,
    ParallelExecutionError,
    StreamingError,
)
from repro.events import Event, EventType
from repro.optimizer import GreedyOrderPlanner
from repro.adaptive import InvariantBasedPolicy
from repro.parallel import (
    BroadcastPartitioner,
    KeyPartitioner,
    ParallelCEPEngine,
    StreamingMatchDeduplicator,
    match_signature,
)
from repro.streaming import (
    Backpressure,
    BoundedBuffer,
    CallbackSource,
    Checkpoint,
    CheckpointStore,
    CollectorSink,
    CSVFileSource,
    DropNewest,
    DropOldest,
    IterableSource,
    JSONLFileSource,
    JSONLMatchWriter,
    MetricsSink,
    NO_EVENT,
    RateLimiter,
    ReplaySource,
    StreamingPipeline,
    overflow_policy_by_name,
    write_events_csv,
    write_events_jsonl,
)
from repro.streaming.sinks import match_record

from tests.conftest import make_camera_stream


def _fresh_engine(pattern):
    return AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())


def _signatures(matches):
    return [match_signature(match) for match in matches]


# ----------------------------------------------------------------------
# Rate limiting
# ----------------------------------------------------------------------
class FakeClock:
    """Deterministic clock + sleep pair for rate-limit tests."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        assert seconds >= 0
        self.sleeps.append(seconds)
        self.now += seconds


class TestRateLimiter:
    def test_paces_to_target_rate(self):
        fake = FakeClock()
        limiter = RateLimiter(10.0, clock=fake.clock, sleep=fake.sleep)
        for _ in range(5):
            limiter.wait()
        # First event is immediate; each subsequent one is 0.1s later.
        assert fake.sleeps == pytest.approx([0.1, 0.1, 0.1, 0.1])
        assert fake.now == pytest.approx(0.4)

    def test_slow_consumer_is_not_penalised(self):
        fake = FakeClock()
        limiter = RateLimiter(10.0, clock=fake.clock, sleep=fake.sleep)
        limiter.wait()
        fake.now += 1.0  # consumer was busy for 10 event periods
        limiter.wait()  # already overdue: no sleep
        assert fake.sleeps == []

    def test_rejects_non_positive_rate(self):
        with pytest.raises(StreamingError):
            RateLimiter(0.0)


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class TestSources:
    def _events(self, count=6):
        kind = EventType("A")
        return [Event(kind, float(index)) for index in range(count)]

    def test_iterable_source_yields_in_order(self):
        events = self._events()
        source = IterableSource(events)
        assert list(source) == events
        assert source.events_emitted == len(events)

    def test_source_is_single_pass(self):
        source = IterableSource(self._events())
        list(source)
        with pytest.raises(Exception, match="single-pass"):
            list(source)

    def test_skip_fast_forwards(self):
        events = self._events()
        source = IterableSource(events)
        source.skip(4)
        assert list(source) == events[4:]
        assert source.events_emitted == 2

    def test_skip_after_iteration_starts_rejected(self):
        source = IterableSource(self._events())
        next(iter(source))
        with pytest.raises(StreamingError):
            source.skip(1)

    def test_callback_source_ends_on_none(self):
        events = self._events(3)
        queue = list(events)
        source = CallbackSource(lambda: queue.pop(0) if queue else None)
        assert list(source) == events

    def test_callback_source_no_event_is_not_eof(self):
        # NO_EVENT means "nothing available yet" — the source polls on,
        # unlike None which terminates the stream.
        events = self._events(2)
        replies = [events[0], NO_EVENT, NO_EVENT, events[1], None]
        source = CallbackSource(lambda: replies.pop(0))
        assert list(source) == events

    def test_callback_source_on_idle_runs_after_no_event(self):
        events = self._events(1)
        replies = [NO_EVENT, NO_EVENT, events[0], None]
        idles = []
        source = CallbackSource(
            lambda: replies.pop(0), on_idle=lambda: idles.append(len(idles))
        )
        assert list(source) == events
        assert idles == [0, 1]  # once per NO_EVENT

    def test_callback_source_on_idle_false_ends_the_stream(self):
        source = CallbackSource(lambda: NO_EVENT, on_idle=lambda: False)
        assert list(source) == []

    def test_callback_source_rejects_non_callable_on_idle(self):
        with pytest.raises(StreamingError):
            CallbackSource(lambda: None, on_idle=42)

    def test_replay_source_throttles(self):
        import time

        events = self._events(40)
        started = time.monotonic()
        replayed = list(ReplaySource(events, rate=2000.0))
        elapsed = time.monotonic() - started
        assert replayed == events
        # 40 events at 2000/s: the last is scheduled 39/2000 ≈ 19.5ms in.
        assert elapsed >= 0.019

    def test_replay_source_unthrottled_by_default(self):
        events = self._events()
        assert list(ReplaySource(events)) == events


class TestFileSources:
    def _types(self):
        return {"A": EventType("A"), "B": EventType("B")}

    def _events(self):
        types = self._types()
        return [
            Event(types["A"], 0.5, {"price": 10.0, "entity_id": 1}),
            Event(types["B"], 1.25, {"price": 11.5, "entity_id": 2}),
            Event(types["A"], 2.0, {"price": 9.75, "entity_id": 1}),
        ]

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = self._events()
        assert write_events_jsonl(events, path) == 3
        loaded = list(JSONLFileSource(path, self._types()))
        assert [(e.type_name, e.timestamp, e.payload) for e in loaded] == [
            (e.type_name, e.timestamp, e.payload) for e in events
        ]

    def test_file_reads_are_deterministic(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        write_events_jsonl(self._events(), path)
        first = list(JSONLFileSource(path, self._types()))
        second = list(JSONLFileSource(path, self._types()))
        # Sequence numbers come from the record index, so replays are
        # byte-identical — the property checkpoint/resume relies on.
        assert first == second
        assert [e.sequence_number for e in first] == [0, 1, 2]

    def test_csv_round_trip_coerces_numbers(self, tmp_path):
        path = str(tmp_path / "events.csv")
        events = self._events()
        assert write_events_csv(events, path) == 3
        loaded = list(CSVFileSource(path, self._types()))
        assert [(e.type_name, e.timestamp, e.payload) for e in loaded] == [
            (e.type_name, e.timestamp, e.payload) for e in events
        ]
        assert isinstance(loaded[0].payload["entity_id"], int)
        assert isinstance(loaded[0].payload["price"], float)

    def test_csv_quoted_newlines_survive(self, tmp_path):
        path = str(tmp_path / "multiline.csv")
        kind = EventType("A")
        events = [Event(kind, 1.0, {"note": "first\n\nsecond", "price": 2.5})]
        write_events_csv(events, path)
        loaded = list(CSVFileSource(path, {"A": kind}))
        assert len(loaded) == 1
        assert loaded[0].payload["note"] == "first\n\nsecond"
        assert loaded[0].payload["price"] == 2.5

    def test_csv_skips_blank_lines_between_records(self, tmp_path):
        path = str(tmp_path / "gappy.csv")
        with open(path, "w") as handle:
            handle.write("type,timestamp,price\n\nA,1.0,2.5\n\nA,2.0,3.5\n")
        loaded = list(CSVFileSource(path, {"A": EventType("A")}))
        assert [e.timestamp for e in loaded] == [1.0, 2.0]
        assert [e.sequence_number for e in loaded] == [0, 1]

    def test_invalid_json_names_the_line(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"type": "A", "timestamp": 1.0}\nnot json\n')
        with pytest.raises(StreamingError, match=":2"):
            list(JSONLFileSource(path, self._types()))

    def test_unknown_event_type_rejected(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w") as handle:
            handle.write('{"type": "Z", "timestamp": 1.0}\n')
        with pytest.raises(StreamingError, match="unknown event type"):
            list(JSONLFileSource(path, self._types()))

    def test_follow_picks_up_appended_lines(self, tmp_path):
        path = str(tmp_path / "tail.jsonl")
        write_events_jsonl(self._events(), path)
        appended = {"done": False}

        source = JSONLFileSource(path, self._types(), follow=True)

        def fake_sleep(_seconds):
            # First EOF poll: the "writer" appends one more event, which the
            # next readline must pick up; afterwards end the tail.
            if not appended["done"]:
                with open(path, "a") as handle:
                    handle.write('{"type": "B", "timestamp": 9.0}\n')
                appended["done"] = True
            else:
                source.stop_following()

        source._sleep = fake_sleep
        loaded = list(source)
        assert len(loaded) == 4
        assert loaded[-1].timestamp == 9.0

    def test_skip_seeks_past_checkpointed_prefix(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        write_events_jsonl(self._events(), path)
        source = JSONLFileSource(path, self._types())
        source.skip(2)
        loaded = list(source)
        assert len(loaded) == 1
        assert loaded[0].sequence_number == 2


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
def _some_matches(count=3):
    stream = make_camera_stream(count=400, seed=3)
    from repro.patterns import seq
    from repro.conditions import AndCondition, EqualityCondition

    pattern = seq(
        [EventType("A"), EventType("B"), EventType("C")],
        condition=AndCondition(
            [
                EqualityCondition("a", "b", "person_id"),
                EqualityCondition("b", "c", "person_id"),
            ]
        ),
        window=10.0,
    )
    matches = _fresh_engine(pattern).run(stream).matches
    assert len(matches) >= count, "fixture stream must produce enough matches"
    return matches[:count]


class TestSinks:
    def test_collector_truncates_on_restore(self):
        matches = _some_matches(3)
        sink = CollectorSink()
        sink.emit(matches[0])
        sink.emit(matches[1])
        state = sink.state()
        sink.emit(matches[2])
        sink.restore(state)
        assert sink.matches == matches[:2]

    def test_collector_rejects_impossible_rollback(self):
        sink = CollectorSink()
        with pytest.raises(CheckpointError):
            sink.restore(5)

    def test_jsonl_writer_round_trip_and_rollback(self, tmp_path):
        path = str(tmp_path / "matches.jsonl")
        matches = _some_matches(3)
        sink = JSONLMatchWriter(path)
        sink.open()
        sink.emit(matches[0])
        sink.emit(matches[1])
        state = sink.state()
        sink.emit(matches[2])
        sink.close()
        assert len(open(path).read().splitlines()) == 3

        # Roll back to the two-match checkpoint, then append a new match —
        # exactly the resume sequence of the pipeline.
        resumed = JSONLMatchWriter(path)
        resumed.restore(state)
        resumed.open()
        resumed.emit(matches[2])
        resumed.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0]) == match_record(matches[0])
        assert json.loads(lines[2]) == match_record(matches[2])

    def test_jsonl_writer_requires_open(self, tmp_path):
        sink = JSONLMatchWriter(str(tmp_path / "m.jsonl"))
        with pytest.raises(StreamingError):
            sink.emit(_some_matches(1)[0])

    def test_jsonl_writer_state_after_close_keeps_offset(self, tmp_path):
        # A checkpoint cut after close() must record the real file offset:
        # {"offset": 0} here would make a later restore truncate everything.
        path = str(tmp_path / "matches.jsonl")
        matches = _some_matches(2)
        sink = JSONLMatchWriter(path)
        sink.open()
        for match in matches:
            sink.emit(match)
        open_state = sink.state()
        sink.close()
        closed_state = sink.state()
        assert closed_state == open_state
        assert closed_state["offset"] > 0 and closed_state["matches"] == 2

        resumed = JSONLMatchWriter(path)
        resumed.restore(closed_state)
        assert len(open(path).read().splitlines()) == 2  # nothing truncated
        assert resumed.matches_written == 2

    def test_jsonl_writer_rollback_to_zero_empties_a_populated_file(self, tmp_path):
        # offset 0 is a legitimate checkpoint (cut before any match): the
        # rollback withdraws every line, it is not a malformed state.
        path = str(tmp_path / "matches.jsonl")
        sink = JSONLMatchWriter(path)
        sink.open()
        state = sink.state()
        for match in _some_matches(2):
            sink.emit(match)
        sink.close()
        assert open(path).read().splitlines()
        resumed = JSONLMatchWriter(path)
        resumed.restore(state)
        assert open(path).read() == ""
        assert resumed.matches_written == 0

    def test_jsonl_writer_restore_rejects_malformed_state(self, tmp_path):
        sink = JSONLMatchWriter(str(tmp_path / "m.jsonl"))
        with pytest.raises(CheckpointError, match="jsonl-writer sink"):
            sink.restore({"offset": 10})  # missing "matches"
        with pytest.raises(CheckpointError, match="jsonl-writer sink"):
            sink.restore({"offset": "ten", "matches": 1})
        with pytest.raises(CheckpointError, match="jsonl-writer sink"):
            sink.restore([10, 1])
        sink.restore(None)  # empty state = fresh start, not an error

    def test_collector_restore_rejects_malformed_state(self):
        sink = CollectorSink()
        with pytest.raises(CheckpointError, match="collector sink"):
            sink.restore("many")
        with pytest.raises(CheckpointError, match="collector sink"):
            sink.restore({"count": 2})

    def test_metrics_sink_restore_rejects_malformed_state(self):
        sink = MetricsSink()
        with pytest.raises(CheckpointError, match="metrics sink"):
            sink.restore({"total": 1})  # missing per_pattern
        with pytest.raises(CheckpointError, match="metrics sink"):
            sink.restore({"total": "lots", "per_pattern": {}, "last_detection_time": None})
        with pytest.raises(CheckpointError, match="metrics sink"):
            sink.restore(7)
        sink.restore(None)

    def test_metrics_sink_counts(self):
        matches = _some_matches(2)
        sink = MetricsSink()
        for match in matches:
            sink.emit(match)
        assert sink.total == 2
        assert sum(sink.per_pattern.values()) == 2
        state = sink.state()
        sink.emit(matches[0])
        sink.restore(state)
        assert sink.total == 2


# ----------------------------------------------------------------------
# Buffering and overflow policies
# ----------------------------------------------------------------------
class TestBoundedBuffer:
    def _event(self, t=0.0):
        return Event(EventType("A"), t)

    def test_backpressure_refuses_when_full(self):
        buffer = BoundedBuffer(2, Backpressure())
        assert buffer.offer(self._event(0))
        assert buffer.offer(self._event(1))
        assert not buffer.offer(self._event(2))
        assert buffer.depth == 2
        assert buffer.events_shed == 0

    def test_drop_newest_sheds_incoming(self):
        buffer = BoundedBuffer(2, DropNewest())
        first, second, third = (self._event(t) for t in (0, 1, 2))
        assert buffer.offer(first) and buffer.offer(second)
        assert buffer.offer(third)  # consumed (shed), not buffered
        assert buffer.snapshot_events() == [first, second]
        assert buffer.events_shed == 1

    def test_drop_oldest_evicts(self):
        buffer = BoundedBuffer(2, DropOldest())
        first, second, third = (self._event(t) for t in (0, 1, 2))
        buffer.offer(first)
        buffer.offer(second)
        assert buffer.offer(third)
        assert buffer.snapshot_events() == [second, third]
        assert buffer.events_shed == 1

    def test_high_water_mark(self):
        buffer = BoundedBuffer(4)
        for t in range(3):
            buffer.offer(self._event(t))
        buffer.pop()
        assert buffer.high_water == 3

    def test_policy_factory(self):
        assert isinstance(overflow_policy_by_name("drop-oldest"), DropOldest)
        with pytest.raises(StreamingError):
            overflow_policy_by_name("bogus")

    def test_rejects_bad_capacity(self):
        with pytest.raises(StreamingError):
            BoundedBuffer(0)


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def _checkpoint(self, events=100):
        engine = _fresh_engine(_camera_pattern())
        return Checkpoint(
            events_processed=events,
            matches_emitted=1,
            engine_blob=snapshot_engine(engine),
            sink_states=[None],
            pattern_name=engine.pattern.name,
        )

    def test_save_load_latest(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        assert store.latest() is None
        store.save(self._checkpoint(100))
        store.save(self._checkpoint(200))
        latest = store.latest()
        assert latest.events_processed == 200
        assert isinstance(restore_engine(latest.engine_blob), AdaptiveCEPEngine)

    def test_prunes_to_keep(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"), keep=2)
        for events in (1, 2, 3, 4):
            store.save(self._checkpoint(events))
        assert store.stats()["checkpoints"] == 2
        assert store.latest().events_processed == 4

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.save(self._checkpoint(100))
        path = store.save(self._checkpoint(200))
        with open(path, "wb") as handle:
            handle.write(b"torn write")
        assert store.latest().events_processed == 100

    def test_clear(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.save(self._checkpoint())
        assert store.clear() == 1
        assert store.latest() is None


# ----------------------------------------------------------------------
# Engine snapshot/restore
# ----------------------------------------------------------------------
def _camera_pattern():
    from repro.patterns import seq
    from repro.conditions import AndCondition, EqualityCondition

    return seq(
        [EventType("A"), EventType("B"), EventType("C")],
        condition=AndCondition(
            [
                EqualityCondition("a", "b", "person_id"),
                EqualityCondition("b", "c", "person_id"),
            ]
        ),
        window=10.0,
    )


class TestEngineSnapshot:
    def test_mid_stream_snapshot_resumes_identically(self):
        pattern = _camera_pattern()
        events = make_camera_stream(count=400, seed=7).to_list()
        expected = _signatures(_fresh_engine(pattern).run(events).matches)

        engine = _fresh_engine(pattern)
        collected = []
        half = len(events) // 2
        for event in events[:half]:
            collected.extend(engine.process(event))
        resumed = AdaptiveCEPEngine.restore_state(engine.snapshot_state())
        for event in events[half:]:
            collected.extend(resumed.process(event))
        assert _signatures(collected) == expected

    def test_restore_rejects_garbage(self):
        with pytest.raises(CheckpointError):
            restore_engine(b"not a snapshot")

    def test_restore_rejects_wrong_type(self):
        engine = _fresh_engine(_camera_pattern())
        blob = engine.snapshot_state()
        with pytest.raises(ParallelExecutionError):
            ParallelCEPEngine.restore_state(blob)

    def test_snapshot_requires_an_engine(self):
        with pytest.raises(CheckpointError):
            snapshot_engine(object())


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
class TestPipeline:
    def test_matches_batch_engine_exactly(self):
        pattern = _camera_pattern()
        events = make_camera_stream(count=400, seed=5).to_list()
        expected = _signatures(_fresh_engine(pattern).run(events).matches)

        collector = CollectorSink()
        pipeline = StreamingPipeline(
            _fresh_engine(pattern), ReplaySource(events), sinks=[collector]
        )
        result = pipeline.run()
        assert _signatures(collector.matches) == expected
        assert result.events_processed == len(events)
        assert result.matches_emitted == len(expected)
        assert result.stop_reason == "source-exhausted"

    def test_rate_controlled_source_matches_batch_on_keyed_workload(self):
        pattern, stream = _keyed_workload()
        events = stream.to_list()
        expected = [
            json.dumps(match_record(match))
            for match in _fresh_engine(pattern).run(events).matches
        ]
        assert expected

        collector = CollectorSink()
        pipeline = StreamingPipeline(
            _fresh_engine(pattern),
            ReplaySource(events, rate=100_000.0),
            sinks=[collector],
        )
        pipeline.run()
        served = [json.dumps(match_record(match)) for match in collector.matches]
        assert served == expected  # byte-identical to the batch engine

    def test_max_events_bounds_the_run(self):
        events = make_camera_stream(count=100).to_list()
        pipeline = StreamingPipeline(_fresh_engine(_camera_pattern()), events)
        result = pipeline.run(max_events=40)
        assert result.events_processed == 40
        assert result.stop_reason == "max-events"

    def test_stop_is_graceful(self):
        events = make_camera_stream(count=300, seed=5).to_list()
        pipeline = StreamingPipeline(
            _fresh_engine(_camera_pattern()),
            events,
            fill_chunk=16,
            buffer_capacity=16,
        )

        class StopOnFirstMatch(CollectorSink):
            def emit(self, match):
                super().emit(match)
                pipeline.stop()

        sink = StopOnFirstMatch()
        pipeline._sinks.append(sink)
        result = pipeline.run()
        assert result.stop_reason == "stopped"
        assert result.events_processed < len(events)
        assert len(sink.matches) >= 1

    def test_stop_interrupts_the_fill_phase(self):
        events = make_camera_stream(count=200).to_list()
        queue = list(events)
        state = {}

        def poll():
            if len(queue) <= len(events) - 6:
                state["pipeline"].stop()
            return queue.pop(0) if queue else None

        pipeline = StreamingPipeline(
            _fresh_engine(_camera_pattern()), CallbackSource(poll)
        )
        state["pipeline"] = pipeline
        result = pipeline.run()
        assert result.stop_reason == "stopped"
        # The fill loop must break as soon as stop() is called instead of
        # pulling a full fill chunk (256) through the source.
        assert pipeline.source.events_emitted <= 8

    def test_submit_and_drain_with_shedding(self):
        pattern = _camera_pattern()
        events = make_camera_stream(count=50).to_list()
        pipeline = StreamingPipeline(
            _fresh_engine(pattern),
            [],
            buffer_capacity=8,
            overflow_policy=DropNewest(),
        )
        accepted = sum(1 for event in events if pipeline.submit(event))
        assert accepted == len(events)  # drop policy always consumes
        pipeline.drain()
        assert pipeline.metrics.events_processed == 8
        assert pipeline.metrics.events_shed == len(events) - 8

    def test_submit_backpressure_refuses(self):
        events = make_camera_stream(count=10).to_list()
        pipeline = StreamingPipeline(
            _fresh_engine(_camera_pattern()), [], buffer_capacity=4
        )
        results = [pipeline.submit(event) for event in events]
        assert results.count(True) == 4
        assert results.count(False) == 6

    def test_checkpoint_kill_resume_is_exactly_once(self, tmp_path):
        pattern = _camera_pattern()
        events = make_camera_stream(count=400, seed=11).to_list()
        expected = [
            json.dumps(match_record(match))
            for match in _fresh_engine(pattern).run(events).matches
        ]
        assert expected, "fixture must produce matches"

        matches_path = str(tmp_path / "matches.jsonl")
        store = CheckpointStore(str(tmp_path / "ckpt"))

        def build():
            return StreamingPipeline(
                _fresh_engine(pattern),
                ReplaySource(events),
                sinks=[JSONLMatchWriter(matches_path)],
                checkpoint_store=store,
                checkpoint_every=75,
            )

        # Kill mid-stream: no final checkpoint, sink retains post-checkpoint
        # matches that the resumed run will re-derive.
        first = build().run(max_events=260, final_checkpoint=False)
        assert first.metrics.checkpoints_written == 3  # at 75/150/225

        second = build().run()
        assert second.resumed_from == 225
        served = [line for line in open(matches_path).read().splitlines() if line]
        assert served == expected  # nothing lost, nothing duplicated

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        events = make_camera_stream(count=120).to_list()
        store = CheckpointStore(str(tmp_path / "ckpt"))
        StreamingPipeline(
            _fresh_engine(_camera_pattern()),
            ReplaySource(events),
            checkpoint_store=store,
            checkpoint_every=50,
        ).run()

        # A pipeline over a differently-named pattern must refuse the store.
        from repro.patterns import seq

        other = seq(
            [EventType("A"), EventType("B")],
            window=10.0,
            name="other-pattern",
        )
        with pytest.raises(CheckpointError, match="pattern"):
            StreamingPipeline(
                _fresh_engine(other),
                ReplaySource(events),
                checkpoint_store=store,
            ).run()

    def test_checkpoint_every_requires_store(self):
        with pytest.raises(StreamingError):
            StreamingPipeline(
                _fresh_engine(_camera_pattern()), [], checkpoint_every=10
            )


# ----------------------------------------------------------------------
# Parallel streaming ingestion
# ----------------------------------------------------------------------
def _keyed_workload():
    from repro.datasets import StockDatasetSimulator
    from repro.workloads import WorkloadGenerator

    dataset = StockDatasetSimulator(duration_hint=60.0)
    workload = WorkloadGenerator(dataset, seed=1)
    return workload.keyed_workload(3, duration=60.0, entities=4, max_events=2500)


class TestParallelStreaming:
    def test_key_partitioned_streaming_matches_sequential(self):
        pattern, stream = _keyed_workload()
        events = stream.to_list()
        expected = sorted(_signatures(_fresh_engine(pattern).run(events).matches))
        assert expected, "keyed workload must produce matches"

        engine = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=2,
            partitioner=KeyPartitioner("entity_id"),
        )
        collected = []
        for event in events:
            collected.extend(engine.process(event))
        assert sorted(_signatures(collected)) == expected

    def test_broadcast_streaming_deduplicates(self):
        pattern = _camera_pattern()
        events = make_camera_stream(count=300, seed=5).to_list()
        expected = sorted(_signatures(_fresh_engine(pattern).run(events).matches))
        assert expected

        engine = ParallelCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            shards=2,
            partitioner=BroadcastPartitioner(),
        )
        collected = []
        for event in events:
            collected.extend(engine.process(event))
        assert sorted(_signatures(collected)) == expected
        assert engine._streaming_dedup.duplicates_dropped >= len(expected)

    def test_streaming_then_batch_run_rejected(self):
        pattern, stream = _keyed_workload()
        engine = ParallelCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), shards=2,
            partitioner=KeyPartitioner("entity_id"),
        )
        engine.process(stream.to_list()[0])
        with pytest.raises(ParallelExecutionError):
            engine.run(stream)

    def test_batch_then_streaming_rejected(self):
        pattern, stream = _keyed_workload()
        engine = ParallelCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), shards=2,
            partitioner=KeyPartitioner("entity_id"),
        )
        engine.run(stream)
        with pytest.raises(ParallelExecutionError):
            engine.process(stream.to_list()[0])

    def test_sharded_checkpoint_kill_resume(self, tmp_path):
        pattern, stream = _keyed_workload()
        events = stream.to_list()
        expected = [
            json.dumps(match_record(match))
            for match in _fresh_engine(pattern).run(events).matches
        ]
        assert expected

        matches_path = str(tmp_path / "matches.jsonl")
        store = CheckpointStore(str(tmp_path / "ckpt"))

        def build():
            engine = ParallelCEPEngine(
                pattern,
                GreedyOrderPlanner(),
                InvariantBasedPolicy(),
                shards=2,
                partitioner=KeyPartitioner("entity_id"),
            )
            return StreamingPipeline(
                engine,
                ReplaySource(events),
                sinks=[JSONLMatchWriter(matches_path)],
                checkpoint_store=store,
                checkpoint_every=500,
            )

        build().run(max_events=len(events) // 2, final_checkpoint=False)
        second = build().run()
        assert second.resumed_from > 0
        served = [line for line in open(matches_path).read().splitlines() if line]
        assert served == expected

    def test_dedup_window_eviction_bounds_memory(self):
        dedup = StreamingMatchDeduplicator(window=10.0)
        matches = _some_matches(2)
        admitted = dedup.filter(matches, now=matches[-1].detection_time)
        assert admitted == matches
        # Far in the future, the signatures have been evicted; re-reporting
        # is impossible in practice (events expired), so re-admission of the
        # same signature is acceptable — the memory stays bounded.
        dedup.filter([], now=matches[-1].detection_time + 100.0)
        assert len(dedup._seen) == 0


# ----------------------------------------------------------------------
# The rate-sweep experiment driver
# ----------------------------------------------------------------------
class TestRateSweep:
    def test_rows_have_constant_matches(self):
        from repro.experiments import ExperimentConfig, rate_sweep_rows

        config = ExperimentConfig(
            dataset="stocks",
            algorithm="greedy",
            duration=25.0,
            max_events=1200,
            monitoring_interval=2.0,
        )
        rows = rate_sweep_rows(config, rates=(0.0, 50000.0), size=3)
        assert len(rows) == 2
        assert rows[0]["matches"] == rows[1]["matches"]
        assert rows[0]["throughput"] > 0
        assert {"engine_ms_mean", "engine_ms_max", "queue_high_water"} <= set(rows[0])

"""Unit tests for the pattern specification layer."""

from __future__ import annotations

import pytest

from repro.conditions import EqualityCondition
from repro.errors import PatternError
from repro.events import EventType
from repro.patterns import (
    CompositePattern,
    Pattern,
    PatternBuilder,
    PatternItem,
    PatternOperator,
    conjunction,
    disjunction,
    seq,
)
from repro.patterns.pattern import validate_pattern_types


A, B, C, D = EventType("A"), EventType("B"), EventType("C"), EventType("D")


class TestPatternOperator:
    def test_top_level_operators(self):
        assert PatternOperator.SEQUENCE.is_top_level
        assert PatternOperator.CONJUNCTION.is_top_level
        assert PatternOperator.DISJUNCTION.is_top_level
        assert not PatternOperator.NEGATION.is_top_level

    def test_modifiers(self):
        assert PatternOperator.NEGATION.is_modifier
        assert PatternOperator.KLEENE_CLOSURE.is_modifier
        assert not PatternOperator.SEQUENCE.is_modifier

    def test_str(self):
        assert str(PatternOperator.SEQUENCE) == "SEQ"


class TestPatternItem:
    def test_basic(self):
        item = PatternItem("a", A)
        assert item.type_name == "A"
        assert not item.negated and not item.kleene

    def test_negated_and_kleene_mutually_exclusive(self):
        with pytest.raises(PatternError):
            PatternItem("a", A, negated=True, kleene=True)

    def test_empty_variable_rejected(self):
        with pytest.raises(PatternError):
            PatternItem("", A)

    def test_repr_shows_modifiers(self):
        assert "~" in repr(PatternItem("a", A, negated=True))
        assert "*" in repr(PatternItem("a", A, kleene=True))


class TestPattern:
    def test_seq_helper(self):
        pattern = seq([A, B, C], window=10)
        assert pattern.operator is PatternOperator.SEQUENCE
        assert pattern.size == 3
        assert pattern.variables == ("a", "b", "c")
        assert pattern.window == 10

    def test_conjunction_helper(self):
        pattern = conjunction([A, B], window=5)
        assert pattern.operator is PatternOperator.CONJUNCTION
        assert pattern.is_conjunction()

    def test_duplicate_variables_rejected(self):
        with pytest.raises(PatternError):
            Pattern(
                PatternOperator.SEQUENCE,
                [PatternItem("a", A), PatternItem("a", B)],
            )

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern(PatternOperator.SEQUENCE, [])

    def test_all_negated_rejected(self):
        with pytest.raises(PatternError):
            Pattern(PatternOperator.SEQUENCE, [PatternItem("a", A, negated=True)])

    def test_nonpositive_window_rejected(self):
        with pytest.raises(PatternError):
            seq([A, B], window=0)

    def test_disjunction_root_rejected_for_pattern(self):
        with pytest.raises(PatternError):
            Pattern(PatternOperator.DISJUNCTION, [PatternItem("a", A)])

    def test_condition_referencing_unknown_variable_rejected(self):
        with pytest.raises(PatternError):
            seq([A, B], condition=EqualityCondition("a", "z", "pid"))

    def test_size_excludes_negated_items(self):
        pattern = Pattern(
            PatternOperator.SEQUENCE,
            [PatternItem("a", A), PatternItem("n", B, negated=True), PatternItem("c", C)],
        )
        assert pattern.size == 2
        assert len(pattern.negated_items) == 1
        assert [item.variable for item in pattern.positive_items] == ["a", "c"]

    def test_size_includes_kleene_items(self):
        pattern = Pattern(
            PatternOperator.SEQUENCE,
            [PatternItem("a", A), PatternItem("k", B, kleene=True)],
        )
        assert pattern.size == 2
        assert len(pattern.kleene_items) == 1

    def test_item_lookup(self):
        pattern = seq([A, B])
        assert pattern.item_by_variable("a").event_type == A
        with pytest.raises(PatternError):
            pattern.item_by_variable("zzz")

    def test_items_by_type(self):
        pattern = seq([A, B])
        assert len(pattern.items_by_type("A")) == 1
        assert pattern.items_by_type("Z") == []

    def test_positive_index(self):
        pattern = Pattern(
            PatternOperator.SEQUENCE,
            [PatternItem("a", A), PatternItem("n", B, negated=True), PatternItem("c", C)],
        )
        assert pattern.positive_index("a") == 0
        assert pattern.positive_index("c") == 1
        with pytest.raises(PatternError):
            pattern.positive_index("n")

    def test_distinct_type_names(self):
        pattern = Pattern(
            PatternOperator.SEQUENCE,
            [PatternItem("a1", A), PatternItem("a2", A), PatternItem("b", B)],
        )
        assert pattern.distinct_type_names() == ("A", "B")

    def test_default_name(self):
        assert seq([A, B]).name == "SEQ(A,B)"

    def test_custom_name(self):
        assert seq([A, B], name="my-pattern").name == "my-pattern"

    def test_subpatterns_of_plain_pattern(self):
        pattern = seq([A, B])
        assert pattern.subpatterns() == (pattern,)

    def test_default_window_is_infinite(self):
        assert seq([A, B]).window == float("inf")

    def test_validate_pattern_types(self):
        pattern = seq([A, B])
        validate_pattern_types(pattern, [A, B, C])
        with pytest.raises(PatternError):
            validate_pattern_types(pattern, [A, C])


class TestPatternBuilder:
    def test_full_build(self):
        pattern = (
            PatternBuilder.sequence()
            .event(A, "a")
            .event(B, "b")
            .negated_event(C, "n")
            .kleene_event(D, "k")
            .where(EqualityCondition("a", "b", "pid"))
            .within(60)
            .named("built")
            .build()
        )
        assert pattern.name == "built"
        assert pattern.window == 60
        assert len(pattern.items) == 4
        assert len(pattern.negated_items) == 1
        assert len(pattern.kleene_items) == 1
        assert len(pattern.conditions) == 1

    def test_default_variable_names(self):
        pattern = PatternBuilder.sequence().event(A).event(B).build()
        assert pattern.variables == ("a", "b")

    def test_default_variable_names_deduplicated(self):
        pattern = PatternBuilder.sequence().event(A).event(A).build()
        assert len(set(pattern.variables)) == 2

    def test_conjunction_builder(self):
        pattern = PatternBuilder.conjunction().event(A).event(B).build()
        assert pattern.is_conjunction()

    def test_invalid_window(self):
        with pytest.raises(PatternError):
            PatternBuilder.sequence().within(-1)

    def test_disjunction_root_not_allowed(self):
        with pytest.raises(PatternError):
            PatternBuilder(PatternOperator.DISJUNCTION)


class TestCompositePattern:
    def test_disjunction_helper(self):
        composite = disjunction([seq([A, B], window=5), seq([C, D], window=8)])
        assert composite.operator is PatternOperator.DISJUNCTION
        assert len(composite.subpatterns()) == 2
        assert composite.window == 8

    def test_requires_two_subpatterns(self):
        with pytest.raises(PatternError):
            CompositePattern([seq([A, B])])

    def test_size_is_max_subpattern_size(self):
        composite = disjunction([seq([A, B]), seq([A, B, C])])
        assert composite.size == 3

    def test_event_types_deduplicated(self):
        composite = disjunction([seq([A, B]), seq([B, C])])
        names = [t.name for t in composite.event_types()]
        assert names == ["A", "B", "C"]

    def test_seq_variables_override(self):
        pattern = seq([A, B], variables=["x", "y"])
        assert pattern.variables == ("x", "y")

    def test_seq_variables_length_mismatch(self):
        with pytest.raises(PatternError):
            seq([A, B], variables=["x"])

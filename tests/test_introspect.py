"""Tests for engine introspection: operator-level profiling and the
cost-model drift monitor.

The contract under test has three legs:

* **equivalence** — an engine built with ``introspect=True`` detects
  exactly the same matches as a plain one (the wrapper only observes),
  and an engine built without a profiler evaluates the *original*
  condition objects (zero overhead when off, not a cheap branch);
* **profiling** — condition counters/timings, operator accept/reject
  edges and partial-match population gauges populate and merge across
  shards;
* **drift** — a seeded ground-truth selectivity shift produces a drift
  signal before the re-plan, the ``replan`` decision record carries the
  old/new predicted cost, the trigger distance and the motivating drift
  rows, and the ``/engine`` endpoint and metrics registry export it all.
"""

from __future__ import annotations

import json
import pickle
import urllib.error
import urllib.request

import pytest

from repro.adaptive import InvariantBasedPolicy
from repro.conditions import AttributeThresholdCondition, EqualityCondition
from repro.engine import AdaptiveCEPEngine
from repro.events import Event, EventType
from repro.obs import ControlPlane, DecisionLog, MetricsRegistry
from repro.obs.introspect import (
    ConditionProfile,
    DriftMonitor,
    EngineProfiler,
    ProfiledCondition,
    merge_introspection_frames,
    merge_profile_frames,
)
from repro.optimizer import GreedyOrderPlanner, ZStreamTreePlanner
from repro.statistics import StatisticsSnapshot
from repro.statistics.provider import GroundTruthStatisticsProvider
from repro.statistics.timevarying import ConstantValue, StepValue
from repro.streaming import CheckpointStore, CollectorSink, ReplaySource, StreamingPipeline

from tests.conftest import make_camera_stream


def _engine(pattern, planner=None, introspect=False, **kwargs):
    return AdaptiveCEPEngine(
        pattern,
        planner or GreedyOrderPlanner(),
        InvariantBasedPolicy(distance=0.1),
        monitoring_interval=2.0,
        introspect=introspect,
        **kwargs,
    )


class TestProfiledCondition:
    def test_counts_calls_passes_and_time(self):
        inner = AttributeThresholdCondition("a", "x", ">", 5.0)
        profile = ConditionProfile(repr(inner), inner.variables)
        wrapped = ProfiledCondition(inner, profile)
        a = EventType("A")
        assert wrapped.evaluate({"a": Event(a, 0.0, {"x": 9.0})})
        assert not wrapped.evaluate({"a": Event(a, 1.0, {"x": 1.0})})
        assert (profile.calls, profile.passes) == (2, 1)
        assert profile.seconds >= 0.0
        assert profile.pass_rate == 0.5

    def test_transparent_to_planner_and_indexing(self):
        inner = EqualityCondition("a", "b", "person_id")
        wrapped = ProfiledCondition(inner, ConditionProfile(repr(inner), inner.variables))
        assert wrapped.variables == inner.variables
        # flatten() keeps the wrapper atomic so ConditionSet re-indexes it
        # under the same variable key as the condition it wraps.
        assert wrapped.flatten() == (wrapped,)
        assert repr(inner) in repr(wrapped)

    def test_profiler_shares_profiles_across_plan_generations(self, camera_pattern):
        profiler = EngineProfiler()
        first = profiler.instrument_conditions(camera_pattern.conditions)
        second = profiler.instrument_conditions(camera_pattern.conditions)
        firsts = {c.profile.label: c.profile for c in first.conjuncts}
        for conjunct in second.conjuncts:
            assert conjunct.profile is firsts[conjunct.profile.label]


class TestEngineEquivalence:
    @pytest.mark.parametrize("planner_cls", [GreedyOrderPlanner, ZStreamTreePlanner])
    def test_instrumented_matches_equal_plain(self, camera_pattern, planner_cls):
        events = make_camera_stream(count=400).to_list()
        plain = _engine(camera_pattern, planner_cls()).run(events)
        profiled_engine = _engine(camera_pattern, planner_cls(), introspect=True)
        profiled = profiled_engine.run(events)
        assert profiled.match_count == plain.match_count
        profiler = profiled_engine.profiler
        assert profiler.conditions, "condition profiles must populate"
        assert all(p.calls > 0 for p in profiler.conditions.values())
        assert profiler.partial_matches_high_water > 0

    def test_nfa_and_tree_report_their_operator_edges(self, camera_pattern):
        events = make_camera_stream(count=300).to_list()
        nfa = _engine(camera_pattern, GreedyOrderPlanner(), introspect=True)
        nfa.run(events)
        assert any(label.startswith("extend[") for label in nfa.profiler.edges)
        assert any(label.startswith("buffer[") for label in nfa.profiler.edges)
        tree = _engine(camera_pattern, ZStreamTreePlanner(), introspect=True)
        tree.run(events)
        assert any(label.startswith("leaf[") for label in tree.profiler.edges)
        assert any(label.startswith("join[") for label in tree.profiler.edges)

    def test_disabled_engine_evaluates_original_conditions(self, camera_pattern):
        engine = _engine(camera_pattern)
        assert engine.profiler is None and engine.drift_monitor is None
        # Zero overhead when off: the active engine holds the pattern's own
        # ConditionSet (identity, no wrappers), not a parallel copy.
        assert engine.migration_manager.active_engine._conditions is (
            camera_pattern.conditions
        )

    def test_introspection_state_survives_pickling(self, camera_pattern):
        engine = _engine(camera_pattern, introspect=True)
        engine.run(make_camera_stream(count=200).to_list())
        restored = AdaptiveCEPEngine.restore_state(engine.snapshot_state())
        assert restored.profiler.conditions.keys() == engine.profiler.conditions.keys()
        calls = lambda profiler: sum(p.calls for p in profiler.conditions.values())
        assert calls(restored.profiler) == calls(engine.profiler)
        assert restored.drift_monitor.predicted_cost == pytest.approx(
            engine.drift_monitor.predicted_cost
        )

    def test_sharded_engine_forwards_introspect_to_replicas(self, camera_pattern):
        from repro.parallel import ParallelCEPEngine

        engine = ParallelCEPEngine(
            camera_pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(distance=0.1),
            shards=2,
            introspect=True,
        )
        replicas = [shard.engine for shard in engine.sharded_engine.shards]
        assert all(replica.profiler is not None for replica in replicas)
        assert all(replica.drift_monitor is not None for replica in replicas)
        # Each replica profiles independently (no shared mutable state
        # across shard boundaries — replicas must stay picklable).
        assert replicas[0].profiler is not replicas[1].profiler
        plain = ParallelCEPEngine(
            camera_pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(distance=0.1),
            shards=2,
        )
        for shard in plain.sharded_engine.shards:
            assert shard.engine.profiler is None

    def test_top_conditions_ranked_by_time(self):
        profiler = EngineProfiler()
        for label, seconds in (("cheap", 0.1), ("hot", 5.0), ("warm", 1.0)):
            profile = profiler.conditions[label] = ConditionProfile(label)
            profile.seconds = seconds
        assert [p.label for p in profiler.top_conditions(2)] == ["hot", "warm"]
        assert profiler.total_condition_seconds() == pytest.approx(6.1)


class TestFrameMerging:
    def _frame(self, calls, accepted, high_water):
        profiler = EngineProfiler()
        profile = profiler.conditions["c"] = ConditionProfile("c")
        profile.calls, profile.passes, profile.seconds = calls, calls // 2, 0.5
        for _ in range(accepted):
            profiler.record_edge("extend[a]", True)
        profiler.observe_population(high_water)
        return profiler.frame()

    def test_profile_frames_sum_counters_and_max_high_water(self):
        merged = merge_profile_frames([self._frame(10, 3, 5), self._frame(6, 2, 9)])
        assert merged["conditions"]["c"]["calls"] == 16
        assert merged["conditions"]["c"]["pass_rate"] == pytest.approx(8 / 16)
        assert merged["edges"]["extend[a]"]["accepted"] == 5
        assert merged["partial_matches_high_water"] == 9

    def test_introspection_frames_keep_worst_drift_row_per_pair(self):
        def frame(live, ratio):
            return {
                "pattern": "p",
                "counters": {"events_processed": 10},
                "partial_matches": {"live": live, "high_water": live},
                "drift": {
                    "predicted_cost": 3.0,
                    "pairs": [
                        {"pair": "a~b", "predicted": 0.3, "observed": 0.3 * ratio,
                         "ratio": ratio, "drift": max(ratio, 1 / ratio)},
                    ],
                },
            }

        merged = merge_introspection_frames([frame(4, 1.1), frame(7, 3.0)])
        assert merged["shards"] == 2
        assert merged["counters"]["events_processed"] == 20
        assert merged["partial_matches"]["live"] == 11
        assert merged["partial_matches"]["high_water"] == 7
        assert merged["drift"]["pairs"][0]["ratio"] == 3.0
        assert merged["drift"]["max_drift"] == 3.0


def _shifting_provider(shift_time=30.0):
    """Ground truth with one regime shift at ``shift_time``.

    The selectivity steps produce the drift signal; the C-rate step breaks
    the greedy plan's first ordering invariant (``rate(C) <= rate(B)``), so
    the same shift that drifts the cost model also triggers the re-plan.
    """
    return GroundTruthStatisticsProvider(
        rate_models={
            "A": ConstantValue(100.0),
            "B": ConstantValue(15.0),
            "C": StepValue(10.0, [(shift_time, 200.0)]),
        },
        selectivity_models={
            ("a", "b"): StepValue(0.3, [(shift_time, 0.05)]),
            ("b", "c"): StepValue(0.2, [(shift_time, 0.9)]),
        },
    )


class TestDriftMonitor:
    def test_ratio_and_magnitude(self):
        assert DriftMonitor._ratio(0.2, 0.9) == pytest.approx(4.5)
        assert DriftMonitor._ratio(0.0, 0.5) == float("inf")
        assert DriftMonitor._ratio(0.0, 0.0) == 1.0
        assert DriftMonitor.drift_magnitude(4.0) == 4.0
        assert DriftMonitor.drift_magnitude(0.25) == 4.0
        assert DriftMonitor.drift_magnitude(0.0) == float("inf")

    def test_empty_monitor_reports_no_drift(self):
        monitor = DriftMonitor()
        assert monitor.max_drift() == 1.0
        assert monitor.drift_ratios() == []
        assert monitor.summary()["plans_recorded"] == 0

    def test_seeded_shift_produces_drift_signal_before_replan(self, camera_pattern):
        """The ground-truth shift shows up in the monitor as soon as a
        post-shift snapshot is observed — before any plan replacement."""
        provider = _shifting_provider(shift_time=30.0)
        monitor = DriftMonitor()
        result = GreedyOrderPlanner().generate(camera_pattern, provider.snapshot(0.0))
        monitor.record_plan(result, camera_pattern)
        assert monitor.predicted_cost == pytest.approx(result.plan.cost(result.snapshot))

        monitor.observe(provider.snapshot(10.0))  # pre-shift: on model
        assert monitor.max_drift() == pytest.approx(1.0)

        monitor.observe(provider.snapshot(40.0))  # post-shift, same plan
        rows = monitor.drift_ratios()
        by_pair = {row["pair"]: row for row in rows}
        assert by_pair["b~c"]["ratio"] == pytest.approx(0.9 / 0.2)
        assert by_pair["a~b"]["ratio"] == pytest.approx(0.05 / 0.3)
        # Worst drift first: a~b moved by 6x, b~c by 4.5x.
        assert rows[0]["pair"] == "a~b"
        assert monitor.max_drift() == pytest.approx(6.0)

    def test_replan_record_carries_costs_distance_and_drift(self, camera_pattern):
        """End-to-end: the shift drives an actual re-plan whose record
        carries the old/new predicted cost, the trigger distance, and the
        drift rows that motivated it (measured against the *old* plan)."""
        engine = _engine(
            camera_pattern,
            introspect=True,
            statistics_provider=_shifting_provider(shift_time=30.0),
            initial_snapshot=_shifting_provider().snapshot(0.0),
        )
        engine.run(make_camera_stream(count=600).to_list())
        assert engine.reoptimization_count() >= 1
        record = engine.controller.statistics.replacements[-1]
        assert record.previous_cost > 0 and record.new_cost > 0
        assert record.new_cost < record.previous_cost
        assert record.trigger_distance is not None
        assert record.drift, "replan record must carry the motivating drift rows"
        worst = record.drift[0]
        assert worst["drift"] > 1.5
        assert worst["pair"] in ("a~b", "b~c")
        # After the replacement the monitor describes the *new* plan.
        assert engine.drift_monitor.plans_recorded >= 2
        assert engine.drift_monitor.plan_description == record.plan_description


class TestPipelineIntrospection:
    def _run_pipeline(self, pattern, tmp_path, introspect=True):
        log = DecisionLog()
        pipeline = StreamingPipeline(
            _engine(
                pattern,
                introspect=introspect,
                statistics_provider=_shifting_provider(shift_time=30.0),
                initial_snapshot=_shifting_provider().snapshot(0.0),
            ),
            ReplaySource(make_camera_stream(count=600).to_list()),
            sinks=[CollectorSink()],
            checkpoint_store=CheckpointStore(str(tmp_path / "ckpt")),
            checkpoint_every=150,
            decision_log=log,
        )
        result = pipeline.run()
        return pipeline, result, log

    def test_partial_match_high_water_sampled_and_reported(
        self, camera_pattern, tmp_path
    ):
        _, result, _ = self._run_pipeline(camera_pattern, tmp_path)
        assert result.metrics.partial_matches_high_water > 0
        row = result.metrics.as_row()
        assert row["partial_matches_high_water"] == float(
            result.metrics.partial_matches_high_water
        )

    def test_replan_decision_record_has_drift_context(self, camera_pattern, tmp_path):
        _, _, log = self._run_pipeline(camera_pattern, tmp_path)
        replans = log.query(type="replan")
        assert replans, "the seeded shift must produce a replan record"
        detail = replans[-1].detail
        assert detail["previous_cost"] > detail["new_cost"] > 0
        assert detail["trigger_distance"] is not None
        assert detail["drift"][0]["drift"] > 1.5
        # The record round-trips through JSON (the decision log's format).
        json.dumps(detail)

    def test_engine_endpoint_and_metrics_export(self, camera_pattern, tmp_path):
        pipeline, _, _ = self._run_pipeline(camera_pattern, tmp_path)
        frame = pipeline.engine_introspection()
        assert frame["plan"] and frame["profile"]["conditions"]
        assert frame["partial_matches"]["high_water"] > 0
        assert frame["drift"]["plans_recorded"] >= 1

        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.register_engine_introspection(pipeline.engine_introspection)
        body, _ = registry.render()
        assert "repro_partial_matches_live" in body
        assert "repro_condition_evaluations_total" in body
        assert "repro_condition_seconds_total" in body
        assert "repro_plan_predicted_cost" in body
        assert "repro_cost_model_drift_ratio" in body

        with ControlPlane(pipeline=pipeline) as control:
            with urllib.request.urlopen(f"{control.url}/engine", timeout=5) as response:
                assert response.status == 200
                payload = json.loads(response.read().decode("utf-8"))
        assert payload["plan"] == frame["plan"]
        assert payload["profile"]["conditions"]
        assert payload["drift"]["pairs"]

    def test_engine_endpoint_degrades_without_introspection_surface(self):
        with ControlPlane(pipeline=object()) as control:
            try:
                with urllib.request.urlopen(f"{control.url}/engine", timeout=5) as r:
                    status = r.status
            except urllib.error.HTTPError as error:
                status = error.code
            assert status == 501

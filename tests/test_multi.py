"""Tests for shared one-pass multi-pattern serving (the ``repro.multi`` stack).

Covers the pattern registry, the constructor deprecation shim, the common
evaluator protocol, match provenance, the cost-model sharing decision
(including evidence-driven plan reordering) and the headline guarantee:
N patterns served by one shared pipeline produce per-pattern match sets
byte-identical to N isolated pipelines — across compile modes and across
a kill/resume cycle.
"""

from __future__ import annotations

import json

import pytest

from repro.adaptive import InvariantBasedPolicy
from repro.engine import AdaptiveCEPEngine, MultiPatternEngine
from repro.engine.protocol import CEPEngine
from repro.errors import EngineError, PatternError
from repro.events import EventType
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_dataset, build_workload
from repro.multi import (
    PatternSet,
    PrefixShareManager,
    SharedStatisticsHub,
    SuffixNFAEngine,
    as_pattern_set,
)
from repro.optimizer import GreedyOrderPlanner
from repro.parallel import ParallelCEPEngine
from repro.patterns import CompositePattern, PatternItem, Pattern, seq
from repro.patterns.operators import PatternOperator
from repro.plans import OrderBasedPlan
from repro.statistics import StatisticsSnapshot
from repro.streaming.sinks import match_record

A, B, C, D = EventType("A"), EventType("B"), EventType("C"), EventType("D")


def _family(count=4, size=4, duration=30.0, max_events=1500):
    """A small stocks workload family with a shared prefix, plus its stream."""
    config = ExperimentConfig(
        dataset="stocks", duration=duration, max_events=max_events
    )
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    patterns = workload.similar_sequence_patterns(count, size=size)
    events = dataset.generate(
        duration=config.duration,
        seed=config.stream_seed,
        max_events=config.max_events,
    ).to_list()
    return patterns, events


def _per_pattern_records(patterns, matches):
    per_pattern = {p.name: [] for p in patterns}
    for match in matches:
        per_pattern[match.pattern_name].append(json.dumps(match_record(match)))
    return {name: sorted(records) for name, records in per_pattern.items()}


def _isolated_records(patterns, events, compile_mode="interpreted"):
    records = {}
    for pattern in patterns:
        engine = AdaptiveCEPEngine(
            pattern,
            GreedyOrderPlanner(),
            InvariantBasedPolicy(),
            monitoring_interval=1.0,
            compile_mode=compile_mode,
        )
        records[pattern.name] = sorted(
            json.dumps(match_record(m)) for m in engine.process_batch(events)
        )
    return records


def _shared_engine(patterns, compile_mode="interpreted"):
    return MultiPatternEngine(
        PatternSet(patterns),
        GreedyOrderPlanner(),
        policy_factory=InvariantBasedPolicy,
        monitoring_interval=1.0,
        compile_mode=compile_mode,
    )


class TestPatternSet:
    def test_registry_round_trip(self):
        p1 = seq([A, B], window=5.0, name="p1")
        p2 = seq([C, D], window=5.0, name="p2")
        registry = PatternSet([p1])
        assert registry.add(p2) == "p2"
        assert registry.get("p2") is p2
        assert registry.ids() == ("p1", "p2")
        assert registry.id_for("p1") == "p1"
        assert len(registry) == 2 and "p1" in registry
        assert registry.remove("p1") is p1
        # Removing one pattern never renames another: ids are stable.
        assert registry.ids() == ("p2",)

    def test_explicit_ids_and_uniqueness(self):
        p1 = seq([A, B], window=5.0, name="p1")
        registry = PatternSet()
        assert registry.add(p1, pattern_id="deploy-7") == "deploy-7"
        assert registry.id_for("p1") == "deploy-7"
        with pytest.raises(PatternError):
            registry.add(seq([C, D], window=5.0, name="p1"))
        with pytest.raises(PatternError):
            registry.add(seq([C, D], window=5.0, name="other"), pattern_id="deploy-7")
        with pytest.raises(PatternError):
            registry.add("not a pattern")

    def test_composite_compatible_surface(self):
        p1 = seq([A, B], window=5.0, name="p1")
        p2 = seq([C, D], window=9.0, name="p2")
        registry = PatternSet([p1, p2], name="deploys")
        assert registry.operator is PatternOperator.DISJUNCTION
        assert registry.name == "deploys"
        assert registry.window == 9.0
        assert registry.subpatterns() == (p1, p2)
        assert {t.name for t in registry.event_types()} == {"A", "B", "C", "D"}

    def test_as_pattern_set_coercions(self):
        p1 = seq([A, B], window=5.0, name="p1")
        p2 = seq([C, D], window=5.0, name="p2")
        registry = PatternSet([p1, p2])
        assert as_pattern_set(registry) is registry
        assert as_pattern_set([p1, p2]).ids() == ("p1", "p2")
        composite = CompositePattern([p1, p2], name="legacy")
        coerced = as_pattern_set(composite)
        assert coerced.name == "legacy" and coerced.subpatterns() == (p1, p2)
        with pytest.raises(PatternError):
            as_pattern_set(p1)


class TestConstructorShim:
    def test_plain_list_constructor(self):
        p1 = seq([A, B], window=5.0, name="p1")
        p2 = seq([C, D], window=5.0, name="p2")
        engine = MultiPatternEngine(
            [p1, p2], GreedyOrderPlanner(), InvariantBasedPolicy
        )
        assert engine.pattern_set.ids() == ("p1", "p2")

    def test_composite_pattern_deprecated_but_working(self):
        p1 = seq([A, B], window=5.0, name="p1")
        p2 = seq([C, D], window=5.0, name="p2")
        with pytest.warns(DeprecationWarning):
            engine = MultiPatternEngine(
                CompositePattern([p1, p2]), GreedyOrderPlanner(), InvariantBasedPolicy
            )
        assert engine.pattern_set.ids() == ("p1", "p2")

    def test_bare_pattern_keeps_historical_engine_error(self):
        with pytest.raises(EngineError):
            MultiPatternEngine(
                seq([A, B], window=5.0), GreedyOrderPlanner(), InvariantBasedPolicy
            )
        with pytest.raises(EngineError):
            MultiPatternEngine([], GreedyOrderPlanner(), InvariantBasedPolicy)


class TestEvaluatorProtocol:
    def test_all_three_facades_conform(self):
        pattern = seq([A, B], window=5.0, name="p1")
        single = AdaptiveCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy()
        )
        multi = MultiPatternEngine(
            [pattern, seq([C, D], window=5.0, name="p2")],
            GreedyOrderPlanner(),
            InvariantBasedPolicy,
        )
        parallel = ParallelCEPEngine(
            pattern, GreedyOrderPlanner(), InvariantBasedPolicy(), shards=2
        )
        for engine in (single, multi, parallel):
            assert isinstance(engine, CEPEngine)


class TestProvenance:
    def test_matches_carry_registry_ids(self):
        patterns, events = _family(count=3)
        registry = PatternSet()
        ids = [
            registry.add(pattern, pattern_id=f"deploy-{index}")
            for index, pattern in enumerate(patterns)
        ]
        engine = MultiPatternEngine(
            registry, GreedyOrderPlanner(), InvariantBasedPolicy
        )
        matches = engine.process_batch(events)
        assert matches, "workload family produced no matches to tag"
        assert {m.pattern_id for m in matches} <= set(ids)
        for match in matches:
            assert registry.get(match.pattern_id).name == match.pattern_name


class TestSharingDecision:
    """Unit tests of the cost-model sharing choice on hand-built statistics."""

    def _patterns(self):
        shared = [PatternItem("a", A), PatternItem("b", B)]
        p1 = Pattern(
            PatternOperator.SEQUENCE, shared + [PatternItem("c", C)],
            window=10.0, name="p1",
        )
        p2 = Pattern(
            PatternOperator.SEQUENCE, shared + [PatternItem("c", D)],
            window=10.0, name="p2",
        )
        return p1, p2

    def _manager(self):
        manager = PrefixShareManager(SharedStatisticsHub(window=50.0))
        p1, p2 = self._patterns()
        manager.register(p1)
        manager.register(p2)
        return manager, p1

    class _StubCollector:
        def __init__(self, snapshot):
            self._snapshot = snapshot

        def snapshot(self, now=None):
            return self._snapshot

        def share_selectivity(self, a, b, estimator):
            pass

    def test_reorders_when_saving_beats_penalty(self):
        manager, p1 = self._manager()
        # Solo-optimal order leads with the suffix variable; the rates make
        # the per-member prefix saving (8) larger than the reordering
        # penalty (cost 40 shared vs 34 solo).
        plan = OrderBasedPlan(p1, ("c", "a", "b"))
        snapshot = StatisticsSnapshot({"A": 4.0, "B": 3.0, "C": 2.0, "D": 2.0}, {})
        engine = manager(plan, self._StubCollector(snapshot))
        assert isinstance(engine, SuffixNFAEngine)
        assert engine.plan.order == ("a", "b", "c")
        assert engine.prefix_variables == ("a", "b")

    def test_keeps_planner_order_when_penalty_dominates(self):
        manager, p1 = self._manager()
        plan = OrderBasedPlan(p1, ("c", "a", "b"))
        # A near-silent suffix type makes the solo plan nearly free, so
        # deviating from it costs more than the shared prefix saves.
        snapshot = StatisticsSnapshot({"A": 4.0, "B": 3.0, "C": 0.01, "D": 0.01}, {})
        engine = manager(plan, self._StubCollector(snapshot))
        assert not isinstance(engine, SuffixNFAEngine)

    def test_no_reorder_without_rate_evidence(self):
        manager, p1 = self._manager()
        plan = OrderBasedPlan(p1, ("c", "a", "b"))
        engine = manager(plan, self._StubCollector(StatisticsSnapshot({}, {})))
        assert not isinstance(engine, SuffixNFAEngine)

    def test_wants_resharing_upgrades_then_settles(self):
        manager, p1 = self._manager()
        plan = OrderBasedPlan(p1, ("c", "a", "b"))
        snapshot = StatisticsSnapshot({"A": 4.0, "B": 3.0, "C": 2.0, "D": 2.0}, {})
        collector = self._StubCollector(snapshot)
        standalone = manager(OrderBasedPlan(p1, ("c", "a", "b")), None)
        assert manager.wants_resharing(plan, standalone, collector)
        shared = manager(plan, collector)
        # Already shared at the deepest structural prefix: no oscillation.
        assert not manager.wants_resharing(plan, shared, collector)


class TestSharedVsIsolated:
    @pytest.mark.parametrize("compile_mode", ["interpreted", "compiled", "indexed"])
    def test_byte_identical_per_pattern_matches(self, compile_mode):
        patterns, events = _family(count=4)
        expected = _isolated_records(patterns, events, compile_mode)
        engine = _shared_engine(patterns, compile_mode)
        actual = _per_pattern_records(patterns, engine.process_batch(events))
        assert actual == expected
        assert sum(len(r) for r in expected.values()) > 0
        assert engine.prefix_hits_total() > 0, "prefix sharing never engaged"

    def test_kill_resume_preserves_match_sets(self):
        patterns, events = _family(count=4)
        expected = _isolated_records(patterns, events)
        engine = _shared_engine(patterns)
        half = len(events) // 2
        matches = engine.process_batch(events[:half])
        blob = engine.snapshot_state()
        resumed = MultiPatternEngine.restore_state(blob)
        matches.extend(resumed.process_batch(events[half:]))
        assert _per_pattern_records(patterns, matches) == expected

    def test_compiled_mode_reuses_kernels_across_patterns(self):
        from repro.compile import kernels_reused_total

        patterns, events = _family(count=4)
        before = kernels_reused_total()
        engine = _shared_engine(patterns, "compiled")
        engine.process_batch(events[:200])
        assert kernels_reused_total() > before


class TestRoutingHygiene:
    def test_memberless_groups_leave_the_event_path(self):
        patterns, events = _family(count=3)
        engine = _shared_engine(patterns)
        engine.process_batch(events[:400])
        groups = engine.share_manager.groups()
        assert any(group.member_count > 0 for group in groups)
        # Forcibly retire every member: the next routing rebuild must stop
        # feeding events to the now-memberless groups (until an adaptation
        # step legitimately re-shares a pattern into one, which re-adds it
        # with a fresh member).
        for group in groups:
            group._members.clear()
            group._pending.clear()
        engine._reset_routing()
        engine.process_batch(events[400:600])
        routed = [
            group
            for groups_for_type in engine._group_routes.values()
            for group in groups_for_type
        ]
        assert all(group.member_count > 0 for group in routed)

"""Table 1: quality of the average-relative-difference distance estimate.

For each dataset–algorithm combination and pattern size, the table reports
``davg`` (computed from the deciding conditions of the initial plan, exactly
as Section 3.4 prescribes), the scanned ``dopt`` and the symmetric accuracy
``min(davg/dopt, dopt/davg)``.  The paper's qualitative findings to check:
accuracy is substantially higher on the skewed traffic data than on the
near-uniform stocks data, and tends to grow with the pattern size.
"""

from __future__ import annotations

import pytest

from repro.experiments import distance_estimation_table, format_table
from repro.experiments.method_comparison import RECOMMENDED_DISTANCE

COMBINATIONS = [
    ("traffic", "greedy"),
    ("traffic", "zstream"),
    ("stocks", "greedy"),
    ("stocks", "zstream"),
]


def test_table1_distance_estimates(benchmark, bench_scale, make_config, report_table):
    def build_rows():
        rows = []
        for dataset, algorithm in COMBINATIONS:
            config = make_config(dataset, algorithm, sizes=(4, 5, 6, 7, 8))
            dopt = RECOMMENDED_DISTANCE[(dataset, algorithm)]
            rows.extend(distance_estimation_table(config, dopt=dopt))
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    report_table(
        format_table(
            rows,
            ["dataset", "algorithm", "size", "davg", "dopt", "accuracy"],
            title="Table 1 — quality of distance estimates (davg vs dopt)",
        )
    )

    assert len(rows) == len(COMBINATIONS) * 5
    assert all(row["davg"] >= 0.0 for row in rows)
    assert all(0.0 <= row["accuracy"] <= 1.0 for row in rows)
    # Qualitative shape: stocks davg values are small (near-uniform rates
    # produce small relative differences between deciding-condition sides).
    stocks_davg = [row["davg"] for row in rows if row["dataset"] == "stocks"]
    traffic_davg = [row["davg"] for row in rows if row["dataset"] == "traffic"]
    assert max(stocks_davg) < max(traffic_davg)

"""Ablation: the K-invariant method (Section 3.3).

Sweeps the number of conditions selected per building block (K = 1 is the
basic method; K = 0 selects every deciding condition, the Theorem 2
variant) and reports throughput, the number of monitored invariants, the
number of reoptimizations, and the adaptation overhead.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table, k_invariant_ablation


@pytest.mark.parametrize("dataset,algorithm", [("traffic", "greedy"), ("traffic", "zstream")])
def test_ablation_k_invariant(
    benchmark, bench_scale, make_config, report_table, dataset, algorithm
):
    config = make_config(dataset, algorithm, sizes=(max(bench_scale["sizes"][:3]),))
    rows = benchmark.pedantic(
        k_invariant_ablation,
        args=(config,),
        kwargs={"k_values": (1, 2, 4, 0), "distance": 0.1},
        rounds=1,
        iterations=1,
    )
    report_table(
        format_table(
            rows,
            ["k", "num_invariants", "throughput", "reoptimizations", "overhead"],
            title=f"K-invariant ablation — {dataset}/{algorithm} (K=0 means all conditions)",
        )
    )
    assert len(rows) == 4
    by_k = {row["k"]: row for row in rows}
    # Monitoring more conditions per block can only grow the invariant list.
    assert by_k[0.0]["num_invariants"] >= by_k[1.0]["num_invariants"]
    assert by_k[4.0]["num_invariants"] >= by_k[2.0]["num_invariants"] >= by_k[1.0]["num_invariants"]

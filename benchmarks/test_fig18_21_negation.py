"""Figures 18–21 (Appendix A): negation patterns, all four dataset–algorithm pairs.

Sequence patterns augmented with one negated event.  The paper found that
negation barely changes the relative behaviour of the adaptation methods.
"""

from __future__ import annotations

import pytest

PANELS = [
    ("Figure 18", "traffic", "greedy"),
    ("Figure 19", "traffic", "zstream"),
    ("Figure 20", "stocks", "greedy"),
    ("Figure 21", "stocks", "zstream"),
]


@pytest.mark.parametrize("figure,dataset,algorithm", PANELS)
def test_appendix_negation_patterns(
    benchmark,
    bench_scale,
    make_config,
    method_comparison_panel,
    comparison_sanity,
    figure,
    dataset,
    algorithm,
):
    config = make_config(
        dataset,
        algorithm,
        sizes=bench_scale["sizes"][:2],
        pattern_families=("negation",),
    )
    result = benchmark.pedantic(
        method_comparison_panel, args=(config, figure), rounds=1, iterations=1
    )
    comparison_sanity(result, config.sizes)

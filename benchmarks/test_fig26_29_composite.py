"""Figures 26–29 (Appendix A): composite patterns, all four dataset–algorithm pairs.

Each composite pattern is a disjunction of three independent sequences,
evaluated by one adaptive sub-engine per sequence; the paper found the
results to closely track the plain sequence-pattern figures.
"""

from __future__ import annotations

import pytest

PANELS = [
    ("Figure 26", "traffic", "greedy"),
    ("Figure 27", "traffic", "zstream"),
    ("Figure 28", "stocks", "greedy"),
    ("Figure 29", "stocks", "zstream"),
]


@pytest.mark.parametrize("figure,dataset,algorithm", PANELS)
def test_appendix_composite_patterns(
    benchmark,
    bench_scale,
    make_config,
    method_comparison_panel,
    comparison_sanity,
    figure,
    dataset,
    algorithm,
):
    config = make_config(
        dataset,
        algorithm,
        sizes=bench_scale["sizes"][:2],
        pattern_families=("composite",),
        max_events=min(8000, bench_scale["max_events"]),
    )
    result = benchmark.pedantic(
        method_comparison_panel, args=(config, figure), rounds=1, iterations=1
    )
    comparison_sanity(result, config.sizes)

"""Figure 7: adaptation-method comparison, traffic dataset + ZStream algorithm.

Same four panels as Figure 6 but with the tree-based (ZStream) planner and
its dynamic-programming plan generation; the paper observes even larger
relative gains for the invariant method here because redundant
reoptimizations are more expensive with the costlier planner.
"""

from __future__ import annotations


def test_fig7_traffic_zstream(
    benchmark, bench_scale, make_config, method_comparison_panel, comparison_sanity
):
    config = make_config("traffic", "zstream")
    result = benchmark.pedantic(
        method_comparison_panel, args=(config, "Figure 7"), rounds=1, iterations=1
    )
    comparison_sanity(result, config.sizes)
    assert result.mean_throughput("invariant") > result.mean_throughput("static")

"""Ablation: invariant-selection strategy (Section 3.5).

Compares the paper's tightest-condition heuristic against a
violation-probability-based selection and a random-selection baseline on
one pattern per dataset.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table, selection_strategy_ablation


@pytest.mark.parametrize("dataset", ["traffic", "stocks"])
def test_ablation_selection_strategy(
    benchmark, bench_scale, make_config, report_table, dataset
):
    config = make_config(dataset, "greedy", sizes=(max(bench_scale["sizes"][:3]),))
    rows = benchmark.pedantic(
        selection_strategy_ablation,
        args=(config,),
        kwargs={"distance": 0.1},
        rounds=1,
        iterations=1,
    )
    report_table(
        format_table(
            rows,
            ["strategy", "throughput", "reoptimizations", "overhead"],
            title=f"Invariant selection strategy ablation — {dataset}/greedy",
        )
    )
    assert {row["strategy"] for row in rows} == {
        "tightest",
        "violation-probability",
        "random",
    }
    assert all(row["throughput"] > 0 for row in rows)

"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at reduced
scale (smaller synthetic streams, fewer pattern sizes) so the whole suite
completes in minutes on a laptop.  The printed tables are the reproduction
artefacts; the pytest-benchmark timings additionally record the end-to-end
runtime of each experiment driver.

Scale knobs can be overridden from the command line::

    pytest benchmarks/ --benchmark-only --repro-events 30000 --repro-duration 400
"""

from __future__ import annotations

from typing import List

import pytest

from repro.experiments import ExperimentConfig, compare_methods, format_table
from repro.experiments.method_comparison import DEFAULT_METHODS
from repro.experiments.reporting import pivot

#: Tables produced by the benchmarks during this session; echoed (uncaptured)
#: in the terminal summary so they always end up in redirected output files.
_REPORTED_TABLES: List[str] = []


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTED_TABLES:
        return
    terminalreporter.section("reproduced tables and figures")
    for block in _REPORTED_TABLES:
        terminalreporter.write_line(block)


@pytest.fixture(scope="session")
def report_table():
    """Print a table immediately and echo it in the terminal summary."""

    def _report(text: str) -> None:
        print(text)
        _REPORTED_TABLES.append(text)

    return _report


def pytest_addoption(parser):
    parser.addoption(
        "--repro-events",
        action="store",
        type=int,
        default=12000,
        help="maximum number of events per generated stream",
    )
    parser.addoption(
        "--repro-duration",
        action="store",
        type=float,
        default=200.0,
        help="stream duration (in stream-time units) per run",
    )
    parser.addoption(
        "--repro-sizes",
        action="store",
        type=str,
        default="3,4,5,6",
        help="comma-separated pattern sizes to evaluate",
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    """Scale parameters shared by all benchmarks."""
    sizes = tuple(
        int(part) for part in request.config.getoption("--repro-sizes").split(",") if part
    )
    return {
        "max_events": request.config.getoption("--repro-events"),
        "duration": request.config.getoption("--repro-duration"),
        "sizes": sizes,
    }


@pytest.fixture(scope="session")
def make_config(bench_scale):
    """Factory building an :class:`ExperimentConfig` at benchmark scale."""

    def _make(dataset, algorithm, **overrides):
        parameters = {
            "dataset": dataset,
            "algorithm": algorithm,
            "duration": bench_scale["duration"],
            "max_events": bench_scale["max_events"],
            "sizes": bench_scale["sizes"],
            "monitoring_interval": 1.0,
        }
        parameters.update(overrides)
        return ExperimentConfig(**parameters)

    return _make


@pytest.fixture(scope="session")
def method_comparison_panel(report_table):
    """Run one adaptation-method comparison panel and print its four graphs.

    This regenerates the four sub-figures of one of the paper's comparison
    figures (throughput, relative gain over static, number of
    reoptimizations, computational overhead) as plain-text tables with one
    row per pattern size and one column per adaptation method.
    """

    def _run(config: ExperimentConfig, figure_label: str):
        result = compare_methods(config, DEFAULT_METHODS(config.dataset, config.algorithm))
        panels = [
            ("throughput [events/s]", "throughput"),
            ("relative throughput gain over static", "relative_gain"),
            ("number of plan reoptimizations", "reoptimizations"),
            ("computational overhead fraction", "overhead"),
        ]
        for index, (description, column) in enumerate(panels):
            report_table(
                format_table(
                    pivot(result.rows, index="size", column="method", value=column),
                    title=(
                        f"{figure_label}({chr(ord('a') + index)}) — "
                        f"{config.dataset}/{config.algorithm}: {description}"
                    ),
                )
            )
        return result

    return _run


@pytest.fixture(scope="session")
def comparison_sanity():
    """Shared sanity checks on a comparison result's qualitative shape."""

    def _check(result, sizes):
        methods = {"invariant", "threshold", "unconditional", "static"}
        assert {row["method"] for row in result.rows} == methods
        assert len(result.rows) == len(methods) * len(sizes)
        assert all(row["throughput"] > 0 for row in result.rows)
        # The static baseline never reoptimizes, and the unconditional method
        # reoptimizes at least as often as the invariant-based method.
        assert result.mean_value("static", "reoptimizations") == 0
        assert result.mean_value("invariant", "reoptimizations") <= result.mean_value(
            "unconditional", "reoptimizations"
        ) + 2
        # The invariant method's adaptation overhead stays in the same (small)
        # ballpark as the unconditional method's or below it.  Overhead is a
        # wall-clock ratio, so a generous tolerance absorbs timing noise on
        # short benchmark runs.
        invariant_overhead = result.mean_value("invariant", "overhead")
        unconditional_overhead = result.mean_value("unconditional", "overhead")
        assert invariant_overhead <= max(
            2.0 * unconditional_overhead, unconditional_overhead + 0.05
        )

    return _check

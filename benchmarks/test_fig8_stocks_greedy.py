"""Figure 8: adaptation-method comparison, stocks dataset + greedy algorithm.

On the near-uniform, frequently-but-mildly changing stocks data the paper
observes that the static plan performs reasonably well (decidedly beating
the over-adapting unconditional method), the constant-threshold and
invariant methods are much closer to each other than on the traffic data,
and the invariant method keeps the lowest adaptation overhead.
"""

from __future__ import annotations


def test_fig8_stocks_greedy(
    benchmark, bench_scale, make_config, method_comparison_panel, comparison_sanity
):
    config = make_config("stocks", "greedy")
    result = benchmark.pedantic(
        method_comparison_panel, args=(config, "Figure 8"), rounds=1, iterations=1
    )
    comparison_sanity(result, config.sizes)
    # Static decidedly outperforms the over-adapting unconditional method on
    # this dataset (the paper's headline observation for stocks).
    assert result.mean_throughput("static") > result.mean_throughput("unconditional")
    # The invariant method stays competitive with the best of the other
    # adaptive methods.
    assert result.mean_throughput("invariant") >= 0.8 * result.mean_throughput("threshold")

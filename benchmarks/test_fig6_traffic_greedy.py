"""Figure 6: adaptation-method comparison, traffic dataset + greedy algorithm.

Regenerates the four panels (throughput, relative gain over static,
reoptimization count, computational overhead) for the traffic-like skewed
stream evaluated with the greedy order-based planner.  The qualitative
shape reported in the paper: the invariant-based method achieves the
highest throughput and the largest gain over the static plan, with far
fewer reoptimizations and less overhead than the unconditional method.
"""

from __future__ import annotations


def test_fig6_traffic_greedy(
    benchmark, bench_scale, make_config, method_comparison_panel, comparison_sanity
):
    config = make_config("traffic", "greedy")
    result = benchmark.pedantic(
        method_comparison_panel, args=(config, "Figure 6"), rounds=1, iterations=1
    )
    comparison_sanity(result, config.sizes)
    # On the skewed, shifting traffic data the adaptive invariant method
    # should clearly outperform the never-adapting static plan on average.
    assert result.mean_throughput("invariant") > result.mean_throughput("static")

"""Figures 10–13 (Appendix A): sequence patterns, all four dataset–algorithm pairs.

One panel per dataset–algorithm combination, restricted to the plain
sequence pattern family.  The trends mirror the main Figures 6–9.
"""

from __future__ import annotations

import pytest

PANELS = [
    ("Figure 10", "traffic", "greedy"),
    ("Figure 11", "traffic", "zstream"),
    ("Figure 12", "stocks", "greedy"),
    ("Figure 13", "stocks", "zstream"),
]


@pytest.mark.parametrize("figure,dataset,algorithm", PANELS)
def test_appendix_sequence_patterns(
    benchmark,
    bench_scale,
    make_config,
    method_comparison_panel,
    comparison_sanity,
    figure,
    dataset,
    algorithm,
):
    config = make_config(
        dataset,
        algorithm,
        sizes=bench_scale["sizes"][:2],
        pattern_families=("sequence",),
    )
    result = benchmark.pedantic(
        method_comparison_panel, args=(config, figure), rounds=1, iterations=1
    )
    comparison_sanity(result, config.sizes)

"""Sequential vs sharded throughput on a keyed multi-entity workload.

This benchmark goes beyond the paper: it measures the scale-out headroom
added by the :mod:`repro.parallel` subsystem.  A keyed workload (every
event tagged with an entity identifier, the pattern equi-joined on it) is
run once through the sequential adaptive engine and once per shard count
through the key-partitioned parallel engine.  The throughput comparison is
printed as a table and recorded in the pytest-benchmark ``extra_info``
block, so a ``--benchmark-json`` run preserves it in the JSON output.

Match counts are asserted equal across all execution modes — sharding must
never change *what* is detected, only *how fast*.
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig, format_table, parallel_speedup_rows
from repro.experiments.reporting import pivot

#: Shard counts compared against the sequential baseline (≥ 2 as required).
SHARD_COUNTS = (2, 4)


def test_parallel_speedup(benchmark, bench_scale, make_config, report_table):
    config = make_config(
        "stocks",
        "greedy",
        sizes=tuple(bench_scale["sizes"][:2]),
        executor="serial",
    )

    rows = benchmark.pedantic(
        parallel_speedup_rows,
        args=(config,),
        kwargs={"shard_counts": SHARD_COUNTS, "entities": 8},
        rounds=1,
        iterations=1,
    )

    report_table(
        format_table(
            pivot(rows, index="size", column="mode", value="throughput"),
            title=(
                f"parallel scale-out — {config.dataset}/{config.algorithm}: "
                "sequential vs sharded throughput [events/s]"
            ),
        )
    )
    report_table(
        format_table(
            pivot(rows, index="size", column="mode", value="speedup"),
            title="parallel scale-out — relative throughput vs sequential",
        )
    )

    # Record the comparison into the benchmark JSON output (extra_info is
    # serialized verbatim by pytest-benchmark's --benchmark-json).
    for row in rows:
        key = f"size{row['size']}_{row['mode']}"
        benchmark.extra_info[f"{key}_throughput"] = round(row["throughput"], 1)
        benchmark.extra_info[f"{key}_matches"] = row["matches"]
        benchmark.extra_info[f"{key}_speedup"] = round(row["speedup"], 3)
    benchmark.extra_info["shard_counts"] = list(SHARD_COUNTS)

    # Correctness: every execution mode detects exactly the same matches.
    for size in config.sizes:
        match_counts = {
            row["mode"]: row["matches"] for row in rows if row["size"] == size
        }
        assert len(set(match_counts.values())) == 1, match_counts
    # Liveness: every mode actually processed events.
    assert all(row["throughput"] > 0 for row in rows)

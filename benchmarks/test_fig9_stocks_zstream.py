"""Figure 9: adaptation-method comparison, stocks dataset + ZStream algorithm."""

from __future__ import annotations


def test_fig9_stocks_zstream(
    benchmark, bench_scale, make_config, method_comparison_panel, comparison_sanity
):
    config = make_config("stocks", "zstream")
    result = benchmark.pedantic(
        method_comparison_panel, args=(config, "Figure 9"), rounds=1, iterations=1
    )
    comparison_sanity(result, config.sizes)
    assert result.mean_throughput("static") > result.mean_throughput("unconditional")
    assert result.mean_throughput("invariant") >= 0.8 * result.mean_throughput("threshold")

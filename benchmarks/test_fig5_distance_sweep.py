"""Figure 5: throughput of the invariant-based method vs the distance ``d``.

The paper's Figure 5 shows, for each dataset–algorithm combination, the
throughput of the invariant-based method as a function of the pattern size
with one curve per invariant distance ``d``; an interior optimum ``dopt``
exists for every combination.  This benchmark regenerates the four panels
(at reduced scale) and reports the scanned ``dopt`` per combination.
"""

from __future__ import annotations

import pytest

from repro.experiments import distance_sweep, find_optimal_distance, format_table
from repro.experiments.reporting import pivot

DISTANCES = (0.0, 0.05, 0.1, 0.2, 0.4)

PANELS = [
    ("a", "traffic", "greedy"),
    ("b", "traffic", "zstream"),
    ("c", "stocks", "greedy"),
    ("d", "stocks", "zstream"),
]


@pytest.mark.parametrize("panel,dataset,algorithm", PANELS)
def test_fig5_panel(
    benchmark, bench_scale, make_config, report_table, panel, dataset, algorithm
):
    config = make_config(dataset, algorithm, sizes=bench_scale["sizes"][:3])

    rows = benchmark.pedantic(
        distance_sweep, args=(config, DISTANCES), rounds=1, iterations=1
    )

    dopt, best_throughput = find_optimal_distance(rows)
    report_table(
        format_table(
            pivot(rows, index="size", column="distance", value="throughput"),
            title=(
                f"Figure 5({panel}) — {dataset}/{algorithm}: throughput [events/s] "
                f"per pattern size, one column per distance d"
            ),
        )
        + f"scanned dopt for {dataset}/{algorithm}: d={dopt:g} "
        + f"(mean throughput {best_throughput:,.0f} events/s)\n"
    )

    # Sanity of the regenerated series (not exact paper values): every cell
    # ran, produced positive throughput, and the scanned dopt is on the grid.
    assert len(rows) == len(DISTANCES) * len(config.sizes)
    assert all(row["throughput"] > 0 for row in rows)
    assert dopt in DISTANCES

"""Figures 14–17 (Appendix A): conjunction patterns, all four dataset–algorithm pairs.

Conjunction patterns drop the temporal ordering constraint, so they produce
substantially more intermediate partial matches than sequences of the same
size; the paper observes a correspondingly larger relative gain for the
adaptive methods.  The benchmark uses the smallest pattern sizes to keep
the (inherently heavier) conjunction runs fast.
"""

from __future__ import annotations

import pytest

PANELS = [
    ("Figure 14", "traffic", "greedy"),
    ("Figure 15", "traffic", "zstream"),
    ("Figure 16", "stocks", "greedy"),
    ("Figure 17", "stocks", "zstream"),
]


@pytest.mark.parametrize("figure,dataset,algorithm", PANELS)
def test_appendix_conjunction_patterns(
    benchmark,
    bench_scale,
    make_config,
    method_comparison_panel,
    comparison_sanity,
    figure,
    dataset,
    algorithm,
):
    config = make_config(
        dataset,
        algorithm,
        sizes=(3, 4),
        pattern_families=("conjunction",),
        max_events=min(8000, bench_scale["max_events"]),
    )
    result = benchmark.pedantic(
        method_comparison_panel, args=(config, figure), rounds=1, iterations=1
    )
    comparison_sanity(result, config.sizes)

"""Figures 22–25 (Appendix A): Kleene-closure patterns, all four dataset–algorithm pairs.

Sequence patterns with one event under Kleene closure.  Because the Kleene
operator is expensive regardless of its position in the plan, the paper
found the overall impact of the adaptation methods to be smaller here —
but the invariant method remained the best adaptive method.
"""

from __future__ import annotations

import pytest

PANELS = [
    ("Figure 22", "traffic", "greedy"),
    ("Figure 23", "traffic", "zstream"),
    ("Figure 24", "stocks", "greedy"),
    ("Figure 25", "stocks", "zstream"),
]


@pytest.mark.parametrize("figure,dataset,algorithm", PANELS)
def test_appendix_kleene_patterns(
    benchmark,
    bench_scale,
    make_config,
    method_comparison_panel,
    comparison_sanity,
    figure,
    dataset,
    algorithm,
):
    config = make_config(
        dataset,
        algorithm,
        sizes=bench_scale["sizes"][:2],
        pattern_families=("kleene",),
        max_events=min(8000, bench_scale["max_events"]),
    )
    result = benchmark.pedantic(
        method_comparison_panel, args=(config, figure), rounds=1, iterations=1
    )
    comparison_sanity(result, config.sizes)

"""Order-based evaluation plans.

An order-based plan is a permutation of the pattern's positive items: the
first item in the order *initiates* partial matches (the lazy-NFA principle
— make the rarest event the initiator), and each subsequent item extends
them, either from buffered history or from future arrivals.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import PlanError
from repro.patterns import Pattern, PatternItem
from repro.plans.base import EvaluationPlan
from repro.plans.cost import order_plan_cost
from repro.statistics import StatisticsSnapshot


class OrderBasedPlan(EvaluationPlan):
    """A processing order over the positive items of a pattern.

    Parameters
    ----------
    pattern:
        The pattern the plan evaluates.
    order:
        Variables of the pattern's positive items, in processing order.
        Must be a permutation of ``pattern.positive_items`` variables.
    """

    def __init__(self, pattern: Pattern, order: Sequence[str]):
        super().__init__(pattern)
        order = tuple(order)
        expected = {item.variable for item in pattern.positive_items}
        if set(order) != expected or len(order) != len(expected):
            raise PlanError(
                f"plan order {order!r} is not a permutation of the pattern's "
                f"positive variables {sorted(expected)!r}"
            )
        self._order = order

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def in_pattern_order(cls, pattern: Pattern) -> "OrderBasedPlan":
        """The trivial plan following the pattern's declared order."""
        return cls(pattern, [item.variable for item in pattern.positive_items])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def order(self) -> Tuple[str, ...]:
        """Variables in processing order."""
        return self._order

    @property
    def initiator(self) -> str:
        """The variable whose events open new partial matches."""
        return self._order[0]

    def items_in_order(self) -> List[PatternItem]:
        """Pattern items in processing order."""
        return [self.pattern.item_by_variable(variable) for variable in self._order]

    def position(self, variable: str) -> int:
        """Position of a variable in the processing order."""
        try:
            return self._order.index(variable)
        except ValueError:
            raise PlanError(f"variable {variable!r} is not part of the plan") from None

    # ------------------------------------------------------------------
    # EvaluationPlan interface
    # ------------------------------------------------------------------
    def cost(self, snapshot: StatisticsSnapshot) -> float:
        return order_plan_cost(snapshot, self.pattern, self._order)

    def block_labels(self) -> Sequence[str]:
        labels = []
        for index, variable in enumerate(self._order):
            item = self.pattern.item_by_variable(variable)
            labels.append(f"step {index + 1}: {item.event_type.name} ({variable})")
        return labels

    def variables_in_plan_order(self) -> Tuple[str, ...]:
        return self._order

    def describe(self) -> str:
        types = " -> ".join(
            self.pattern.item_by_variable(v).event_type.name for v in self._order
        )
        return f"OrderBasedPlan[{types}]"

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderBasedPlan):
            return NotImplemented
        return self._order == other._order and self.pattern.name == other.pattern.name

    def __hash__(self) -> int:
        return hash((self.pattern.name, self._order))

    def __repr__(self) -> str:
        return self.describe()

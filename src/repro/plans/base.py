"""Abstract evaluation plan interface."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.patterns import Pattern
from repro.statistics import StatisticsSnapshot


class EvaluationPlan:
    """Base class for evaluation plans.

    A plan is always defined for a specific :class:`~repro.patterns.Pattern`
    and covers exactly the pattern's *positive* items (negated items are
    handled by the engines as post-processing, following the paper).
    """

    def __init__(self, pattern: Pattern):
        self._pattern = pattern

    @property
    def pattern(self) -> Pattern:
        return self._pattern

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def cost(self, snapshot: StatisticsSnapshot) -> float:
        """Expected number of partial matches materialised per time window."""
        raise NotImplementedError

    def block_labels(self) -> Sequence[str]:
        """Human-readable labels of the plan's building blocks, in plan order.

        Order-based plans have one block per position; tree-based plans one
        block per internal node (bottom-up).  The adaptation layer uses these
        labels to align invariants with blocks in reports.
        """
        raise NotImplementedError

    def variables_in_plan_order(self) -> Tuple[str, ...]:
        """Positive item variables in the order the plan introduces them."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description of the plan."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __hash__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

"""Cost model shared by the plan-generation algorithms.

The cost of a plan approximates the number of partial matches it keeps in
memory per unit time, computed from the arrival rates of the event types
and the selectivities of the inter-event predicates (Sections 4.1 and 4.2
of the paper):

* For an order-based plan ``p1, ..., pn`` the cost is the sum over prefixes
  of ``prod_j<=i rate(pj) * sel(pj, pj) * prod_{j,k<=i} sel(pj, pk)``.
* For a tree-based plan the cost is the ZStream recursion
  ``Cost(T) = Cost(L) + Cost(R) + Card(L, R)`` with
  ``Card(T) = Card(L) * Card(R) * SEL(L, R)`` and leaf cardinality equal to
  the leaf type's arrival rate.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.patterns import Pattern
from repro.statistics import StatisticsSnapshot


def pair_selectivity_product(
    snapshot: StatisticsSnapshot,
    group_a: Iterable[str],
    group_b: Iterable[str],
    pattern: Pattern,
) -> float:
    """Product of selectivities between two groups of pattern variables.

    Only pairs actually coupled by a pattern condition contribute (other
    pairs have selectivity 1.0 by convention).
    """
    coupled = set(map(tuple, map(sorted, pattern.conditions.variable_pairs())))
    product = 1.0
    for a in group_a:
        for b in group_b:
            key = tuple(sorted((a, b)))
            if key in coupled:
                product *= snapshot.selectivity(a, b)
    return product


def _variable_rate(snapshot: StatisticsSnapshot, pattern: Pattern, variable: str) -> float:
    """Arrival rate of the event type bound to ``variable``, times its local selectivity."""
    item = pattern.item_by_variable(variable)
    rate = snapshot.rate_or_default(item.event_type.name, 0.0)
    return rate * snapshot.local_selectivity(variable)


def order_step_cost(
    snapshot: StatisticsSnapshot,
    pattern: Pattern,
    prefix: Sequence[str],
    candidate: str,
) -> float:
    """Cost contribution of appending ``candidate`` after ``prefix``.

    This is the greedy algorithm's selection expression
    ``r_c * sel_{c,c} * prod_{k in prefix} sel_{k,c}`` — the factor by which
    the number of partial matches grows when the candidate is placed next.
    """
    value = _variable_rate(snapshot, pattern, candidate)
    for previous in prefix:
        value *= snapshot.selectivity(previous, candidate)
    return value


def order_plan_cost(
    snapshot: StatisticsSnapshot,
    pattern: Pattern,
    order: Sequence[str],
) -> float:
    """Total cost of an order-based plan: expected partial matches over all prefixes."""
    total = 0.0
    prefix_product = 1.0
    for index, variable in enumerate(order):
        prefix_product *= order_step_cost(snapshot, pattern, order[:index], variable)
        total += prefix_product
    return total


def order_prefix_cost(
    snapshot: StatisticsSnapshot,
    pattern: Pattern,
    prefix: Sequence[str],
) -> float:
    """Cost of evaluating only the leading ``prefix`` of an order-based plan.

    Identical to :func:`order_plan_cost` restricted to the prefix — the
    expected number of partial matches the prefix keeps alive per unit
    time.  This is the quantity a shared-prefix group saves for every
    consumer beyond the first.
    """
    return order_plan_cost(snapshot, pattern, prefix)


def sharing_score(
    snapshot: StatisticsSnapshot,
    pattern: Pattern,
    prefix: Sequence[str],
    member_count: int,
) -> float:
    """Expected saving from materializing ``prefix`` once for ``member_count`` plans.

    Each consumer beyond the first avoids re-deriving the prefix's partial
    matches, so the saving is ``(member_count - 1) * order_prefix_cost``.
    A score of zero (single member, or a prefix the statistics rate as
    free) means sharing buys nothing.
    """
    if member_count <= 1:
        return 0.0
    return (member_count - 1) * order_prefix_cost(snapshot, pattern, prefix)


def tree_node_cardinality(
    snapshot: StatisticsSnapshot,
    pattern: Pattern,
    left_variables: Sequence[str],
    right_variables: Sequence[str],
    left_cardinality: float,
    right_cardinality: float,
) -> float:
    """ZStream cardinality of an internal node given its children's cardinalities."""
    selectivity = pair_selectivity_product(
        snapshot, left_variables, right_variables, pattern
    )
    return left_cardinality * right_cardinality * selectivity


def leaf_cardinality(
    snapshot: StatisticsSnapshot, pattern: Pattern, variable: str
) -> float:
    """Cardinality of a leaf: the arrival rate of its type times local selectivity."""
    return _variable_rate(snapshot, pattern, variable)


def tree_plan_cost(snapshot: StatisticsSnapshot, pattern: Pattern, root) -> float:
    """Total ZStream cost of a tree plan (recursion over the node structure).

    ``root`` is a :class:`repro.plans.tree_plan.TreePlanNode`; the import is
    deferred to avoid a circular dependency.
    """
    cost, _cardinality = _tree_cost_and_cardinality(snapshot, pattern, root)
    return cost


def _tree_cost_and_cardinality(snapshot, pattern, node):
    from repro.plans.tree_plan import TreeLeaf

    if isinstance(node, TreeLeaf):
        cardinality = leaf_cardinality(snapshot, pattern, node.variable)
        return cardinality, cardinality
    left_cost, left_card = _tree_cost_and_cardinality(snapshot, pattern, node.left)
    right_cost, right_card = _tree_cost_and_cardinality(snapshot, pattern, node.right)
    cardinality = tree_node_cardinality(
        snapshot,
        pattern,
        node.left.variables(),
        node.right.variables(),
        left_card,
        right_card,
    )
    return left_cost + right_cost + cardinality, cardinality

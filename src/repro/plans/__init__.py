"""Evaluation plans and their cost model.

A plan tells the runtime engine *how* to combine primitive events into
matches.  Two plan families are supported, mirroring the paper:

* :class:`OrderBasedPlan` — a processing order over the pattern's positive
  items; executed by the lazy-NFA engine.
* :class:`TreeBasedPlan` — a binary join tree over the positive items (the
  ZStream model); executed by the tree engine.

The cost model (:mod:`repro.plans.cost`) estimates, from a statistics
snapshot, the expected number of partial matches a plan materialises — the
quantity both plan-generation algorithms minimise.
"""

from repro.plans.base import EvaluationPlan
from repro.plans.order_plan import OrderBasedPlan
from repro.plans.tree_plan import TreeBasedPlan, TreePlanNode, TreeLeaf, TreeInternalNode
from repro.plans.cost import (
    order_plan_cost,
    order_prefix_cost,
    order_step_cost,
    sharing_score,
    tree_plan_cost,
    tree_node_cardinality,
    pair_selectivity_product,
)

__all__ = [
    "EvaluationPlan",
    "OrderBasedPlan",
    "TreeBasedPlan",
    "TreePlanNode",
    "TreeLeaf",
    "TreeInternalNode",
    "order_plan_cost",
    "order_prefix_cost",
    "order_step_cost",
    "sharing_score",
    "tree_plan_cost",
    "tree_node_cardinality",
    "pair_selectivity_product",
]

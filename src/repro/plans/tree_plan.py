"""Tree-based evaluation plans (the ZStream model).

A tree plan is a binary tree whose leaves are the pattern's positive items
and whose internal nodes define the order in which sub-matches are joined
and their mutual predicates evaluated.  Matches reaching the root are
reported.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.patterns import Pattern
from repro.plans.base import EvaluationPlan
from repro.plans.cost import tree_plan_cost
from repro.statistics import StatisticsSnapshot


class TreePlanNode:
    """Base class for tree plan nodes."""

    def variables(self) -> Tuple[str, ...]:
        """Pattern variables covered by the subtree, in leaf order."""
        raise NotImplementedError

    def leaves(self) -> Tuple["TreeLeaf", ...]:
        raise NotImplementedError

    def internal_nodes_bottom_up(self) -> List["TreeInternalNode"]:
        """Internal nodes of the subtree in bottom-up (post-order) order."""
        raise NotImplementedError

    def height(self) -> int:
        raise NotImplementedError

    def structure_key(self) -> tuple:
        """Hashable structural identity (used for plan equality)."""
        raise NotImplementedError


class TreeLeaf(TreePlanNode):
    """A leaf node accepting events bound to one pattern variable."""

    __slots__ = ("variable", "type_name")

    def __init__(self, variable: str, type_name: str):
        self.variable = variable
        self.type_name = type_name

    def variables(self) -> Tuple[str, ...]:
        return (self.variable,)

    def leaves(self) -> Tuple["TreeLeaf", ...]:
        return (self,)

    def internal_nodes_bottom_up(self) -> List["TreeInternalNode"]:
        return []

    def height(self) -> int:
        return 0

    def structure_key(self) -> tuple:
        return ("leaf", self.variable)

    def __repr__(self) -> str:
        return f"{self.type_name}({self.variable})"


class TreeInternalNode(TreePlanNode):
    """An internal join node combining two subtrees."""

    __slots__ = ("left", "right")

    def __init__(self, left: TreePlanNode, right: TreePlanNode):
        overlap = set(left.variables()) & set(right.variables())
        if overlap:
            raise PlanError(f"tree node children overlap on variables {sorted(overlap)}")
        self.left = left
        self.right = right

    def variables(self) -> Tuple[str, ...]:
        return self.left.variables() + self.right.variables()

    def leaves(self) -> Tuple[TreeLeaf, ...]:
        return self.left.leaves() + self.right.leaves()

    def internal_nodes_bottom_up(self) -> List["TreeInternalNode"]:
        nodes = self.left.internal_nodes_bottom_up()
        nodes.extend(self.right.internal_nodes_bottom_up())
        nodes.append(self)
        return nodes

    def height(self) -> int:
        return 1 + max(self.left.height(), self.right.height())

    def structure_key(self) -> tuple:
        return ("node", self.left.structure_key(), self.right.structure_key())

    def __repr__(self) -> str:
        return f"({self.left!r}, {self.right!r})"


class TreeBasedPlan(EvaluationPlan):
    """A binary evaluation tree over the pattern's positive items."""

    def __init__(self, pattern: Pattern, root: TreePlanNode):
        super().__init__(pattern)
        expected = {item.variable for item in pattern.positive_items}
        covered = set(root.variables())
        if covered != expected:
            raise PlanError(
                f"tree plan covers {sorted(covered)} but pattern's positive "
                f"variables are {sorted(expected)}"
            )
        self._root = root

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def left_deep(cls, pattern: Pattern, order: Optional[Sequence[str]] = None) -> "TreeBasedPlan":
        """A left-deep tree following ``order`` (default: pattern order)."""
        variables = list(order) if order else [i.variable for i in pattern.positive_items]
        if len(variables) == 0:
            raise PlanError("cannot build a tree plan for an empty pattern")
        nodes: List[TreePlanNode] = [
            TreeLeaf(v, pattern.item_by_variable(v).event_type.name) for v in variables
        ]
        root = nodes[0]
        for node in nodes[1:]:
            root = TreeInternalNode(root, node)
        return cls(pattern, root)

    @classmethod
    def right_deep(cls, pattern: Pattern, order: Optional[Sequence[str]] = None) -> "TreeBasedPlan":
        """A right-deep tree following ``order`` (default: pattern order)."""
        variables = list(order) if order else [i.variable for i in pattern.positive_items]
        nodes: List[TreePlanNode] = [
            TreeLeaf(v, pattern.item_by_variable(v).event_type.name) for v in variables
        ]
        root = nodes[-1]
        for node in reversed(nodes[:-1]):
            root = TreeInternalNode(node, root)
        return cls(pattern, root)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> TreePlanNode:
        return self._root

    def leaves(self) -> Tuple[TreeLeaf, ...]:
        return self._root.leaves()

    def internal_nodes_bottom_up(self) -> List[TreeInternalNode]:
        return self._root.internal_nodes_bottom_up()

    def iter_nodes(self) -> Iterator[TreePlanNode]:
        """All nodes (leaves and internal), bottom-up."""
        yield from self.leaves()
        yield from self.internal_nodes_bottom_up()

    # ------------------------------------------------------------------
    # EvaluationPlan interface
    # ------------------------------------------------------------------
    def cost(self, snapshot: StatisticsSnapshot) -> float:
        return tree_plan_cost(snapshot, self.pattern, self._root)

    def block_labels(self) -> Sequence[str]:
        labels = []
        for node in self.internal_nodes_bottom_up():
            left = ",".join(node.left.variables())
            right = ",".join(node.right.variables())
            labels.append(f"join [{left}] with [{right}]")
        return labels

    def variables_in_plan_order(self) -> Tuple[str, ...]:
        return self._root.variables()

    def describe(self) -> str:
        return f"TreeBasedPlan[{self._root!r}]"

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeBasedPlan):
            return NotImplemented
        return (
            self._root.structure_key() == other._root.structure_key()
            and self.pattern.name == other.pattern.name
        )

    def __hash__(self) -> int:
        return hash((self.pattern.name, self._root.structure_key()))

    def __repr__(self) -> str:
        return self.describe()

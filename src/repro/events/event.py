"""Primitive event objects.

An :class:`Event` is an immutable record of a single observation: an event
type, a timestamp, an ordered sequence number, and an attribute payload.
Events are the atoms combined by evaluation plans into pattern matches.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Mapping, Optional

from repro.errors import SchemaError
from repro.events.event_type import EventType

_event_counter = itertools.count()


class Event:
    """A single primitive event.

    Parameters
    ----------
    event_type:
        The :class:`EventType` of the event.
    timestamp:
        Occurrence time in arbitrary but monotone units (the engines and
        pattern windows only ever compare and subtract timestamps).
    payload:
        Mapping of attribute names to values.
    sequence_number:
        Optional explicit total-order tiebreaker; if omitted a process-wide
        counter is used, so events created later always compare greater when
        timestamps tie.
    validate:
        When ``True`` the payload is validated against the event type's
        schema (if any).
    """

    __slots__ = ("event_type", "timestamp", "payload", "sequence_number")

    def __init__(
        self,
        event_type: EventType,
        timestamp: float,
        payload: Optional[Mapping[str, Any]] = None,
        sequence_number: Optional[int] = None,
        validate: bool = False,
    ):
        if not isinstance(event_type, EventType):
            raise SchemaError(
                f"event_type must be an EventType, got {type(event_type).__name__}"
            )
        self.event_type = event_type
        self.timestamp = float(timestamp)
        self.payload: Dict[str, Any] = dict(payload or {})
        self.sequence_number = (
            next(_event_counter) if sequence_number is None else int(sequence_number)
        )
        if validate:
            event_type.validate_payload(self.payload)

    @property
    def type_name(self) -> str:
        """Name of the event's type."""
        return self.event_type.name

    def get(self, attribute: str, default: Any = None) -> Any:
        """Return an attribute value, or ``default`` if absent."""
        return self.payload.get(attribute, default)

    def __getitem__(self, attribute: str) -> Any:
        try:
            return self.payload[attribute]
        except KeyError:
            raise KeyError(
                f"event of type {self.type_name!r} has no attribute {attribute!r}"
            ) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.payload

    def with_payload(self, **updates: Any) -> "Event":
        """Return a copy of the event with some payload entries replaced."""
        payload = dict(self.payload)
        payload.update(updates)
        return Event(
            self.event_type,
            self.timestamp,
            payload,
            sequence_number=self.sequence_number,
        )

    # Ordering is by (timestamp, sequence_number) so that streams can be
    # merged deterministically even when timestamps collide.
    def _order_key(self):
        return (self.timestamp, self.sequence_number)

    def __lt__(self, other: "Event") -> bool:
        return self._order_key() < other._order_key()

    def __le__(self, other: "Event") -> bool:
        return self._order_key() <= other._order_key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_type == other.event_type
            and self.timestamp == other.timestamp
            and self.sequence_number == other.sequence_number
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.event_type, self.timestamp, self.sequence_number))

    def __repr__(self) -> str:
        return (
            f"Event(type={self.type_name!r}, ts={self.timestamp:g}, "
            f"seq={self.sequence_number}, payload={self.payload!r})"
        )

"""Event stream abstractions.

Streams deliver primitive events to the engine in timestamp order.  That
order is a *contract with the consumer*, not a property of the outside
world: sources that receive events out of order must pass them through the
event-time machinery of :mod:`repro.streaming.ordering` (watermarks + a
reorder buffer), which restores non-decreasing timestamp order before the
events reach any engine.  Two concrete implementations are provided:

* :class:`InMemoryEventStream` wraps a list of events (used by tests,
  examples and the dataset simulators, which materialise their synthetic
  streams).
* :class:`GeneratorEventStream` wraps an arbitrary iterator of events —
  a truly lazy, single-pass stream that never materialises its input
  (the substrate of the :mod:`repro.streaming` sources).
* :class:`MergedEventStream` lazily merges several already-sorted streams,
  mirroring a CEP engine subscribing to multiple event sources.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel uses events)
    from repro.parallel.batching import EventBatch

from repro.errors import DatasetError
from repro.events.event import Event
from repro.events.event_type import EventType


class EventStream:
    """Base class for event streams.

    A stream is an iterable of :class:`Event` objects in non-decreasing
    timestamp order.  Subclasses must implement :meth:`__iter__`.
    """

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - optional
        raise TypeError(f"{type(self).__name__} has no defined length")

    def to_list(self) -> List[Event]:
        """Materialise the stream as a list."""
        return list(self)

    def count_by_type(self) -> Dict[str, int]:
        """Return the number of events per event-type name.

        Implemented with :class:`collections.Counter` over a generator —
        a single C-level pass instead of a per-event dict lookup loop.
        """
        return dict(Counter(event.type_name for event in self))

    def batched(self, batch_size: int) -> "Iterator[EventBatch]":
        """Iterate the stream as :class:`~repro.parallel.batching.EventBatch`
        chunks of up to ``batch_size`` events (the sharded runtime's
        ingestion unit)."""
        from repro.parallel.batching import batched as _batched

        return _batched(self, batch_size)


class GeneratorEventStream(EventStream):
    """A lazy, single-pass stream over an arbitrary event iterator.

    Unlike :class:`InMemoryEventStream`, the events are never materialised:
    iteration pulls straight from the underlying iterator, so the stream can
    be unbounded.  The price is that it can be consumed **once** — a second
    iteration (or a :meth:`to_list` after the first pass) raises a
    :class:`DatasetError` instead of silently yielding nothing, which is the
    classic exhausted-generator trap.

    Parameters
    ----------
    events:
        Any iterable/iterator of :class:`Event` objects in non-decreasing
        timestamp order (not verified — verifying would require buffering).
        Disordered producers should be wrapped in a
        :class:`~repro.streaming.ordering.ReorderBuffer` (or handed to a
        pipeline with ``max_lateness``) rather than fed here directly.
    name:
        Optional label used in error messages and ``repr``.
    """

    def __init__(self, events: Iterable[Event], name: str = ""):
        self._iterator = iter(events)
        self._name = name or type(self).__name__
        self._consumed = False

    @property
    def consumed(self) -> bool:
        """Whether the single pass over the stream has already started."""
        return self._consumed

    def __iter__(self) -> Iterator[Event]:
        if self._consumed:
            raise DatasetError(
                f"{self._name} is a single-pass generator-backed stream and "
                "has already been iterated; re-iterating would silently yield "
                "nothing. Materialise it first (e.g. wrap in "
                "InMemoryEventStream(stream.to_list())) if multiple passes "
                "are needed."
            )
        self._consumed = True
        return self._iterator

    def __repr__(self) -> str:
        state = "consumed" if self._consumed else "fresh"
        return f"<{type(self).__name__} {self._name!r} ({state})>"


class InMemoryEventStream(EventStream):
    """A stream backed by an in-memory list of events.

    Parameters
    ----------
    events:
        The events to deliver.  If ``sort`` is true (default) they are
        sorted by ``(timestamp, sequence_number)``; otherwise they must
        already be sorted and a :class:`DatasetError` is raised when they
        are not.
    """

    def __init__(self, events: Iterable[Event], sort: bool = True):
        self._events: List[Event] = list(events)
        if sort:
            self._events.sort()
        else:
            for previous, current in zip(self._events, self._events[1:]):
                if current < previous:
                    raise DatasetError(
                        "events are not sorted by timestamp; pass sort=True"
                    )

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> Sequence[Event]:
        return tuple(self._events)

    def time_span(self) -> float:
        """Return ``last_timestamp - first_timestamp`` (0 for short streams)."""
        if len(self._events) < 2:
            return 0.0
        return self._events[-1].timestamp - self._events[0].timestamp

    def filter_types(self, types: Iterable[EventType]) -> "InMemoryEventStream":
        """Return a sub-stream containing only events of the given types."""
        wanted = {t.name for t in types}
        return InMemoryEventStream(
            [e for e in self._events if e.type_name in wanted], sort=False
        )

    def slice_time(self, start: float, end: float) -> "InMemoryEventStream":
        """Return events with ``start <= timestamp < end``."""
        return InMemoryEventStream(
            [e for e in self._events if start <= e.timestamp < end], sort=False
        )


class MergedEventStream(EventStream):
    """Merge several sorted streams into one globally ordered stream."""

    def __init__(self, streams: Sequence[EventStream]):
        if not streams:
            raise DatasetError("MergedEventStream requires at least one stream")
        self._streams = list(streams)

    def __iter__(self) -> Iterator[Event]:
        return heapq.merge(*self._streams)

    def __len__(self) -> int:
        """Sum of the sub-stream lengths, when every sub-stream is sized.

        Raises a :class:`TypeError` naming the offending sub-stream when one
        of them has no defined length, instead of surfacing the base class's
        opaque error mid-summation.
        """
        total = 0
        for stream in self._streams:
            try:
                total += len(stream)
            except TypeError:
                raise TypeError(
                    f"MergedEventStream length is undefined: sub-stream "
                    f"{type(stream).__name__} has no defined length"
                ) from None
        return total


def stream_from_tuples(
    rows: Iterable[tuple],
    types: Dict[str, EventType],
    attribute_names: Optional[Sequence[str]] = None,
) -> InMemoryEventStream:
    """Build a stream from ``(type_name, timestamp, *values)`` tuples.

    Convenience helper for tests and examples: each row names an event type,
    gives a timestamp and the remaining values are zipped against
    ``attribute_names`` to form the payload.
    """
    events = []
    for row in rows:
        type_name, timestamp, *values = row
        if type_name not in types:
            raise DatasetError(f"unknown event type {type_name!r} in row {row!r}")
        names = attribute_names or [f"v{i}" for i in range(len(values))]
        if len(values) > len(names):
            raise DatasetError(
                f"row {row!r} has more values than attribute names {names!r}"
            )
        payload = dict(zip(names, values))
        events.append(Event(types[type_name], timestamp, payload))
    return InMemoryEventStream(events)

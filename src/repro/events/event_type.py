"""Event type and attribute schema definitions.

An :class:`EventType` names a class of primitive events (e.g. readings from
camera ``A`` in the paper's running example, or a particular stock symbol in
the NASDAQ dataset).  Each event type optionally carries an
:class:`EventSchema` describing the attributes its events are expected to
expose; schemas are used for validation in strict mode and for documentation
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import SchemaError


@dataclass(frozen=True)
class AttributeSpec:
    """Specification of a single event attribute.

    Parameters
    ----------
    name:
        The attribute name used as the payload key.
    dtype:
        The expected Python type of the attribute value.  ``object`` accepts
        any value.
    required:
        Whether an event of this type must carry the attribute.
    description:
        Free-form human-readable description.
    """

    name: str
    dtype: type = object
    required: bool = True
    description: str = ""

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` if ``value`` does not satisfy the spec."""
        if value is None:
            if self.required:
                raise SchemaError(f"attribute {self.name!r} is required but missing")
            return
        if self.dtype is not object and not isinstance(value, self.dtype):
            # Allow ints where floats are declared; this mirrors numpy's
            # promotion rules and keeps synthetic generators simple.
            if self.dtype is float and isinstance(value, int):
                return
            raise SchemaError(
                f"attribute {self.name!r} expected {self.dtype.__name__}, "
                f"got {type(value).__name__}"
            )


class EventSchema:
    """An ordered collection of :class:`AttributeSpec` objects."""

    def __init__(self, attributes: Iterable[AttributeSpec] = ()):
        self._attributes: Dict[str, AttributeSpec] = {}
        for spec in attributes:
            if spec.name in self._attributes:
                raise SchemaError(f"duplicate attribute {spec.name!r} in schema")
            self._attributes[spec.name] = spec

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self):
        return iter(self._attributes.values())

    def get(self, name: str) -> Optional[AttributeSpec]:
        return self._attributes.get(name)

    def validate_payload(self, payload: Dict[str, Any]) -> None:
        """Validate a full event payload against the schema.

        Missing optional attributes are accepted; unknown attributes are
        accepted as well (events may carry more data than the schema
        declares), matching the permissive behaviour of SASE-style engines.
        """
        for spec in self._attributes.values():
            value = payload.get(spec.name)
            if value is None and spec.name not in payload and spec.required:
                raise SchemaError(
                    f"payload missing required attribute {spec.name!r}"
                )
            if spec.name in payload:
                spec.validate(payload[spec.name])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        names = ", ".join(self.attribute_names)
        return f"EventSchema([{names}])"


@dataclass(frozen=True)
class EventType:
    """A named class of primitive events.

    Event types are the unit over which arrival rates are estimated and over
    which evaluation plans are defined.  Two event types are equal iff their
    names are equal, so they can be freely used as dictionary keys.

    Parameters
    ----------
    name:
        Unique name of the type (e.g. ``"A"``, ``"MSFT"``).
    schema:
        Optional attribute schema for events of this type.
    description:
        Free-form description for documentation purposes.
    """

    name: str
    schema: Optional[EventSchema] = field(default=None, compare=False, hash=False)
    description: str = field(default="", compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("event type name must be a non-empty string")

    def validate_payload(self, payload: Dict[str, Any]) -> None:
        """Validate an event payload if a schema is attached."""
        if self.schema is not None:
            self.schema.validate_payload(payload)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"EventType({self.name!r})"

"""Event model substrate.

Provides the primitive-event abstractions of a CEP system: event types,
attribute schemas, timestamped events, and in-memory event streams.  All
higher layers (patterns, plans, engines) are defined over these objects.
"""

from repro.events.event import Event
from repro.events.event_type import AttributeSpec, EventType, EventSchema
from repro.events.stream import (
    EventStream,
    GeneratorEventStream,
    InMemoryEventStream,
    MergedEventStream,
)

__all__ = [
    "Event",
    "EventType",
    "AttributeSpec",
    "EventSchema",
    "EventStream",
    "GeneratorEventStream",
    "InMemoryEventStream",
    "MergedEventStream",
]

"""Dataset simulators.

The paper evaluates on two real-world datasets that are not redistributable
here (City of Aarhus vehicle-traffic sensors and NASDAQ per-minute stock
updates).  These simulators generate synthetic streams reproducing the
statistical *character* the paper attributes to each dataset — the property
the adaptation methods actually react to:

* :class:`TrafficDatasetSimulator` — highly skewed, stable arrival rates
  with rare but extreme regime shifts;
* :class:`StockDatasetSimulator` — near-uniform arrival rates with
  frequent, minor fluctuations.

Both expose their generating processes as ground-truth statistics models so
experiments can seed initial plans and, when desired, bypass online
estimation entirely.
"""

from repro.datasets.base import DatasetSimulator
from repro.datasets.traffic import TrafficDatasetSimulator
from repro.datasets.stocks import StockDatasetSimulator
from repro.datasets.generic import ConfigurableDatasetSimulator

__all__ = [
    "DatasetSimulator",
    "TrafficDatasetSimulator",
    "StockDatasetSimulator",
    "ConfigurableDatasetSimulator",
]


def dataset_by_name(name: str, **kwargs) -> DatasetSimulator:
    """Factory used by the experiment drivers and benchmarks."""
    normalized = name.lower()
    if normalized in ("traffic", "aarhus"):
        return TrafficDatasetSimulator(**kwargs)
    if normalized in ("stocks", "stock", "nasdaq"):
        return StockDatasetSimulator(**kwargs)
    raise ValueError(f"unknown dataset {name!r}; expected 'traffic' or 'stocks'")

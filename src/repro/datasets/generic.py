"""A fully configurable dataset simulator.

Useful for tests, ablations and for users who want to stress the adaptation
layer with arbitrary statistical behaviour: every event type's rate model
and payload generator is supplied explicitly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.conditions import AttributeComparisonCondition, Condition
from repro.datasets.base import DatasetSimulator
from repro.events import EventType
from repro.statistics import TimeVaryingValue

PayloadGenerator = Callable[[str, float, np.random.Generator], Dict[str, float]]


def _default_payload(
    type_name: str, timestamp: float, rng: np.random.Generator
) -> Dict[str, float]:
    return {"value": float(rng.uniform(0.0, 1.0))}


class ConfigurableDatasetSimulator(DatasetSimulator):
    """Dataset whose rates, payloads and predicates are caller-supplied."""

    name = "configurable"

    def __init__(
        self,
        event_types: Sequence[EventType],
        rate_models: Dict[str, TimeVaryingValue],
        payload_generator: Optional[PayloadGenerator] = None,
        condition_attribute: str = "value",
        nominal_selectivity: float = 0.5,
        window_per_size: float = 2.0,
        seed: int = 0,
        time_step: float = 1.0,
    ):
        super().__init__(event_types, rate_models, seed=seed, time_step=time_step)
        self._payload_generator = payload_generator or _default_payload
        self._condition_attribute = condition_attribute
        self._nominal_selectivity = float(nominal_selectivity)
        self._window_per_size = float(window_per_size)

    def condition_between(self, variable_a: str, variable_b: str) -> Condition:
        return AttributeComparisonCondition(
            variable_a, self._condition_attribute, "<", variable_b, self._condition_attribute
        )

    def nominal_selectivity(self) -> float:
        return self._nominal_selectivity

    def default_window(self, pattern_size: int) -> float:
        return self._window_per_size * pattern_size

    def _payload(
        self, type_name: str, timestamp: float, rng: np.random.Generator
    ) -> Dict[str, float]:
        return self._payload_generator(type_name, timestamp, rng)

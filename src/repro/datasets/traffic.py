"""Synthetic stand-in for the Aarhus vehicle-traffic dataset.

The paper describes the traffic dataset as having *highly skewed and
stable* arrival rates and selectivities, with *few but extreme* on-the-fly
changes.  The simulator reproduces exactly that character:

* each observation point (event type) has a Zipf-skewed base arrival rate;
* rates are piecewise constant (:class:`~repro.statistics.StepValue`);
* a small number of regime shifts occur at random times, each multiplying
  or dividing the rates of a random subset of observation points by a large
  factor — the "very extreme" changes the paper mentions (e.g. traffic near
  the main entrance collapsing in the late evening).

Event payloads carry ``avg_speed`` and ``vehicle_count`` attributes.  The
workload patterns look for *violations* of the normal inverse relationship
between speed and vehicle count: combinations of observations in which both
quantities increase or both decrease (as in the paper's Section 5.1).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.conditions import Condition, PredicateCondition
from repro.datasets.base import DatasetSimulator
from repro.errors import DatasetError
from repro.events import EventType, AttributeSpec, EventSchema
from repro.statistics import StepValue, TimeVaryingValue


def _traffic_schema() -> EventSchema:
    return EventSchema(
        [
            AttributeSpec("avg_speed", float, description="average observed speed (km/h)"),
            AttributeSpec("vehicle_count", float, description="vehicles seen in the last interval"),
            AttributeSpec("point_id", int, description="observation point identifier"),
        ]
    )


#: Minimal move (in km/h and in vehicles) for a change to count as an
#: increase/decrease; keeps the predicate selective so that intermediate
#: partial-match counts, not final matches, dominate the engine's work.
SPEED_MARGIN = 12.0
COUNT_MARGIN = 12.0


def both_increase_or_decrease(first, second) -> bool:
    """The traffic workload predicate between two consecutive observations.

    True when both the average speed and the vehicle count move in the same
    direction (by more than a small margin) — a violation of the normal
    driving model in which speed drops as the road gets busier.
    """
    speed_up = second["avg_speed"] > first["avg_speed"] + SPEED_MARGIN
    count_up = second["vehicle_count"] > first["vehicle_count"] + COUNT_MARGIN
    speed_down = second["avg_speed"] < first["avg_speed"] - SPEED_MARGIN
    count_down = second["vehicle_count"] < first["vehicle_count"] - COUNT_MARGIN
    return (speed_up and count_up) or (speed_down and count_down)


class TrafficDatasetSimulator(DatasetSimulator):
    """Skewed, stable rates with rare extreme shifts (traffic-sensor style)."""

    name = "traffic"

    def __init__(
        self,
        num_types: int = 16,
        base_rate: float = 8.0,
        skew: float = 0.8,
        num_shifts: int = 5,
        shift_factor: float = 8.0,
        shift_fraction: float = 0.5,
        duration_hint: float = 300.0,
        seed: int = 7,
        time_step: float = 1.0,
    ):
        """Create the simulator.

        Parameters
        ----------
        num_types:
            Number of observation points (event types ``P00``, ``P01``, ...).
        base_rate:
            Arrival rate scale; the most frequent point gets roughly this
            rate, the others fall off as a Zipf distribution with ``skew``.
        skew:
            Zipf exponent; larger means more skew between the points.
        num_shifts:
            Number of regime shifts over ``duration_hint``.
        shift_factor:
            Multiplicative magnitude of a shift (affected points are
            multiplied or divided by this factor).
        duration_hint:
            The stream duration the shift schedule is laid out over;
            generating longer streams simply sees no further shifts.
        """
        if num_types < 2:
            raise DatasetError("traffic simulator needs at least two observation points")
        if num_shifts < 0:
            raise DatasetError("num_shifts must be >= 0")
        if not 0.0 < shift_fraction <= 1.0:
            raise DatasetError("shift_fraction must be in (0, 1]")
        self.num_types = num_types
        self.base_rate = float(base_rate)
        self.skew = float(skew)
        self.num_shifts = int(num_shifts)
        self.shift_factor = float(shift_factor)
        self.shift_fraction = float(shift_fraction)
        self.duration_hint = float(duration_hint)

        rng = np.random.default_rng(seed)
        schema = _traffic_schema()
        event_types = [
            EventType(f"P{i:02d}", schema=schema, description=f"observation point {i}")
            for i in range(num_types)
        ]
        rate_models = self._build_rate_models(event_types, rng)
        super().__init__(event_types, rate_models, seed=seed, time_step=time_step)

        # Per-point mean speed/count used by the payload generator; drawn
        # once so the attribute distributions are stable per point.
        self._mean_speed = {
            t.name: float(rng.uniform(30.0, 90.0)) for t in event_types
        }
        self._mean_count = {
            t.name: float(rng.uniform(5.0, 60.0)) for t in event_types
        }

    # ------------------------------------------------------------------
    # Rate model construction
    # ------------------------------------------------------------------
    def _build_rate_models(
        self, event_types: List[EventType], rng: np.random.Generator
    ) -> Dict[str, TimeVaryingValue]:
        ranks = np.arange(1, len(event_types) + 1, dtype=float)
        zipf_weights = ranks ** (-self.skew)
        zipf_weights /= zipf_weights[0]
        base_rates = self.base_rate * zipf_weights
        # Shuffle which point gets which rank so the type name does not
        # encode the skew position.
        rng.shuffle(base_rates)

        shift_times = np.sort(
            rng.uniform(0.15 * self.duration_hint, 0.85 * self.duration_hint, size=self.num_shifts)
        )
        models: Dict[str, TimeVaryingValue] = {}
        current = {t.name: float(base_rates[i]) for i, t in enumerate(event_types)}
        steps: Dict[str, List[tuple]] = {t.name: [] for t in event_types}
        for shift_time in shift_times:
            # Each shift affects a sizeable fraction of the points, multiplying
            # or dividing their rate by the shift factor — extreme, rare changes.
            affected = rng.choice(
                [t.name for t in event_types],
                size=max(1, int(len(event_types) * self.shift_fraction)),
                replace=False,
            )
            for name in affected:
                factor = self.shift_factor if rng.random() < 0.5 else 1.0 / self.shift_factor
                current[name] = max(0.05, current[name] * factor)
                steps[name].append((float(shift_time), current[name]))
        for index, event_type in enumerate(event_types):
            models[event_type.name] = StepValue(
                float(base_rates[index]), steps[event_type.name]
            )
        return models

    # ------------------------------------------------------------------
    # Pattern hooks
    # ------------------------------------------------------------------
    def condition_between(self, variable_a: str, variable_b: str) -> Condition:
        return PredicateCondition(
            [variable_a, variable_b],
            both_increase_or_decrease,
            name="same_direction",
        )

    def nominal_selectivity(self) -> float:
        # With independent normal speed/count draws and the margins above,
        # P(both up by a margin) = P(both down by a margin) ~ 0.24^2 each, so
        # the predicate holds for roughly one pair in eight.
        return 0.12

    def default_window(self, pattern_size: int) -> float:
        # Wide enough for a handful of the rarer events to co-occur, scaled
        # with pattern size the way the paper's 10-minute windows scale.
        return 3.0 + 0.5 * pattern_size

    # ------------------------------------------------------------------
    # Payload generation
    # ------------------------------------------------------------------
    def _payload(
        self, type_name: str, timestamp: float, rng: np.random.Generator
    ) -> Dict[str, float]:
        speed = max(1.0, rng.normal(self._mean_speed[type_name], 12.0))
        count = max(0.0, rng.normal(self._mean_count[type_name], 10.0))
        return {
            "avg_speed": float(speed),
            "vehicle_count": float(count),
            "point_id": int(type_name[1:]),
        }

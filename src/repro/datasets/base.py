"""Base class for dataset simulators.

A dataset simulator owns a set of event types, a time-varying arrival-rate
model per type, and a payload generator.  Streams are produced with a
discretised non-homogeneous Poisson process: time is split into small
steps, the expected count of each type within a step is ``rate * dt``, the
actual count is Poisson-distributed, and the events are placed uniformly
within the step.  All randomness is driven by an explicit seed, so streams
are reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.conditions import Condition
from repro.errors import DatasetError
from repro.events import Event, EventType, InMemoryEventStream
from repro.patterns import Pattern
from repro.statistics import (
    GroundTruthStatisticsProvider,
    StatisticsSnapshot,
    TimeVaryingValue,
)


class DatasetSimulator:
    """Common machinery for the synthetic dataset simulators."""

    #: Name used in reports ("traffic", "stocks", ...).
    name: str = "dataset"

    def __init__(
        self,
        event_types: Sequence[EventType],
        rate_models: Dict[str, TimeVaryingValue],
        seed: int = 0,
        time_step: float = 1.0,
    ):
        if not event_types:
            raise DatasetError("a dataset needs at least one event type")
        missing = [t.name for t in event_types if t.name not in rate_models]
        if missing:
            raise DatasetError(f"rate models missing for types: {missing}")
        if time_step <= 0:
            raise DatasetError("time_step must be positive")
        self._event_types: Dict[str, EventType] = {t.name: t for t in event_types}
        self._rate_models = dict(rate_models)
        self._seed = int(seed)
        self._time_step = float(time_step)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def event_types(self) -> List[EventType]:
        return list(self._event_types.values())

    @property
    def seed(self) -> int:
        return self._seed

    def event_type(self, name: str) -> EventType:
        try:
            return self._event_types[name]
        except KeyError:
            raise DatasetError(f"dataset {self.name!r} has no event type {name!r}") from None

    def type_names(self) -> List[str]:
        return list(self._event_types)

    def rate_model(self, type_name: str) -> TimeVaryingValue:
        try:
            return self._rate_models[type_name]
        except KeyError:
            raise DatasetError(f"no rate model for type {type_name!r}") from None

    def true_rate(self, type_name: str, t: float) -> float:
        return max(0.0, self.rate_model(type_name).value_at(t))

    # ------------------------------------------------------------------
    # Pattern support hooks (overridden by concrete datasets)
    # ------------------------------------------------------------------
    def condition_between(self, variable_a: str, variable_b: str) -> Condition:
        """The dataset's natural inter-event predicate between two variables."""
        raise NotImplementedError

    def nominal_selectivity(self) -> float:
        """Approximate selectivity of :meth:`condition_between` on this data."""
        raise NotImplementedError

    def default_window(self, pattern_size: int) -> float:
        """A reasonable time window for a pattern of the given size."""
        raise NotImplementedError

    def _payload(
        self, type_name: str, timestamp: float, rng: np.random.Generator
    ) -> Dict[str, float]:
        """Generate the attribute payload of one event."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def initial_snapshot(
        self, pattern: Pattern, at_time: float = 0.0
    ) -> StatisticsSnapshot:
        """Ground-truth statistics at ``at_time`` for the pattern's types.

        Selectivities for condition-coupled pairs are set to the dataset's
        nominal selectivity — the same role as the ``in_stat`` argument of
        Algorithm 1.
        """
        rates = {
            item.event_type.name: self.true_rate(item.event_type.name, at_time)
            for item in pattern.items
        }
        selectivity = self.nominal_selectivity()
        selectivities = {
            pair: selectivity for pair in pattern.conditions.variable_pairs()
        }
        return StatisticsSnapshot(rates, selectivities, timestamp=at_time)

    def ground_truth_provider(
        self,
        pattern: Optional[Pattern] = None,
        selectivity_models: Optional[Dict[tuple, TimeVaryingValue]] = None,
    ) -> GroundTruthStatisticsProvider:
        """A provider exposing the true generating rates (and optional selectivities)."""
        return GroundTruthStatisticsProvider(self._rate_models, selectivity_models)

    # ------------------------------------------------------------------
    # Stream generation
    # ------------------------------------------------------------------
    def generate(
        self,
        duration: float,
        seed: Optional[int] = None,
        start_time: float = 0.0,
        max_events: Optional[int] = None,
    ) -> InMemoryEventStream:
        """Generate a stream covering ``[start_time, start_time + duration)``."""
        if duration <= 0:
            raise DatasetError("duration must be positive")
        rng = np.random.default_rng(self._seed if seed is None else seed)
        events: List[Event] = []
        step = self._time_step
        steps = int(np.ceil(duration / step))
        for index in range(steps):
            step_start = start_time + index * step
            step_end = min(start_time + duration, step_start + step)
            width = step_end - step_start
            if width <= 0:
                break
            midpoint = step_start + width / 2.0
            for type_name, model in self._rate_models.items():
                expected = max(0.0, model.value_at(midpoint)) * width
                count = int(rng.poisson(expected)) if expected > 0 else 0
                if count == 0:
                    continue
                timestamps = np.sort(rng.uniform(step_start, step_end, size=count))
                event_type = self._event_types[type_name]
                for timestamp in timestamps:
                    events.append(
                        Event(
                            event_type,
                            float(timestamp),
                            self._payload(type_name, float(timestamp), rng),
                        )
                    )
            if max_events is not None and len(events) >= max_events:
                break
        events.sort()
        if max_events is not None:
            events = events[:max_events]
        return InMemoryEventStream(events, sort=False)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} types={len(self._event_types)} seed={self._seed}>"

"""Synthetic stand-in for the NASDAQ stock-updates dataset.

The paper describes the stocks dataset as having *low skew* — the arrival
rates of all stock identifiers are nearly identical — while the statistics
change *frequently but only slightly*.  The simulator therefore gives every
stock symbol a rate close to a common base value and perturbs it with a
small-amplitude, short-period oscillation plus a slow bounded random walk.

Event payloads carry the current ``price`` and the ``diff`` against the
previous price of the same symbol (the paper preprocesses the raw data the
same way).  The workload conditions require increasing price differences
across the pattern's events (``a.diff < b.diff < c.diff ...``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.conditions import Condition
from repro.datasets.base import DatasetSimulator
from repro.errors import DatasetError
from repro.events import AttributeSpec, EventSchema, EventType
from repro.statistics import OscillatingValue, RandomWalkValue, TimeVaryingValue


class PriceJumpCondition(Condition):
    """``first.diff + margin < second.diff``: a clear acceleration in price moves."""

    def __init__(self, first_variable: str, second_variable: str, margin: float):
        self._first = first_variable
        self._second = second_variable
        self._margin = float(margin)

    @property
    def variables(self):
        return frozenset({self._first, self._second})

    @property
    def margin(self) -> float:
        return self._margin

    def evaluate(self, binding) -> bool:
        if self._first not in binding or self._second not in binding:
            return True
        first = binding[self._first]
        second = binding[self._second]
        first_events = first if isinstance(first, list) else [first]
        second_events = second if isinstance(second, list) else [second]
        for left in first_events:
            for right in second_events:
                if not left.get("diff", 0.0) + self._margin < right.get("diff", 0.0):
                    return False
        return True

    def __repr__(self) -> str:
        return f"{self._first}.diff + {self._margin:g} < {self._second}.diff"


def _stock_schema() -> EventSchema:
    return EventSchema(
        [
            AttributeSpec("price", float, description="last trade price"),
            AttributeSpec("diff", float, description="difference against the previous price"),
        ]
    )


class _CompositeRate:
    """Oscillation around a slowly drifting base: frequent, minor changes."""

    def __init__(self, walk: RandomWalkValue, oscillation: OscillatingValue):
        self._walk = walk
        self._oscillation = oscillation

    def value_at(self, t: float) -> float:
        base = self._walk.value_at(t)
        ratio = self._oscillation.value_at(t)
        return max(0.05, base * ratio)


class StockDatasetSimulator(DatasetSimulator):
    """Near-uniform rates with frequent minor fluctuations (stock-ticker style)."""

    name = "stocks"

    def __init__(
        self,
        num_types: int = 16,
        base_rate: float = 2.5,
        rate_spread: float = 0.1,
        oscillation_amplitude: float = 0.25,
        oscillation_period: float = 12.0,
        walk_volatility: float = 0.01,
        duration_hint: float = 300.0,
        seed: int = 11,
        time_step: float = 1.0,
    ):
        """Create the simulator.

        Parameters
        ----------
        num_types:
            Number of stock symbols (event types ``K00``, ``K01``, ...).
        base_rate:
            Common arrival-rate level shared (almost) by all symbols.
        rate_spread:
            Relative spread of the initial rates around ``base_rate``
            (small — the paper observed near-identical initial values).
        oscillation_amplitude / oscillation_period:
            Parameters of the per-symbol sinusoidal fluctuation producing
            the frequent minor changes.
        walk_volatility:
            Volatility of the slow random-walk component of each rate.
        """
        if num_types < 2:
            raise DatasetError("stock simulator needs at least two symbols")
        self.num_types = num_types
        self.base_rate = float(base_rate)
        self.duration_hint = float(duration_hint)

        rng = np.random.default_rng(seed)
        schema = _stock_schema()
        event_types = [
            EventType(f"K{i:02d}", schema=schema, description=f"stock symbol {i}")
            for i in range(num_types)
        ]
        rate_models: Dict[str, TimeVaryingValue] = {}
        for index, event_type in enumerate(event_types):
            initial = base_rate * (1.0 + rng.uniform(-rate_spread, rate_spread))
            walk = RandomWalkValue(
                base=initial,
                volatility=walk_volatility,
                horizon=duration_hint,
                step=max(1.0, duration_hint / 200.0),
                rng=np.random.default_rng(seed * 1000 + index),
                lower=0.2 * base_rate,
                upper=3.0 * base_rate,
            )
            oscillation = OscillatingValue(
                base=1.0,
                amplitude=oscillation_amplitude,
                period=oscillation_period * (1.0 + 0.2 * rng.random()),
                phase=float(rng.uniform(0.0, 2.0 * np.pi)),
            )
            rate_models[event_type.name] = _CompositeRate(walk, oscillation)
        super().__init__(event_types, rate_models, seed=seed, time_step=time_step)

        self._price_state: Dict[str, float] = {
            t.name: float(rng.uniform(20.0, 200.0)) for t in event_types
        }

    # ------------------------------------------------------------------
    # Pattern hooks
    # ------------------------------------------------------------------
    #: Margin by which the later event's price difference must exceed the
    #: earlier one's; keeps the predicate selective enough that final matches
    #: stay rare compared with intermediate partial matches.
    DIFF_MARGIN = 1.2

    def condition_between(self, variable_a: str, variable_b: str) -> Condition:
        """Require the later variable's price difference to clearly exceed the earlier's."""
        return PriceJumpCondition(variable_a, variable_b, self.DIFF_MARGIN)

    def nominal_selectivity(self) -> float:
        # diff values are N(0, 1); the margin-1.2 comparison between two
        # independent draws holds for roughly a fifth of the pairs.
        return 0.2

    def default_window(self, pattern_size: int) -> float:
        return 3.0 + 0.5 * pattern_size

    # ------------------------------------------------------------------
    # Payload generation
    # ------------------------------------------------------------------
    def _payload(
        self, type_name: str, timestamp: float, rng: np.random.Generator
    ) -> Dict[str, float]:
        previous = self._price_state[type_name]
        diff = float(rng.normal(0.0, 1.0))
        price = max(0.01, previous + diff)
        self._price_state[type_name] = price
        return {"price": price, "diff": diff}

"""Exception hierarchy for the adaptive CEP library.

All library-specific exceptions derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """An event payload or schema definition is invalid."""


class PatternError(ReproError):
    """A pattern specification is malformed or unsupported."""


class PlanError(ReproError):
    """An evaluation plan is malformed or inconsistent with its pattern."""


class StatisticsError(ReproError):
    """Statistics estimation was asked for an unknown quantity."""


class OptimizerError(ReproError):
    """A plan-generation algorithm failed or was misconfigured."""


class AdaptationError(ReproError):
    """The adaptive controller or a decision policy was misused."""


class EngineError(ReproError):
    """Runtime evaluation engine failure."""


class PartitionError(ReproError):
    """A partitioning strategy cannot guarantee correct sharded detection."""


class ParallelExecutionError(ReproError):
    """A sharded executor failed to run or collect its shards."""


class DatasetError(ReproError):
    """A dataset simulator or workload generator was misconfigured."""


class StreamingError(ReproError):
    """A streaming source, sink or pipeline was misused or failed."""


class CheckpointError(ReproError):
    """A pipeline checkpoint could not be written, read or applied."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""

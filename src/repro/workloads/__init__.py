"""Workload (pattern set) generation.

The paper evaluates five pattern families per dataset, each at sizes 3–8:
plain sequences, conjunctions, sequences with a negated event, sequences
with a Kleene-closure event, and composite patterns (disjunctions of three
shorter sequences).  :class:`WorkloadGenerator` reproduces these families
on top of any dataset simulator.
"""

from repro.workloads.generator import WorkloadGenerator, PATTERN_FAMILIES

__all__ = ["WorkloadGenerator", "PATTERN_FAMILIES"]

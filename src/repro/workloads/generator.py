"""Pattern-set generation over a dataset simulator.

A :class:`WorkloadGenerator` deterministically derives patterns from a
dataset: it picks the participating event types (spreading them across the
dataset's rate skew so reordering actually matters), adds the dataset's
natural inter-event predicate between consecutive variables, and applies
the requested operator family.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.conditions import ConditionSet, EqualityCondition
from repro.datasets.base import DatasetSimulator
from repro.errors import DatasetError
from repro.events import EventType, InMemoryEventStream
from repro.patterns import (
    CompositePattern,
    Pattern,
    PatternItem,
    PatternOperator,
)

#: The five pattern families of the paper's evaluation (Appendix A).
PATTERN_FAMILIES = ("sequence", "conjunction", "negation", "kleene", "composite")

_VARIABLE_NAMES = "abcdefghijklmnopqrstuvwxyz"


class WorkloadGenerator:
    """Derives the paper's pattern families from a dataset simulator.

    Parameters
    ----------
    dataset:
        The dataset the patterns will be evaluated on.
    seed:
        Seed controlling which event types are picked for each pattern.
    window:
        Optional fixed time window; defaults to the dataset's
        size-dependent recommendation.
    """

    def __init__(
        self,
        dataset: DatasetSimulator,
        seed: int = 0,
        window: Optional[float] = None,
    ):
        self.dataset = dataset
        self._seed = int(seed)
        self._window = window

    # ------------------------------------------------------------------
    # Type selection
    # ------------------------------------------------------------------
    def select_types(self, count: int, variant: int = 0) -> List[EventType]:
        """Pick ``count`` distinct event types spread across the rate skew.

        Types are ranked by their arrival rate at time 0 and sampled evenly
        across that ranking, so every pattern mixes frequent and rare types
        — the situation in which plan (re)ordering matters most.
        """
        names = self.dataset.type_names()
        if count > len(names):
            raise DatasetError(
                f"pattern size {count} exceeds the dataset's {len(names)} event types"
            )
        ranked = sorted(names, key=lambda n: self.dataset.true_rate(n, 0.0))
        rng = np.random.default_rng(self._seed * 1000 + variant * 17 + count)
        positions = np.linspace(0, len(ranked) - 1, num=count)
        chosen: List[str] = []
        for position in positions:
            index = int(round(position + rng.integers(-1, 2)))
            index = min(len(ranked) - 1, max(0, index))
            while ranked[index] in chosen:
                index = (index + 1) % len(ranked)
            chosen.append(ranked[index])
        # Shuffle so the declared pattern order is not already sorted by rate
        # (otherwise the initial pattern-order plan would be optimal already).
        rng.shuffle(chosen)
        return [self.dataset.event_type(name) for name in chosen]

    def _window_for(self, size: int) -> float:
        if self._window is not None:
            return self._window
        return self.dataset.default_window(size)

    def _chain_conditions(self, variables: Sequence[str]) -> ConditionSet:
        """The dataset's predicate between every pair of consecutive variables."""
        conditions = ConditionSet()
        for first, second in zip(variables, variables[1:]):
            conditions.add(self.dataset.condition_between(first, second))
        return conditions

    # ------------------------------------------------------------------
    # Pattern families
    # ------------------------------------------------------------------
    def sequence_pattern(self, size: int, variant: int = 0) -> Pattern:
        """A plain SEQ pattern of the given size."""
        types = self.select_types(size, variant)
        variables = list(_VARIABLE_NAMES[:size])
        items = [PatternItem(v, t) for v, t in zip(variables, types)]
        return Pattern(
            PatternOperator.SEQUENCE,
            items,
            condition=self._chain_conditions(variables),
            window=self._window_for(size),
            name=f"{self.dataset.name}-seq-{size}-{variant}",
        )

    def conjunction_pattern(self, size: int, variant: int = 0) -> Pattern:
        """An AND pattern: the sequence pattern minus its temporal constraints."""
        types = self.select_types(size, variant)
        variables = list(_VARIABLE_NAMES[:size])
        items = [PatternItem(v, t) for v, t in zip(variables, types)]
        return Pattern(
            PatternOperator.CONJUNCTION,
            items,
            condition=self._chain_conditions(variables),
            window=self._window_for(size),
            name=f"{self.dataset.name}-and-{size}-{variant}",
        )

    def negation_pattern(self, size: int, variant: int = 0) -> Pattern:
        """A sequence with one additional negated event at a random position.

        Matching the paper, the negated event does not count towards the
        pattern size: the pattern has ``size`` positive items plus one
        negated item.
        """
        types = self.select_types(size + 1, variant)
        rng = np.random.default_rng(self._seed * 333 + variant * 7 + size)
        negated_slot = int(rng.integers(1, size))  # strictly inside the sequence
        variables = list(_VARIABLE_NAMES[: size + 1])
        items: List[PatternItem] = []
        positive_variables: List[str] = []
        for index, (variable, event_type) in enumerate(zip(variables, types)):
            negated = index == negated_slot
            items.append(PatternItem(variable, event_type, negated=negated))
            if not negated:
                positive_variables.append(variable)
        return Pattern(
            PatternOperator.SEQUENCE,
            items,
            condition=self._chain_conditions(positive_variables),
            window=self._window_for(size),
            name=f"{self.dataset.name}-neg-{size}-{variant}",
        )

    def kleene_pattern(self, size: int, variant: int = 0) -> Pattern:
        """A sequence with one item under Kleene closure."""
        types = self.select_types(size, variant)
        rng = np.random.default_rng(self._seed * 555 + variant * 13 + size)
        kleene_slot = int(rng.integers(0, size))
        variables = list(_VARIABLE_NAMES[:size])
        items = [
            PatternItem(v, t, kleene=(index == kleene_slot))
            for index, (v, t) in enumerate(zip(variables, types))
        ]
        return Pattern(
            PatternOperator.SEQUENCE,
            items,
            condition=self._chain_conditions(variables),
            window=self._window_for(size),
            name=f"{self.dataset.name}-kleene-{size}-{variant}",
        )

    def keyed_sequence_pattern(
        self, size: int, key: str = "entity_id", variant: int = 0
    ) -> Pattern:
        """A SEQ pattern whose events must all belong to one entity.

        On top of the dataset's natural inter-event predicates, consecutive
        variables are joined by an equality on ``key`` (like the paper's
        ``person_id`` joins in Example 1).  Because the equality chain
        connects every variable, such patterns pass
        :meth:`repro.parallel.KeyPartitioner.validate` and can be sharded
        by ``key`` without losing matches.
        """
        types = self.select_types(size, variant)
        variables = list(_VARIABLE_NAMES[:size])
        items = [PatternItem(v, t) for v, t in zip(variables, types)]
        conditions = self._chain_conditions(variables)
        for first, second in zip(variables, variables[1:]):
            conditions.add(EqualityCondition(first, second, key))
        return Pattern(
            PatternOperator.SEQUENCE,
            items,
            condition=conditions,
            window=self._window_for(size),
            name=f"{self.dataset.name}-keyedseq-{size}-{variant}",
        )

    def keyed_stream(
        self,
        duration: float,
        entities: int = 8,
        key: str = "entity_id",
        seed: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> InMemoryEventStream:
        """The dataset's stream with a random entity identifier per event.

        Simulates a multi-entity (multi-user, multi-symbol, multi-road)
        deployment: each event is tagged with one of ``entities`` key
        values, deterministically from ``seed``.  Combined with
        :meth:`keyed_sequence_pattern` this is the workload that exercises
        key-partitioned scale-out.
        """
        if entities < 1:
            raise DatasetError(f"entities must be positive, got {entities!r}")
        base = self.dataset.generate(duration, seed=seed, max_events=max_events)
        rng = np.random.default_rng(
            self._seed * 7919 + entities + (0 if seed is None else seed * 104729)
        )
        assignments = rng.integers(0, entities, size=len(base))
        events = [
            event.with_payload(**{key: int(entity)})
            for event, entity in zip(base, assignments)
        ]
        return InMemoryEventStream(events, sort=False)

    def keyed_workload(
        self,
        size: int,
        duration: float,
        entities: int = 8,
        key: str = "entity_id",
        variant: int = 0,
        seed: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> Tuple[Pattern, InMemoryEventStream]:
        """Convenience bundle: keyed pattern plus matching keyed stream."""
        pattern = self.keyed_sequence_pattern(size, key=key, variant=variant)
        stream = self.keyed_stream(
            duration, entities=entities, key=key, seed=seed, max_events=max_events
        )
        return pattern, stream

    def composite_pattern(self, size: int, variant: int = 0) -> CompositePattern:
        """A disjunction of three independent sequences of the given size."""
        subpatterns = [
            self.sequence_pattern(size, variant=variant * 10 + branch)
            for branch in range(3)
        ]
        return CompositePattern(
            subpatterns, name=f"{self.dataset.name}-composite-{size}-{variant}"
        )

    def similar_sequence_patterns(
        self, count: int, size: int = 3, variant: int = 0
    ) -> List[Pattern]:
        """A family of ``count`` sequences sharing a common declared prefix.

        The multi-pattern serving workload: every pattern opens with the
        same ``size - 1`` items over the dataset's *rarest* event types
        (rare openers keep the lazy-NFA plan order aligned with the
        declared prefix, so the prefix stays shareable after re-planning)
        and closes with a final item cycling over the remaining,
        higher-rate types.  The chain conditions over the prefix are the
        *same condition objects* in every pattern — exactly what a real
        deployment registering one predicate library would do — so their
        :meth:`~repro.conditions.Condition.cache_key` sets are provably
        identical even for opaque predicate conditions and the prefix is
        shareable across the whole family.
        """
        if size < 2:
            raise DatasetError("similar patterns need size >= 2 (prefix + final)")
        names = self.dataset.type_names()
        if size > len(names):
            raise DatasetError(
                f"pattern size {size} exceeds the dataset's {len(names)} event types"
            )
        ranked = sorted(names, key=lambda n: self.dataset.true_rate(n, 0.0))
        # Prefix from the rare end of the rate ranking, skipping the very
        # rarest type: the extreme of the skew is often a physical outlier
        # (on the traffic feed, the near-empty road whose readings can never
        # co-move with a congested point), which would starve the shared
        # prefix of completions.
        skip = 1 if len(ranked) > size else 0
        prefix_types = [
            self.dataset.event_type(n) for n in ranked[skip : skip + size - 1]
        ]
        final_names = ranked[skip + size - 1 :] + ranked[:skip]
        variables = list(_VARIABLE_NAMES[:size])
        window = self._window_for(size)
        shared_chain = [
            self.dataset.condition_between(first, second)
            for first, second in zip(variables, variables[1:])
        ]
        patterns: List[Pattern] = []
        for index in range(count):
            final_name = final_names[index % len(final_names)]
            items = [
                PatternItem(v, t) for v, t in zip(variables, prefix_types)
            ] + [PatternItem(variables[-1], self.dataset.event_type(final_name))]
            conditions = ConditionSet()
            for condition in shared_chain:
                conditions.add(condition)
            patterns.append(
                Pattern(
                    PatternOperator.SEQUENCE,
                    items,
                    condition=conditions,
                    window=window,
                    name=f"{self.dataset.name}-sim-{size}-{variant}-{index}",
                )
            )
        return patterns

    # ------------------------------------------------------------------
    # Pattern sets
    # ------------------------------------------------------------------
    def pattern(self, family: str, size: int, variant: int = 0):
        """Build one pattern of the requested family and size."""
        if family not in PATTERN_FAMILIES:
            raise DatasetError(
                f"unknown pattern family {family!r}; expected one of {PATTERN_FAMILIES}"
            )
        builder = {
            "sequence": self.sequence_pattern,
            "conjunction": self.conjunction_pattern,
            "negation": self.negation_pattern,
            "kleene": self.kleene_pattern,
            "composite": self.composite_pattern,
        }[family]
        return builder(size, variant)

    def pattern_set(
        self, family: str, sizes: Sequence[int] = (3, 4, 5, 6, 7, 8)
    ) -> Dict[int, object]:
        """The paper's pattern set: one pattern per size for a family."""
        return {size: self.pattern(family, size) for size in sizes}

    def all_pattern_sets(
        self, sizes: Sequence[int] = (3, 4, 5, 6, 7, 8)
    ) -> Dict[str, Dict[int, object]]:
        """All five pattern families (used when averaging like the paper)."""
        return {family: self.pattern_set(family, sizes) for family in PATTERN_FAMILIES}

"""repro — adaptive complex event processing with invariant-based reoptimization.

A from-scratch reproduction of *"Efficient Adaptive Detection of Complex
Event Patterns"* (Kolchinsky & Schuster, 2018): a complete adaptive CEP
stack — pattern language, statistics estimation, plan generation (greedy
order-based and ZStream tree-based), runtime engines (lazy NFA and tree
evaluation), plan migration — plus the paper's contribution, the
invariant-based reoptimizing decision method, and the baselines it is
compared against.

Quick start::

    from repro import (
        EventType, PatternBuilder, EqualityCondition,
        GreedyOrderPlanner, InvariantBasedPolicy, AdaptiveCEPEngine,
    )

    camera_a, camera_b, camera_c = EventType("A"), EventType("B"), EventType("C")
    pattern = (
        PatternBuilder.sequence()
        .event(camera_a, "a").event(camera_b, "b").event(camera_c, "c")
        .where(EqualityCondition("a", "b", "person_id"))
        .where(EqualityCondition("b", "c", "person_id"))
        .within(600)
        .build()
    )
    engine = AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())
    for event in my_stream:
        for match in engine.process(event):
            print(match)

Scaling out
-----------
The :mod:`repro.parallel` subsystem scales detection beyond a single core
by data partitioning while leaving the per-shard ACEP algorithm untouched:
a :class:`~repro.parallel.ParallelCEPEngine` splits the stream across N
independent engine replicas (each with its own statistics collector and
adaptation controller), runs them under a pluggable executor (in-process
:class:`~repro.parallel.SerialExecutor` or process-pool
:class:`~repro.parallel.MultiprocessExecutor`), and merges the per-shard
matches into one deduplicated, timestamp-ordered
:class:`~repro.engine.RunResult`.  Partitioning strategies:
:class:`~repro.parallel.KeyPartitioner` (hash an event attribute; refused
when the pattern's conditions could correlate events across keys),
:class:`~repro.parallel.RoundRobinPartitioner` (single-event patterns
only) and the always-correct :class:`~repro.parallel.BroadcastPartitioner`.
Ingestion is batched (:func:`repro.parallel.batched`) so shards consume
chunks rather than single events::

    from repro.parallel import ParallelCEPEngine, KeyPartitioner, MultiprocessExecutor

    engine = ParallelCEPEngine(
        pattern, GreedyOrderPlanner(), InvariantBasedPolicy(),
        shards=4,
        partitioner=KeyPartitioner("person_id"),
        executor=MultiprocessExecutor(),
    )
    result = engine.run(my_stream)   # same matches as AdaptiveCEPEngine.run

With ``shards=1`` (and the default serial executor) the parallel engine is
bit-for-bit identical to :class:`AdaptiveCEPEngine` — sharding only decides
*which* events each replica sees, never *how* they are evaluated.

Serving streams
---------------
The :mod:`repro.streaming` subsystem turns either engine into a deployable,
continuously-ingesting service: lazy single-pass **sources** (rate-controlled
replay, JSONL/CSV file tailing, iterable/callback adapters), **sinks**
(JSONL match writer, collector, counters), a bounded staging buffer with
backpressure/load-shedding policies, and **checkpointing** that snapshots
engine state + source offset + sink positions so a killed pipeline resumes
with no lost and no duplicated matches::

    from repro.streaming import (
        StreamingPipeline, ReplaySource, JSONLMatchWriter, CheckpointStore,
    )

    pipeline = StreamingPipeline(
        engine,
        ReplaySource(recorded, rate=5000.0),
        sinks=[JSONLMatchWriter("matches.jsonl")],
        checkpoint_store=CheckpointStore("ckpt/"),
        checkpoint_every=10_000,
    )
    pipeline.run()   # resumes from ckpt/ when it holds a checkpoint

The command-line front-end is ``python -m repro.experiments.cli serve``.
"""

from repro.errors import (
    ReproError,
    SchemaError,
    PatternError,
    PlanError,
    StatisticsError,
    OptimizerError,
    AdaptationError,
    EngineError,
    PartitionError,
    ParallelExecutionError,
    DatasetError,
    ExperimentError,
    StreamingError,
    CheckpointError,
)
from repro.events import (
    Event,
    EventType,
    EventSchema,
    AttributeSpec,
    GeneratorEventStream,
    InMemoryEventStream,
)
from repro.conditions import (
    Condition,
    TrueCondition,
    AndCondition,
    OrCondition,
    NotCondition,
    AttributeComparisonCondition,
    AttributeThresholdCondition,
    EqualityCondition,
    PredicateCondition,
    ConditionSet,
)
from repro.patterns import (
    Pattern,
    PatternItem,
    PatternOperator,
    CompositePattern,
    PatternBuilder,
    seq,
    conjunction,
    disjunction,
)
from repro.statistics import (
    StatisticsSnapshot,
    StatisticsCollector,
    GroundTruthStatisticsProvider,
    StaticStatisticsProvider,
)
from repro.plans import OrderBasedPlan, TreeBasedPlan
from repro.optimizer import (
    GreedyOrderPlanner,
    ZStreamTreePlanner,
    TrivialOrderPlanner,
    TrivialTreePlanner,
    PlanGenerationResult,
)
from repro.adaptive import (
    AdaptationController,
    InvariantBasedPolicy,
    ConstantThresholdPolicy,
    UnconditionalPolicy,
    StaticPolicy,
    build_invariant_set,
    average_relative_difference,
    AverageRelativeDifferenceDistance,
)
from repro.engine import (
    AdaptiveCEPEngine,
    MultiPatternEngine,
    LazyNFAEngine,
    TreeEvaluationEngine,
    Match,
    RunResult,
)
from repro.datasets import TrafficDatasetSimulator, StockDatasetSimulator
from repro.workloads import WorkloadGenerator
from repro.metrics import RunMetrics
from repro.parallel import (
    ParallelCEPEngine,
    KeyPartitioner,
    RoundRobinPartitioner,
    BroadcastPartitioner,
    SerialExecutor,
    MultiprocessExecutor,
    EventBatch,
    batched,
)
from repro.streaming import (
    StreamingPipeline,
    PipelineResult,
    ReplaySource,
    IterableSource,
    CallbackSource,
    JSONLFileSource,
    CSVFileSource,
    CollectorSink,
    JSONLMatchWriter,
    MetricsSink,
    CheckpointStore,
)
from repro.obs import (
    ControlPlane,
    DecisionLog,
    DecisionRecord,
    MetricsRegistry,
    Tracer,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SchemaError",
    "PatternError",
    "PlanError",
    "StatisticsError",
    "OptimizerError",
    "AdaptationError",
    "EngineError",
    "PartitionError",
    "ParallelExecutionError",
    "DatasetError",
    "ExperimentError",
    "StreamingError",
    "CheckpointError",
    # events
    "Event",
    "EventType",
    "EventSchema",
    "AttributeSpec",
    "GeneratorEventStream",
    "InMemoryEventStream",
    # conditions
    "Condition",
    "TrueCondition",
    "AndCondition",
    "OrCondition",
    "NotCondition",
    "AttributeComparisonCondition",
    "AttributeThresholdCondition",
    "EqualityCondition",
    "PredicateCondition",
    "ConditionSet",
    # patterns
    "Pattern",
    "PatternItem",
    "PatternOperator",
    "CompositePattern",
    "PatternBuilder",
    "seq",
    "conjunction",
    "disjunction",
    # statistics
    "StatisticsSnapshot",
    "StatisticsCollector",
    "GroundTruthStatisticsProvider",
    "StaticStatisticsProvider",
    # plans
    "OrderBasedPlan",
    "TreeBasedPlan",
    # optimizer
    "GreedyOrderPlanner",
    "ZStreamTreePlanner",
    "TrivialOrderPlanner",
    "TrivialTreePlanner",
    "PlanGenerationResult",
    # adaptive
    "AdaptationController",
    "InvariantBasedPolicy",
    "ConstantThresholdPolicy",
    "UnconditionalPolicy",
    "StaticPolicy",
    "build_invariant_set",
    "average_relative_difference",
    "AverageRelativeDifferenceDistance",
    # engine
    "AdaptiveCEPEngine",
    "MultiPatternEngine",
    "LazyNFAEngine",
    "TreeEvaluationEngine",
    "Match",
    "RunResult",
    # datasets & workloads
    "TrafficDatasetSimulator",
    "StockDatasetSimulator",
    "WorkloadGenerator",
    # metrics
    "RunMetrics",
    # parallel execution
    "ParallelCEPEngine",
    "KeyPartitioner",
    "RoundRobinPartitioner",
    "BroadcastPartitioner",
    "SerialExecutor",
    "MultiprocessExecutor",
    "EventBatch",
    "batched",
    # streaming service runtime
    "StreamingPipeline",
    "PipelineResult",
    "ReplaySource",
    "IterableSource",
    "CallbackSource",
    "JSONLFileSource",
    "CSVFileSource",
    "CollectorSink",
    "JSONLMatchWriter",
    "MetricsSink",
    "CheckpointStore",
    # observability
    "ControlPlane",
    "DecisionLog",
    "DecisionRecord",
    "MetricsRegistry",
    "Tracer",
]

"""repro — adaptive complex event processing with invariant-based reoptimization.

A from-scratch reproduction of *"Efficient Adaptive Detection of Complex
Event Patterns"* (Kolchinsky & Schuster, 2018): a complete adaptive CEP
stack — pattern language, statistics estimation, plan generation (greedy
order-based and ZStream tree-based), runtime engines (lazy NFA and tree
evaluation), plan migration — plus the paper's contribution, the
invariant-based reoptimizing decision method, and the baselines it is
compared against.

Quick start::

    from repro import (
        EventType, PatternBuilder, EqualityCondition,
        GreedyOrderPlanner, InvariantBasedPolicy, AdaptiveCEPEngine,
    )

    camera_a, camera_b, camera_c = EventType("A"), EventType("B"), EventType("C")
    pattern = (
        PatternBuilder.sequence()
        .event(camera_a, "a").event(camera_b, "b").event(camera_c, "c")
        .where(EqualityCondition("a", "b", "person_id"))
        .where(EqualityCondition("b", "c", "person_id"))
        .within(600)
        .build()
    )
    engine = AdaptiveCEPEngine(pattern, GreedyOrderPlanner(), InvariantBasedPolicy())
    for event in my_stream:
        for match in engine.process(event):
            print(match)
"""

from repro.errors import (
    ReproError,
    SchemaError,
    PatternError,
    PlanError,
    StatisticsError,
    OptimizerError,
    AdaptationError,
    EngineError,
    DatasetError,
    ExperimentError,
)
from repro.events import Event, EventType, EventSchema, AttributeSpec, InMemoryEventStream
from repro.conditions import (
    Condition,
    TrueCondition,
    AndCondition,
    OrCondition,
    NotCondition,
    AttributeComparisonCondition,
    AttributeThresholdCondition,
    EqualityCondition,
    PredicateCondition,
    ConditionSet,
)
from repro.patterns import (
    Pattern,
    PatternItem,
    PatternOperator,
    CompositePattern,
    PatternBuilder,
    seq,
    conjunction,
    disjunction,
)
from repro.statistics import (
    StatisticsSnapshot,
    StatisticsCollector,
    GroundTruthStatisticsProvider,
    StaticStatisticsProvider,
)
from repro.plans import OrderBasedPlan, TreeBasedPlan
from repro.optimizer import (
    GreedyOrderPlanner,
    ZStreamTreePlanner,
    TrivialOrderPlanner,
    TrivialTreePlanner,
    PlanGenerationResult,
)
from repro.adaptive import (
    AdaptationController,
    InvariantBasedPolicy,
    ConstantThresholdPolicy,
    UnconditionalPolicy,
    StaticPolicy,
    build_invariant_set,
    average_relative_difference,
    AverageRelativeDifferenceDistance,
)
from repro.engine import (
    AdaptiveCEPEngine,
    MultiPatternEngine,
    LazyNFAEngine,
    TreeEvaluationEngine,
    Match,
    RunResult,
)
from repro.datasets import TrafficDatasetSimulator, StockDatasetSimulator
from repro.workloads import WorkloadGenerator
from repro.metrics import RunMetrics

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SchemaError",
    "PatternError",
    "PlanError",
    "StatisticsError",
    "OptimizerError",
    "AdaptationError",
    "EngineError",
    "DatasetError",
    "ExperimentError",
    # events
    "Event",
    "EventType",
    "EventSchema",
    "AttributeSpec",
    "InMemoryEventStream",
    # conditions
    "Condition",
    "TrueCondition",
    "AndCondition",
    "OrCondition",
    "NotCondition",
    "AttributeComparisonCondition",
    "AttributeThresholdCondition",
    "EqualityCondition",
    "PredicateCondition",
    "ConditionSet",
    # patterns
    "Pattern",
    "PatternItem",
    "PatternOperator",
    "CompositePattern",
    "PatternBuilder",
    "seq",
    "conjunction",
    "disjunction",
    # statistics
    "StatisticsSnapshot",
    "StatisticsCollector",
    "GroundTruthStatisticsProvider",
    "StaticStatisticsProvider",
    # plans
    "OrderBasedPlan",
    "TreeBasedPlan",
    # optimizer
    "GreedyOrderPlanner",
    "ZStreamTreePlanner",
    "TrivialOrderPlanner",
    "TrivialTreePlanner",
    "PlanGenerationResult",
    # adaptive
    "AdaptationController",
    "InvariantBasedPolicy",
    "ConstantThresholdPolicy",
    "UnconditionalPolicy",
    "StaticPolicy",
    "build_invariant_set",
    "average_relative_difference",
    "AverageRelativeDifferenceDistance",
    # engine
    "AdaptiveCEPEngine",
    "MultiPatternEngine",
    "LazyNFAEngine",
    "TreeEvaluationEngine",
    "Match",
    "RunResult",
    # datasets & workloads
    "TrafficDatasetSimulator",
    "StockDatasetSimulator",
    "WorkloadGenerator",
    # metrics
    "RunMetrics",
]

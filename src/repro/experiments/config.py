"""Experiment configuration objects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ExperimentError


@dataclass(frozen=True)
class PolicySpec:
    """Declarative description of an adaptation method.

    ``kind`` is one of ``"invariant"``, ``"threshold"``, ``"unconditional"``
    and ``"static"``.  The remaining fields parametrise the invariant and
    threshold methods.
    """

    kind: str
    distance: float = 0.0
    k: int = 1
    threshold: float = 0.5
    use_davg_distance: bool = False
    label: Optional[str] = None

    VALID_KINDS = ("invariant", "threshold", "unconditional", "static")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ExperimentError(
                f"unknown policy kind {self.kind!r}; expected one of {self.VALID_KINDS}"
            )

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        if self.kind == "invariant":
            suffix = "davg" if self.use_davg_distance else f"d={self.distance:g}"
            if self.k != 1:
                suffix += f",K={self.k}"
            return f"invariant({suffix})"
        if self.kind == "threshold":
            return f"threshold(t={self.threshold:g})"
        return self.kind


@dataclass
class ExperimentConfig:
    """Scale parameters shared by the experiment drivers.

    The defaults are sized for the benchmark suite (minutes, not hours); the
    paper-scale runs simply use larger ``duration`` / ``max_events``.
    """

    dataset: str = "traffic"
    algorithm: str = "greedy"
    duration: float = 240.0
    max_events: Optional[int] = 30000
    monitoring_interval: float = 1.0
    stream_seed: int = 1
    workload_seed: int = 0
    sizes: Tuple[int, ...] = (3, 4, 5, 6, 7, 8)
    pattern_families: Tuple[str, ...] = ("sequence",)
    variants_per_cell: int = 1
    base_rate: Optional[float] = None
    num_types: Optional[int] = None
    window: Optional[float] = None
    shards: int = 1
    partition_by: Optional[str] = None
    batch_size: int = 256
    executor: str = "serial"
    backend: str = "inline"
    workers: int = 0
    introspect: bool = False
    compile_mode: str = "interpreted"

    def __post_init__(self) -> None:
        if self.algorithm not in ("greedy", "zstream"):
            raise ExperimentError(
                f"unknown algorithm {self.algorithm!r}; expected 'greedy' or 'zstream'"
            )
        if self.duration <= 0:
            raise ExperimentError("duration must be positive")
        if self.monitoring_interval <= 0:
            raise ExperimentError("monitoring_interval must be positive")
        if self.shards < 1:
            raise ExperimentError("shards must be a positive integer")
        if self.batch_size < 1:
            raise ExperimentError("batch_size must be a positive integer")
        if self.executor not in ("serial", "process"):
            raise ExperimentError(
                f"unknown executor {self.executor!r}; expected 'serial' or 'process'"
            )
        if self.backend not in ("inline", "thread", "process"):
            raise ExperimentError(
                f"unknown backend {self.backend!r}; expected 'inline', "
                "'thread' or 'process'"
            )
        if self.workers < 0:
            raise ExperimentError("workers must be non-negative (0 = use shards)")
        if self.compile_mode not in ("interpreted", "compiled", "indexed"):
            raise ExperimentError(
                f"unknown compile_mode {self.compile_mode!r}; expected "
                "'interpreted', 'compiled' or 'indexed'"
            )

    @property
    def effective_workers(self) -> int:
        """Shard-worker count for streaming backends (``workers`` or ``shards``)."""
        return self.workers if self.workers > 0 else self.shards

    @property
    def engine_replicas(self) -> int:
        """Engine replicas the streaming engine will actually run.

        Worker backends host ``effective_workers`` replicas; the inline
        backend shards in-process by ``shards`` alone.
        """
        return self.effective_workers if self.backend != "inline" else self.shards

    def dataset_kwargs(self) -> dict:
        kwargs: dict = {"duration_hint": self.duration}
        if self.base_rate is not None:
            kwargs["base_rate"] = self.base_rate
        if self.num_types is not None:
            kwargs["num_types"] = self.num_types
        return kwargs


#: The four adaptation methods compared in Figures 6–9 of the paper.
def default_method_specs(
    invariant_distance: float = 0.1, threshold: float = 0.5
) -> Sequence[PolicySpec]:
    return (
        PolicySpec("invariant", distance=invariant_distance, label="invariant"),
        PolicySpec("threshold", threshold=threshold, label="threshold"),
        PolicySpec("unconditional", label="unconditional"),
        PolicySpec("static", label="static"),
    )

"""Shared machinery for running one (dataset, pattern, algorithm, policy) cell."""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.adaptive import (
    AverageRelativeDifferenceDistance,
    ConstantThresholdPolicy,
    InvariantBasedPolicy,
    ReoptimizationPolicy,
    StaticPolicy,
    UnconditionalPolicy,
)
from repro.datasets import DatasetSimulator, dataset_by_name
from repro.engine import AdaptiveCEPEngine, MultiPatternEngine
from repro.errors import ExperimentError
from repro.events import InMemoryEventStream
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.metrics import RunMetrics
from repro.optimizer import GreedyOrderPlanner, PlanGenerator, ZStreamTreePlanner
from repro.parallel import (
    BroadcastPartitioner,
    KeyPartitioner,
    MultiprocessExecutor,
    ParallelCEPEngine,
    SerialExecutor,
)
from repro.patterns import CompositePattern, Pattern
from repro.workloads import WorkloadGenerator

PatternLike = Union[Pattern, CompositePattern]


def build_partitioner(partition_by: Optional[str]):
    """Key partitioner when an attribute is named, broadcast otherwise."""
    if partition_by:
        return KeyPartitioner(partition_by)
    return BroadcastPartitioner()


def build_executor(executor: str):
    """Executor factory: ``"serial"`` or ``"process"``."""
    if executor == "serial":
        return SerialExecutor()
    if executor == "process":
        return MultiprocessExecutor()
    raise ExperimentError(f"unknown executor {executor!r}")


def build_planner(algorithm: str) -> PlanGenerator:
    """Planner factory: ``"greedy"`` or ``"zstream"``."""
    if algorithm == "greedy":
        return GreedyOrderPlanner()
    if algorithm == "zstream":
        return ZStreamTreePlanner()
    raise ExperimentError(f"unknown algorithm {algorithm!r}")


def build_policy(spec: PolicySpec) -> ReoptimizationPolicy:
    """Policy factory from a declarative :class:`PolicySpec`."""
    if spec.kind == "invariant":
        distance: "float | AverageRelativeDifferenceDistance"
        if spec.use_davg_distance:
            distance = AverageRelativeDifferenceDistance()
        else:
            distance = spec.distance
        return InvariantBasedPolicy(k=spec.k, distance=distance)
    if spec.kind == "threshold":
        return ConstantThresholdPolicy(spec.threshold)
    if spec.kind == "unconditional":
        return UnconditionalPolicy()
    if spec.kind == "static":
        return StaticPolicy()
    raise ExperimentError(f"unknown policy kind {spec.kind!r}")


def build_dataset(config: ExperimentConfig) -> DatasetSimulator:
    return dataset_by_name(config.dataset, **config.dataset_kwargs())


def build_workload(config: ExperimentConfig, dataset: DatasetSimulator) -> WorkloadGenerator:
    return WorkloadGenerator(dataset, seed=config.workload_seed, window=config.window)


def make_stream(
    dataset: DatasetSimulator, config: ExperimentConfig
) -> InMemoryEventStream:
    """Generate the shared input stream for one experiment configuration."""
    return dataset.generate(
        duration=config.duration,
        seed=config.stream_seed,
        max_events=config.max_events,
    )


def run_single(
    pattern: PatternLike,
    dataset: DatasetSimulator,
    stream: InMemoryEventStream,
    algorithm: str,
    policy_spec: PolicySpec,
    monitoring_interval: float = 1.0,
    shards: int = 1,
    partition_by: Optional[str] = None,
    batch_size: int = 256,
    executor: str = "serial",
) -> RunMetrics:
    """Run one adaptation method on one pattern over one stream.

    Every method starts from the same *uninformed* plan (Algorithm 1 invoked
    with an empty/default ``in_stat``: uniform rates yield the pattern-order
    plan).  The static method keeps this predefined plan for the whole run;
    adaptive methods may replace it as statistics are estimated on-line.
    This mirrors the paper's motivation that a-priori statistics are rarely
    available in practice.

    With ``shards > 1`` the run goes through the sharded
    :class:`~repro.parallel.ParallelCEPEngine` instead of the sequential
    engine: the stream is partitioned (``partition_by`` selects key
    partitioning, otherwise broadcast) across that many engine replicas
    and the merged metrics are returned.
    """
    planner = build_planner(algorithm)
    if shards > 1:
        engine: "ParallelCEPEngine | MultiPatternEngine | AdaptiveCEPEngine" = (
            ParallelCEPEngine(
                pattern,
                planner,
                build_policy(policy_spec),
                shards=shards,
                partitioner=build_partitioner(partition_by),
                executor=build_executor(executor),
                batch_size=batch_size,
                monitoring_interval=monitoring_interval,
            )
        )
    elif not isinstance(pattern, Pattern) and hasattr(pattern, "subpatterns"):
        from repro.multi.registry import as_pattern_set

        engine = MultiPatternEngine(
            as_pattern_set(pattern),
            planner,
            policy_factory=lambda: build_policy(policy_spec),
            initial_snapshot=None,
            monitoring_interval=monitoring_interval,
        )
    else:
        engine = AdaptiveCEPEngine(
            pattern,
            planner,
            build_policy(policy_spec),
            initial_snapshot=None,
            monitoring_interval=monitoring_interval,
        )
    result = engine.run(stream)
    return result.metrics


def run_methods_for_pattern(
    pattern: PatternLike,
    dataset: DatasetSimulator,
    stream: InMemoryEventStream,
    algorithm: str,
    specs,
    monitoring_interval: float = 1.0,
) -> Dict[str, RunMetrics]:
    """Run several adaptation methods on the same pattern and stream."""
    return {
        spec.name: run_single(
            pattern, dataset, stream, algorithm, spec, monitoring_interval
        )
        for spec in specs
    }

"""Plain-text and CSV rendering of experiment rows.

The benchmark harness prints these tables so that each bench regenerates
the same rows/series as the paper's figures and tables.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered: List[List[str]] = [
        [_format_value(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    output = io.StringIO()
    if title:
        output.write(title + "\n")
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    output.write(header + "\n")
    output.write("  ".join("-" * width for width in widths) + "\n")
    for line in rendered:
        output.write("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) + "\n")
    return output.getvalue()


def rows_to_csv(
    rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None
) -> str:
    """Render rows as CSV text (for saving alongside benchmark output)."""
    rows = list(rows)
    if not rows:
        return ""
    columns = list(columns) if columns else list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(column, "")) for column in columns))
    return "\n".join(lines) + "\n"


def pivot(
    rows: Sequence[Dict[str, object]],
    index: str,
    column: str,
    value: str,
) -> List[Dict[str, object]]:
    """Pivot long-format rows into one row per ``index`` value.

    Used to print figures the way the paper draws them (pattern size on the
    x-axis, one column per adaptation method / distance value).
    """
    table: Dict[object, Dict[str, object]] = {}
    column_order: List[str] = []
    for row in rows:
        key = row[index]
        entry = table.setdefault(key, {index: key})
        column_name = str(row[column])
        if column_name not in column_order:
            column_order.append(column_name)
        entry[column_name] = row[value]
    ordered_keys = sorted(table)
    return [table[key] for key in ordered_keys]

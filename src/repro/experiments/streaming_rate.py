"""Throughput and latency under a controlled arrival rate.

The streaming experiment the batch drivers cannot run: feed one recorded
workload through the :class:`~repro.streaming.StreamingPipeline` at a
sweep of offered arrival rates and report, per rate, the achieved
throughput, the per-event engine latency (mean and worst case), the
staging-queue high-water mark and the match count.  At offered rates below
engine capacity the pipeline keeps up (achieved ≈ offered, queue shallow);
past capacity the source can no longer be paced and the latency/queue
columns show where the service saturates.

Rate ``0`` means *unthrottled* — the replay is pulled as fast as the
engine drains it, so that row doubles as the capacity measurement the
other rows are compared against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.engine import AdaptiveCEPEngine
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import (
    build_dataset,
    build_partitioner,
    build_planner,
    build_policy,
    build_workload,
)
from repro.parallel import ParallelCEPEngine
from repro.streaming import CollectorSink, ReplaySource, StreamingPipeline

#: Offered arrival rates (events/second); 0 = unthrottled capacity probe.
DEFAULT_RATES = (0.0, 2000.0, 8000.0, 32000.0)


def _build_streaming_engine(
    config: ExperimentConfig, pattern, spec: PolicySpec
):
    """A fresh engine in streaming mode, sharded when the config asks for it."""
    planner = build_planner(config.algorithm)
    policy = build_policy(spec)
    if config.shards > 1:
        return ParallelCEPEngine(
            pattern,
            planner,
            policy,
            shards=config.shards,
            partitioner=build_partitioner(config.partition_by),
            monitoring_interval=config.monitoring_interval,
        )
    return AdaptiveCEPEngine(
        pattern,
        planner,
        policy,
        monitoring_interval=config.monitoring_interval,
    )


def rate_sweep_rows(
    config: ExperimentConfig,
    rates: Sequence[float] = DEFAULT_RATES,
    size: int = 3,
    entities: int = 8,
    policy_spec: Optional[PolicySpec] = None,
) -> List[Dict[str, float]]:
    """One row per offered rate: achieved throughput, latency, queue depth.

    The workload is the keyed multi-entity stream when the config names a
    partition key (so sharded configs detect losslessly), the plain dataset
    stream otherwise; every rate replays the *same* recorded events, so the
    ``matches`` column must be constant down the table — a built-in
    correctness check, like the match columns of the batch experiments.
    """
    spec = policy_spec or PolicySpec("invariant", distance=0.1, label="invariant")
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    if config.partition_by:
        pattern, stream = workload.keyed_workload(
            size,
            duration=config.duration,
            entities=entities,
            key=config.partition_by,
            seed=config.stream_seed,
            max_events=config.max_events,
        )
    else:
        pattern = workload.sequence_pattern(size)
        stream = dataset.generate(
            duration=config.duration,
            seed=config.stream_seed,
            max_events=config.max_events,
        )
    events = stream.to_list()

    rows: List[Dict[str, float]] = []
    for rate in rates:
        engine = _build_streaming_engine(config, pattern, spec)
        collector = CollectorSink()
        pipeline = StreamingPipeline(
            engine,
            ReplaySource(events, rate=rate or None),
            sinks=[collector],
            buffer_capacity=max(config.batch_size, 1),
        )
        result = pipeline.run()
        metrics = result.metrics
        rows.append(
            {
                "dataset": config.dataset,
                "algorithm": config.algorithm,
                "size": size,
                "shards": config.shards,
                "rate": rate,
                "throughput": result.throughput,
                "matches": float(len(collector.matches)),
                "engine_ms_mean": metrics.engine.mean_seconds * 1e3,
                "engine_ms_max": metrics.engine.max_seconds * 1e3,
                "queue_high_water": float(metrics.queue_high_water),
                "shed": float(metrics.events_shed),
            }
        )
    return rows

"""Throughput and latency under a controlled arrival rate.

The streaming experiment the batch drivers cannot run: feed one recorded
workload through the :class:`~repro.streaming.StreamingPipeline` at a
sweep of offered arrival rates and report, per rate, the achieved
throughput, the per-event engine latency (mean and worst case), the
staging-queue high-water mark and the match count.  At offered rates below
engine capacity the pipeline keeps up (achieved ≈ offered, queue shallow);
past capacity the source can no longer be paced and the latency/queue
columns show where the service saturates.

Rate ``0`` means *unthrottled* — the replay is pulled as fast as the
engine drains it, so that row doubles as the capacity measurement the
other rows are compared against.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.engine import AdaptiveCEPEngine
from repro.patterns import Pattern
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import (
    build_dataset,
    build_partitioner,
    build_planner,
    build_policy,
    build_workload,
)
from repro.parallel import ParallelCEPEngine
from repro.streaming import (
    CheckpointStore,
    CollectorSink,
    ReplaySource,
    StreamingPipeline,
    backend_by_name,
    bounded_shuffle,
)

#: Offered arrival rates (events/second); 0 = unthrottled capacity probe.
DEFAULT_RATES = (0.0, 2000.0, 8000.0, 32000.0)

#: Worker counts compared by the multi-core scaling sweep.
DEFAULT_WORKER_COUNTS = (1, 2, 4)


def build_streaming_engine(
    config: ExperimentConfig, pattern, spec: PolicySpec
):
    """A fresh engine (or worker backend) in streaming mode.

    With ``backend != "inline"`` the result is a thread/process worker
    backend hosting ``config.effective_workers`` engine replicas; otherwise
    a bare engine, sharded in-process when the config asks for it.
    """
    planner = build_planner(config.algorithm)
    policy = build_policy(spec)
    if config.backend != "inline":
        engine = ParallelCEPEngine(
            pattern,
            planner,
            policy,
            shards=config.effective_workers,
            partitioner=build_partitioner(config.partition_by),
            monitoring_interval=config.monitoring_interval,
            introspect=config.introspect,
            compile_mode=config.compile_mode,
        )
        return backend_by_name(config.backend, engine)
    if config.shards > 1:
        return ParallelCEPEngine(
            pattern,
            planner,
            policy,
            shards=config.shards,
            partitioner=build_partitioner(config.partition_by),
            monitoring_interval=config.monitoring_interval,
            introspect=config.introspect,
            compile_mode=config.compile_mode,
        )
    if not isinstance(pattern, Pattern) and hasattr(pattern, "subpatterns"):
        from repro.engine import MultiPatternEngine
        from repro.multi.registry import as_pattern_set

        return MultiPatternEngine(
            as_pattern_set(pattern),
            planner,
            policy_factory=lambda: build_policy(spec),
            monitoring_interval=config.monitoring_interval,
            introspect=config.introspect,
            compile_mode=config.compile_mode,
        )
    return AdaptiveCEPEngine(
        pattern,
        planner,
        policy,
        monitoring_interval=config.monitoring_interval,
        introspect=config.introspect,
        compile_mode=config.compile_mode,
    )


def rate_sweep_rows(
    config: ExperimentConfig,
    rates: Sequence[float] = DEFAULT_RATES,
    size: int = 3,
    entities: int = 8,
    patterns: int = 1,
    policy_spec: Optional[PolicySpec] = None,
    shuffle_slack: float = 0.0,
    max_lateness: Optional[float] = None,
    late_policy: str = "drop",
    checkpoint_every: int = 0,
    checkpoint_mode: str = "full",
    checkpoint_full_every: int = 8,
) -> List[Dict[str, float]]:
    """One row per offered rate: achieved throughput, latency, queue depth.

    The workload is the keyed multi-entity stream when the config names a
    partition key (so sharded configs detect losslessly), the plain dataset
    stream otherwise; every rate replays the *same* recorded events, so the
    ``matches`` column must be constant down the table — a built-in
    correctness check, like the match columns of the batch experiments.

    ``shuffle_slack`` injects seeded bounded disorder into the replay and
    ``max_lateness``/``late_policy`` configure the pipeline's event-time
    ordering stage — the out-of-order smoke mode: with
    ``max_lateness >= shuffle_slack`` the ``matches`` column must *still*
    be constant, now also proving the reordering path.

    ``checkpoint_every`` > 0 additionally checkpoints each run (full or
    delta per ``checkpoint_mode``) into a per-rate temporary store and adds
    checkpoint-size/pause columns, so the checkpointing overhead at a
    given cadence can be read off the same sweep.

    ``patterns`` > 1 serves a :class:`~repro.multi.PatternSet` of that many
    similar sequence patterns through the shared one-pass multi-pattern
    engine instead of a single sequence pattern.
    """
    spec = policy_spec or PolicySpec("invariant", distance=0.1, label="invariant")
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    if config.partition_by:
        pattern, stream = workload.keyed_workload(
            size,
            duration=config.duration,
            entities=entities,
            key=config.partition_by,
            seed=config.stream_seed,
            max_events=config.max_events,
        )
    else:
        if patterns > 1:
            from repro.multi import PatternSet

            pattern = PatternSet(
                workload.similar_sequence_patterns(patterns, size=size)
            )
        else:
            pattern = workload.sequence_pattern(size)
        stream = dataset.generate(
            duration=config.duration,
            seed=config.stream_seed,
            max_events=config.max_events,
        )
    events = stream.to_list()
    if shuffle_slack > 0:
        events = bounded_shuffle(events, shuffle_slack, seed=config.stream_seed)

    rows: List[Dict[str, float]] = []
    for rate in rates:
        engine = build_streaming_engine(config, pattern, spec)
        collector = CollectorSink()
        store = None
        if checkpoint_every > 0:
            store = CheckpointStore(
                tempfile.mkdtemp(prefix=f"stream-bench-ckpt-{rate:g}-")
            )
        pipeline = StreamingPipeline(
            engine,
            ReplaySource(events, rate=rate or None),
            sinks=[collector],
            buffer_capacity=max(config.batch_size, 1),
            max_lateness=max_lateness,
            late_policy=late_policy,
            checkpoint_store=store,
            checkpoint_every=checkpoint_every,
            checkpoint_mode=checkpoint_mode,
            checkpoint_full_every=checkpoint_full_every,
        )
        try:
            result = pipeline.run(resume=False)
        finally:
            # The per-rate store only exists to measure checkpoint cost.
            if store is not None:
                shutil.rmtree(store.directory, ignore_errors=True)
        metrics = result.metrics
        row = {
            "dataset": config.dataset,
            "algorithm": config.algorithm,
            "size": size,
            "shards": config.shards,
            "rate": rate,
            "throughput": result.throughput,
            "matches": float(len(collector.matches)),
            "engine_ms_mean": metrics.engine.mean_seconds * 1e3,
            "engine_ms_max": metrics.engine.max_seconds * 1e3,
            "queue_high_water": float(metrics.queue_high_water),
            "events_ingested": float(metrics.events_ingested),
            "shed": float(metrics.events_shed),
            "shed_fraction": metrics.shed_fraction,
            "late": float(metrics.late_events),
            "watermark_lag_max": metrics.watermark_lag.max_seconds,
            "partial_matches_high_water": float(metrics.partial_matches_high_water),
        }
        if checkpoint_every > 0:
            row["checkpoints"] = float(metrics.checkpoints_written)
            row["checkpoint_bytes"] = float(metrics.checkpoint_bytes_written)
            row["bytes_per_checkpoint"] = metrics.checkpoint_bytes_mean
            row["checkpoint_ms_mean"] = metrics.checkpoint.mean_seconds * 1e3
        rows.append(row)
    return rows


def worker_sweep_rows(
    config: ExperimentConfig,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    size: int = 3,
    entities: int = 8,
    backend: Optional[str] = None,
    policy_spec: Optional[PolicySpec] = None,
    shuffle_slack: float = 0.0,
    max_lateness: Optional[float] = None,
    late_policy: str = "drop",
) -> List[Dict[str, float]]:
    """Multi-core streaming scaling: one row per worker count.

    Replays the keyed multi-entity workload unthrottled through the
    single-threaded inline pipeline (the baseline row, ``workers=0``) and
    then through the requested worker backend at each worker count.  Every
    run replays the *same* recorded events, so the ``matches`` column must
    be constant down the table — the differential check the equivalence
    suite automates.  ``speedup`` is relative to the inline baseline.
    """
    spec = policy_spec or PolicySpec("invariant", distance=0.1, label="invariant")
    backend_name = backend or (
        config.backend if config.backend != "inline" else "process"
    )
    key = config.partition_by or "entity_id"
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    pattern, stream = workload.keyed_workload(
        size,
        duration=config.duration,
        entities=entities,
        key=key,
        seed=config.stream_seed,
        max_events=config.max_events,
    )
    events = stream.to_list()
    if shuffle_slack > 0:
        events = bounded_shuffle(events, shuffle_slack, seed=config.stream_seed)

    def run_once(run_config: ExperimentConfig):
        engine = build_streaming_engine(run_config, pattern, spec)
        collector = CollectorSink()
        pipeline = StreamingPipeline(
            engine,
            ReplaySource(events),
            sinks=[collector],
            buffer_capacity=max(config.batch_size, 1),
            max_lateness=max_lateness,
            late_policy=late_policy,
        )
        result = pipeline.run()
        return result, collector

    def row_from(run_config, label, workers, result, collector, baseline):
        metrics = result.metrics
        lanes = metrics.workers.values()
        return {
            "dataset": config.dataset,
            "algorithm": config.algorithm,
            "size": size,
            "backend": label,
            "workers": workers,
            "throughput": result.throughput,
            "speedup": (result.throughput / baseline) if baseline else 1.0,
            "matches": float(len(collector.matches)),
            "engine_ms_mean": metrics.engine.mean_seconds * 1e3,
            "worker_queue_hw": float(
                max((lane.queue_high_water for lane in lanes), default=0)
            ),
        }

    baseline_config = replace(
        config, backend="inline", shards=1, workers=0, partition_by=key
    )
    result, collector = run_once(baseline_config)
    baseline = result.throughput
    rows = [row_from(baseline_config, "inline", 0, result, collector, baseline)]
    for workers in worker_counts:
        run_config = replace(
            config, backend=backend_name, workers=int(workers), partition_by=key
        )
        result, collector = run_once(run_config)
        rows.append(
            row_from(run_config, backend_name, int(workers), result, collector, baseline)
        )
    return rows

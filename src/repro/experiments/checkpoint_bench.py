"""Full-vs-delta checkpoint comparison — the CI perf-and-recovery gate.

Replays one recorded workload through the streaming pipeline twice at the
same checkpoint cadence — once with ``checkpoint_mode="full"`` and once
with ``checkpoint_mode="delta"`` — and reports, per mode, the bytes
persisted per checkpoint and the snapshot pause time.  Each mode is then
killed mid-run (for delta mode the kill is placed *between a base and its
next base*, so the resume replays a base-plus-deltas chain) and resumed,
and the served match file is compared byte-for-byte against an
uninterrupted reference run.

:func:`enforce_checkpoint_gate` turns the rows into a pass/fail signal:
delta checkpoints must write **strictly fewer** bytes per checkpoint than
full checkpoints on the same workload, both modes must produce the
reference match set, and both kill/resume runs must recover losslessly.
CI runs this on the stocks workload and fails the build on any violation,
so the incremental-checkpoint path cannot silently regress into
"correct but no smaller than a full snapshot".
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import build_dataset, build_workload
from repro.experiments.streaming_rate import build_streaming_engine
from repro.streaming import (
    DEFAULT_CHECKPOINT_FULL_EVERY,
    CheckpointStore,
    CollectorSink,
    JSONLMatchWriter,
    ReplaySource,
    StreamingPipeline,
)
from repro.streaming.sinks import match_record

#: Checkpoint cadence (events) used when the caller does not override it.
DEFAULT_CHECKPOINT_EVERY = 500

#: Deltas per chain in delta mode (the pipeline-wide default).
DEFAULT_FULL_EVERY = DEFAULT_CHECKPOINT_FULL_EVERY


def _reference_records(config: ExperimentConfig, pattern, events, spec) -> List[str]:
    """Sorted match records of an uninterrupted, checkpoint-free run."""
    collector = CollectorSink()
    pipeline = StreamingPipeline(
        build_streaming_engine(config, pattern, spec),
        ReplaySource(events),
        sinks=[collector],
        buffer_capacity=max(config.batch_size, 1),
    )
    pipeline.run()
    return sorted(json.dumps(match_record(match)) for match in collector.matches)


def checkpoint_mode_rows(
    config: ExperimentConfig,
    size: int = 3,
    entities: int = 8,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    checkpoint_full_every: int = DEFAULT_FULL_EVERY,
    modes: Sequence[str] = ("full", "delta"),
    policy_spec: Optional[PolicySpec] = None,
    workdir: Optional[str] = None,
) -> List[Dict[str, object]]:
    """One row per checkpoint mode: bytes, pause time, recovery verdict.

    Every run replays the *same* recorded events, so ``matches`` must be
    constant down the table; ``recovered`` is 1.0 when the mode's
    kill/resume run served exactly the reference match set.  The kill
    point is placed between two bases (after the first base plus at least
    one delta at the configured cadence), which in delta mode forces the
    resume to replay a base + deltas chain.
    """
    spec = policy_spec or PolicySpec("invariant", distance=0.1, label="invariant")
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    if config.partition_by:
        pattern, stream = workload.keyed_workload(
            size,
            duration=config.duration,
            entities=entities,
            key=config.partition_by,
            seed=config.stream_seed,
            max_events=config.max_events,
        )
    else:
        pattern = workload.sequence_pattern(size)
        stream = dataset.generate(
            duration=config.duration,
            seed=config.stream_seed,
            max_events=config.max_events,
        )
    events = stream.to_list()
    if checkpoint_every * 3 > len(events):
        checkpoint_every = max(1, len(events) // 4)
    kill_at = checkpoint_every * 2 + checkpoint_every // 2
    expected = _reference_records(config, pattern, events, spec)
    owns_workdir = workdir is None
    base_dir = workdir or tempfile.mkdtemp(prefix="checkpoint-bench-")
    try:
        return _measure_modes(
            config,
            pattern,
            events,
            spec,
            expected,
            base_dir,
            modes,
            size,
            checkpoint_every,
            checkpoint_full_every,
            kill_at,
        )
    finally:
        if owns_workdir:
            shutil.rmtree(base_dir, ignore_errors=True)


def _measure_modes(
    config,
    pattern,
    events,
    spec,
    expected,
    base_dir,
    modes,
    size,
    checkpoint_every,
    checkpoint_full_every,
    kill_at,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for mode in modes:
        mode_dir = os.path.join(base_dir, mode)

        def build_pipeline(sink, store):
            return StreamingPipeline(
                build_streaming_engine(config, pattern, spec),
                ReplaySource(events),
                sinks=[sink],
                buffer_capacity=max(config.batch_size, 1),
                checkpoint_store=store,
                checkpoint_every=checkpoint_every,
                checkpoint_mode=mode,
                checkpoint_full_every=checkpoint_full_every,
            )

        # Throughput/size measurement: one uninterrupted checkpointed run.
        collector = CollectorSink()
        bench_store = CheckpointStore(os.path.join(mode_dir, "bench"), keep=3)
        result = build_pipeline(collector, bench_store).run()
        metrics = result.metrics
        reasons = bench_store.stats().get("reasons", {})
        reason_summary = (
            " ".join(f"{k}:{v}" for k, v in sorted(reasons.items())) or "-"
        )
        records = sorted(
            json.dumps(match_record(match)) for match in collector.matches
        )

        # Recovery measurement: kill mid-chain, resume, compare the file.
        sink_path = os.path.join(mode_dir, "matches.jsonl")
        recovery_store = CheckpointStore(os.path.join(mode_dir, "recovery"), keep=3)
        build_pipeline(JSONLMatchWriter(sink_path), recovery_store).run(
            max_events=kill_at, final_checkpoint=False
        )
        resumed = build_pipeline(
            JSONLMatchWriter(sink_path), recovery_store
        ).run()
        with open(sink_path, "r", encoding="utf-8") as handle:
            served = sorted(line for line in handle.read().splitlines() if line)

        rows.append(
            {
                "dataset": config.dataset,
                "algorithm": config.algorithm,
                "size": size,
                "mode": mode,
                "events": float(result.events_processed),
                "matches": float(len(collector.matches)),
                "matches_expected": float(len(expected)),
                "matches_ok": float(records == expected),
                "throughput": result.throughput,
                "checkpoints": float(metrics.checkpoints_written),
                "checkpoint_bytes": float(metrics.checkpoint_bytes_written),
                "bytes_per_checkpoint": metrics.checkpoint_bytes_mean,
                "checkpoint_ms_mean": metrics.checkpoint.mean_seconds * 1e3,
                "checkpoint_ms_max": metrics.checkpoint.max_seconds * 1e3,
                "kill_at": float(kill_at),
                "resumed_from": float(resumed.resumed_from),
                "recovered": float(served == expected),
                "reasons": reason_summary,
            }
        )
    return rows


def enforce_checkpoint_gate(rows: List[Dict[str, float]]) -> List[str]:
    """Gate violations (empty = the build may pass).

    * delta-mode bytes-per-checkpoint must be strictly smaller than
      full-mode bytes-per-checkpoint;
    * every mode must detect the reference match set;
    * every mode's kill/resume run must recover losslessly.
    """
    problems: List[str] = []
    by_mode = {row["mode"]: row for row in rows}
    for mode, row in by_mode.items():
        if row["matches_ok"] != 1.0:
            problems.append(
                f"{mode} mode detected {row['matches']:.0f} matches, expected "
                f"{row['matches_expected']:.0f}"
            )
        if row["recovered"] != 1.0:
            problems.append(
                f"{mode} mode lost or duplicated matches across kill/resume "
                f"(killed at event {row['kill_at']:.0f})"
            )
        if row["checkpoints"] < 3:
            problems.append(
                f"{mode} mode wrote only {row['checkpoints']:.0f} checkpoints; "
                "the workload is too short for a meaningful comparison"
            )
    full = by_mode.get("full")
    delta = by_mode.get("delta")
    if full is None or delta is None:
        problems.append("the gate needs both a full-mode and a delta-mode row")
    elif delta["bytes_per_checkpoint"] >= full["bytes_per_checkpoint"]:
        problems.append(
            f"delta checkpoints are not smaller: "
            f"{delta['bytes_per_checkpoint']:,.0f} bytes/checkpoint (delta) vs "
            f"{full['bytes_per_checkpoint']:,.0f} (full)"
        )
    return problems

"""Experiment drivers regenerating the paper's tables and figures.

Each module corresponds to one experiment of Section 5 / Appendix A:

* :mod:`repro.experiments.runner` — shared single-run machinery
  (build engine, run stream, collect :class:`~repro.metrics.RunMetrics`).
* :mod:`repro.experiments.distance_sweep` — Figure 5 (throughput vs the
  invariant distance ``d`` and the pattern size).
* :mod:`repro.experiments.distance_estimation` — Table 1 (quality of the
  average-relative-difference estimate ``davg`` vs the scanned optimum
  ``dopt``).
* :mod:`repro.experiments.method_comparison` — Figures 6–9 and the
  appendix Figures 10–29 (throughput, relative gain, reoptimization counts
  and computational overhead of the four adaptation methods).
* :mod:`repro.experiments.ablations` — K-invariant and invariant-selection
  strategy ablations (Sections 3.3 and 3.5).
* :mod:`repro.experiments.parallel_scaling` — sequential vs sharded
  throughput on a keyed workload (the scale-out experiment enabled by
  :mod:`repro.parallel`, beyond the paper).
* :mod:`repro.experiments.streaming_rate` — throughput/latency under a
  controlled arrival rate through the :mod:`repro.streaming` pipeline
  (the service-mode experiment, beyond the paper).
"""

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import (
    run_single,
    build_policy,
    build_planner,
    build_partitioner,
    build_executor,
    make_stream,
)
from repro.experiments.parallel_scaling import parallel_speedup_rows
from repro.experiments.method_comparison import (
    MethodComparisonResult,
    compare_methods,
    DEFAULT_METHODS,
)
from repro.experiments.distance_sweep import distance_sweep, find_optimal_distance
from repro.experiments.distance_estimation import distance_estimation_table
from repro.experiments.ablations import k_invariant_ablation, selection_strategy_ablation
from repro.experiments.streaming_rate import DEFAULT_RATES, rate_sweep_rows
from repro.experiments.reporting import format_table, rows_to_csv

__all__ = [
    "ExperimentConfig",
    "PolicySpec",
    "run_single",
    "build_policy",
    "build_planner",
    "build_partitioner",
    "build_executor",
    "make_stream",
    "parallel_speedup_rows",
    "MethodComparisonResult",
    "compare_methods",
    "DEFAULT_METHODS",
    "distance_sweep",
    "find_optimal_distance",
    "distance_estimation_table",
    "k_invariant_ablation",
    "selection_strategy_ablation",
    "rate_sweep_rows",
    "DEFAULT_RATES",
    "format_table",
    "rows_to_csv",
]

"""Comparison of the adaptation methods (Figures 6–9 and Appendix A).

For one dataset–algorithm combination the driver runs every adaptation
method on every pattern size (optionally averaged over several pattern
families, like the paper's main figures) and reports, per cell:

* throughput (events per second),
* relative throughput gain over the static (non-adaptive) method,
* the number of plan reoptimizations, and
* the computational-overhead fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import (
    build_dataset,
    build_workload,
    make_stream,
    run_single,
)
from repro.metrics import RunMetrics, aggregate_metrics

#: Default recommended distances / thresholds per dataset–algorithm pair,
#: found by parameter scanning on the synthetic datasets (the paper's
#: dopt / topt procedure applied to this reproduction); see EXPERIMENTS.md
#: for the scan outputs.
RECOMMENDED_DISTANCE = {
    ("traffic", "greedy"): 0.1,
    ("traffic", "zstream"): 0.1,
    ("stocks", "greedy"): 0.2,
    ("stocks", "zstream"): 0.2,
}
RECOMMENDED_THRESHOLD = {
    ("traffic", "greedy"): 0.5,
    ("traffic", "zstream"): 0.5,
    ("stocks", "greedy"): 0.4,
    ("stocks", "zstream"): 0.4,
}
#: Following Section 4.2's recommendation, the ZStream planner uses the
#: K-invariant method (several conditions per block) to avoid false
#: negatives caused by the large number of candidate trees per span.
RECOMMENDED_K = {"greedy": 1, "zstream": 3}


def DEFAULT_METHODS(dataset: str, algorithm: str) -> Sequence[PolicySpec]:
    """The four methods of Figures 6–9 with dataset-appropriate parameters."""
    distance = RECOMMENDED_DISTANCE.get((dataset, algorithm), 0.1)
    threshold = RECOMMENDED_THRESHOLD.get((dataset, algorithm), 0.5)
    k = RECOMMENDED_K.get(algorithm, 1)
    return (
        PolicySpec("invariant", distance=distance, k=k, label="invariant"),
        PolicySpec("threshold", threshold=threshold, label="threshold"),
        PolicySpec("unconditional", label="unconditional"),
        PolicySpec("static", label="static"),
    )


@dataclass
class MethodComparisonResult:
    """All rows of one dataset–algorithm comparison."""

    dataset: str
    algorithm: str
    rows: List[Dict[str, float]] = field(default_factory=list)

    def rows_for_method(self, method: str) -> List[Dict[str, float]]:
        return [row for row in self.rows if row["method"] == method]

    def rows_for_size(self, size: int) -> List[Dict[str, float]]:
        return [row for row in self.rows if row["size"] == size]

    def throughput(self, method: str, size: int) -> float:
        for row in self.rows:
            if row["method"] == method and row["size"] == size:
                return row["throughput"]
        raise KeyError(f"no row for method={method!r} size={size}")

    def mean_throughput(self, method: str) -> float:
        rows = self.rows_for_method(method)
        if not rows:
            return 0.0
        return sum(row["throughput"] for row in rows) / len(rows)

    def mean_value(self, method: str, column: str) -> float:
        rows = self.rows_for_method(method)
        if not rows:
            return 0.0
        return sum(row[column] for row in rows) / len(rows)


def compare_methods(
    config: ExperimentConfig,
    specs: Optional[Sequence[PolicySpec]] = None,
) -> MethodComparisonResult:
    """Run the method comparison for one dataset–algorithm combination.

    When ``config.pattern_families`` lists several families, each cell is
    the aggregate over one pattern per family (the paper averages its main
    figures over all five pattern sets).
    """
    specs = list(specs or DEFAULT_METHODS(config.dataset, config.algorithm))
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    stream = make_stream(dataset, config)

    result = MethodComparisonResult(dataset=config.dataset, algorithm=config.algorithm)
    for size in config.sizes:
        patterns = [
            workload.pattern(family, size, variant)
            for family in config.pattern_families
            for variant in range(max(1, config.variants_per_cell))
        ]
        static_metrics: Optional[RunMetrics] = None
        per_method: Dict[str, RunMetrics] = {}
        for spec in specs:
            runs = [
                run_single(
                    pattern,
                    dataset,
                    stream,
                    config.algorithm,
                    spec,
                    config.monitoring_interval,
                    shards=config.shards,
                    partition_by=config.partition_by,
                    batch_size=config.batch_size,
                    executor=config.executor,
                )
                for pattern in patterns
            ]
            metrics = aggregate_metrics(runs)
            per_method[spec.name] = metrics
            if spec.kind == "static":
                static_metrics = metrics

        for spec in specs:
            metrics = per_method[spec.name]
            relative_gain = (
                metrics.relative_gain_over(static_metrics)
                if static_metrics is not None
                else 1.0
            )
            result.rows.append(
                {
                    "dataset": config.dataset,
                    "algorithm": config.algorithm,
                    "size": size,
                    "method": spec.name,
                    "throughput": metrics.throughput,
                    "relative_gain": relative_gain,
                    "reoptimizations": float(metrics.reoptimizations),
                    "overhead": metrics.overhead_fraction,
                    "matches": float(metrics.matches_emitted),
                    "partial_matches": float(metrics.partial_matches_created),
                }
            )
    return result

"""Distance sweep (Figure 5): throughput of the invariant method vs ``d``.

For one dataset–algorithm combination the driver runs the invariant-based
method on sequence patterns of every requested size, once per candidate
distance value (``d = 0`` is the basic method).  The paper's Figure 5 plots
one curve per distance against the pattern size; the reproduction reports
the same rows and additionally extracts ``dopt`` per size (the parameter
scanning procedure of Section 3.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import (
    build_dataset,
    build_workload,
    make_stream,
    run_single,
)

#: Distance grid used when the caller does not supply one (a superset of the
#: dopt values the paper reports: 0.1 for traffic/greedy, 0.4 for ZStream...).
DEFAULT_DISTANCES = (0.0, 0.05, 0.1, 0.2, 0.4, 0.5)


def distance_sweep(
    config: ExperimentConfig,
    distances: Sequence[float] = DEFAULT_DISTANCES,
    family: str = "sequence",
) -> List[Dict[str, float]]:
    """Throughput of the invariant method for each (size, distance) pair."""
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    stream = make_stream(dataset, config)

    rows: List[Dict[str, float]] = []
    for size in config.sizes:
        pattern = workload.pattern(family, size)
        for distance in distances:
            spec = PolicySpec("invariant", distance=distance, label=f"d={distance:g}")
            metrics = run_single(
                pattern,
                dataset,
                stream,
                config.algorithm,
                spec,
                config.monitoring_interval,
            )
            rows.append(
                {
                    "dataset": config.dataset,
                    "algorithm": config.algorithm,
                    "size": size,
                    "distance": distance,
                    "throughput": metrics.throughput,
                    "reoptimizations": float(metrics.reoptimizations),
                    "overhead": metrics.overhead_fraction,
                }
            )
    return rows


def find_optimal_distance(
    rows: List[Dict[str, float]], size: Optional[int] = None
) -> Tuple[float, float]:
    """Extract ``dopt`` (and its throughput) from sweep rows.

    When ``size`` is None, the distance maximising the mean throughput over
    all sizes is returned — the per-combination dopt the paper uses in its
    later experiments.
    """
    candidates: Dict[float, List[float]] = {}
    for row in rows:
        if size is not None and row["size"] != size:
            continue
        candidates.setdefault(row["distance"], []).append(row["throughput"])
    if not candidates:
        raise ValueError("no sweep rows match the requested size")
    best_distance, best_throughput = max(
        (
            (distance, sum(values) / len(values))
            for distance, values in candidates.items()
        ),
        key=lambda pair: pair[1],
    )
    return best_distance, best_throughput

"""Engine-profiling reports and the instrumentation-overhead bench.

Two drivers for the introspection layer (:mod:`repro.obs.introspect`):

* :func:`profile_run` replays one recorded workload through a pipeline
  whose engine was built with ``introspect=True`` and returns the
  resulting introspection frame — the hotspot report (conditions ranked
  by cumulative wall time), the per-operator accept/reject table, the
  partial-match population gauges and the cost-model drift table.
* :func:`overhead_rows` measures what the *disabled* feature costs: it
  replays the same events with instrumentation off and on in interleaved
  trials (off, on, off, on, ... — so slow machine-load drift hits both
  modes equally) and reports each mode's median wall time.  The
  off-mode number is the one the regression gate watches: with no
  profiler attached the engines must build the same object graph as
  before the feature existed.

Both replay identical events, so the ``matches`` columns double as a
correctness check, like every other sweep in this package.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import AdaptiveCEPEngine
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import (
    build_dataset,
    build_planner,
    build_policy,
    build_workload,
)
from repro.streaming import CollectorSink, ReplaySource, StreamingPipeline

#: Interleaved A/B trials per mode (each preceded by one shared warmup).
DEFAULT_TRIALS = 3

#: Overhead fraction the *enabled* profiler may cost before the gate
#: complains.  Deliberately generous — wrapping every condition evaluation
#: in a perf_counter pair has a real price; the gate exists to catch an
#: accidental hot-path regression, not to promise free profiling.
ENABLED_OVERHEAD_LIMIT = 0.5


def _default_spec() -> PolicySpec:
    return PolicySpec("invariant", distance=0.1, label="invariant")


def _prepare(config: ExperimentConfig, size: int):
    """The (pattern, recorded events) pair every run replays."""
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    pattern = workload.sequence_pattern(size)
    stream = dataset.generate(
        duration=config.duration,
        seed=config.stream_seed,
        max_events=config.max_events,
    )
    return pattern, stream.to_list()


def _build_engine(
    config: ExperimentConfig, pattern, spec: PolicySpec, introspect: bool
) -> AdaptiveCEPEngine:
    return AdaptiveCEPEngine(
        pattern,
        build_planner(config.algorithm),
        build_policy(spec),
        monitoring_interval=config.monitoring_interval,
        introspect=introspect,
        compile_mode=config.compile_mode,
    )


def _run_once(
    config: ExperimentConfig, pattern, events, spec: PolicySpec, introspect: bool
):
    """One pipeline run; returns ``(pipeline, result, matches, seconds)``."""
    engine = _build_engine(config, pattern, spec, introspect)
    collector = CollectorSink()
    pipeline = StreamingPipeline(
        engine,
        ReplaySource(events),
        sinks=[collector],
        buffer_capacity=max(config.batch_size, 1),
    )
    started = time.perf_counter()
    result = pipeline.run(resume=False)
    seconds = time.perf_counter() - started
    return pipeline, result, len(collector.matches), seconds


def profile_run(
    config: ExperimentConfig,
    size: int = 3,
    policy_spec: Optional[PolicySpec] = None,
):
    """Replay the workload with introspection on; return ``(frame, result)``.

    ``frame`` is the pipeline's merged engine-introspection frame (see
    :meth:`StreamingPipeline.engine_introspection`).
    """
    spec = policy_spec or _default_spec()
    pattern, events = _prepare(config, size)
    pipeline, result, _, _ = _run_once(config, pattern, events, spec, True)
    return pipeline.engine_introspection(), result


def hotspot_rows(frame: Dict[str, Any], top: int = 10) -> List[Dict[str, Any]]:
    """Conditions ranked by cumulative wall time (the hotspot report)."""
    profile = frame.get("profile") or {}
    conditions = sorted(
        (profile.get("conditions") or {}).values(),
        key=lambda data: data["seconds"],
        reverse=True,
    )
    total = sum(data["seconds"] for data in conditions)
    rows = []
    for data in conditions[: max(0, int(top))]:
        rows.append(
            {
                "condition": data["label"],
                "calls": float(data["calls"]),
                "pass_rate": data["pass_rate"],
                "ms_total": data["seconds"] * 1e3,
                "us_per_call": (
                    data["seconds"] / data["calls"] * 1e6 if data["calls"] else 0.0
                ),
                "share": (data["seconds"] / total) if total > 0 else 0.0,
            }
        )
    return rows


def operator_rows(frame: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-operator (NFA edge / tree node) accept/reject table."""
    profile = frame.get("profile") or {}
    return [
        {
            "operator": label,
            "attempts": float(data["accepted"] + data["rejected"]),
            "accepted": float(data["accepted"]),
            "rejected": float(data["rejected"]),
            "accept_rate": data["accept_rate"],
        }
        for label, data in sorted((profile.get("edges") or {}).items())
    ]


def drift_rows(frame: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The cost-model drift table (pairs worst-first, as the monitor ranks)."""
    drift = frame.get("drift") or {}
    return [
        {
            "pair": row["pair"],
            "predicted": row["predicted"],
            "observed": row["observed"],
            "ratio": row["ratio"],
            "drift": row["drift"],
        }
        for row in drift.get("pairs") or ()
    ]


def overhead_rows(
    config: ExperimentConfig,
    size: int = 3,
    trials: int = DEFAULT_TRIALS,
    policy_spec: Optional[PolicySpec] = None,
) -> Tuple[List[Dict[str, Any]], float]:
    """Interleaved instrumentation-off/on timing comparison.

    Returns ``(rows, enabled_overhead)`` where ``rows`` holds one row per
    mode (median/min wall seconds, throughput, matches) and
    ``enabled_overhead`` is ``median(on)/median(off) - 1``.
    """
    if trials < 1:
        raise ValueError("overhead bench needs at least one trial per mode")
    spec = policy_spec or _default_spec()
    pattern, events = _prepare(config, size)
    # One unmeasured warmup (imports, allocator, branch caches) per mode.
    for introspect in (False, True):
        _run_once(config, pattern, events, spec, introspect)
    seconds: Dict[str, List[float]] = {"off": [], "on": []}
    matches: Dict[str, int] = {}
    for _ in range(int(trials)):
        for mode, introspect in (("off", False), ("on", True)):
            _, _, match_count, elapsed = _run_once(
                config, pattern, events, spec, introspect
            )
            seconds[mode].append(elapsed)
            matches[mode] = match_count
    medians = {mode: statistics.median(times) for mode, times in seconds.items()}
    rows = [
        {
            "mode": mode,
            "trials": float(trials),
            "median_s": medians[mode],
            "min_s": min(seconds[mode]),
            "throughput": len(events) / medians[mode] if medians[mode] > 0 else 0.0,
            "matches": float(matches[mode]),
        }
        for mode in ("off", "on")
    ]
    enabled_overhead = (
        medians["on"] / medians["off"] - 1.0 if medians["off"] > 0 else 0.0
    )
    return rows, enabled_overhead


def enforce_overhead_gate(
    rows: List[Dict[str, Any]],
    enabled_overhead: float,
    enabled_limit: float = ENABLED_OVERHEAD_LIMIT,
) -> List[str]:
    """Problems that should fail a CI overhead run (empty = gate passed)."""
    problems = []
    by_mode = {row["mode"]: row for row in rows}
    off, on = by_mode.get("off"), by_mode.get("on")
    if off is None or on is None:
        return ["overhead rows must contain one 'off' and one 'on' mode"]
    if off["matches"] != on["matches"]:
        problems.append(
            "instrumentation changed the matches: "
            f"off={off['matches']:g} on={on['matches']:g}"
        )
    if enabled_overhead > enabled_limit:
        problems.append(
            f"enabled-profiler overhead {enabled_overhead:.1%} exceeds the "
            f"{enabled_limit:.0%} budget"
        )
    return problems

"""Command-line entry point for the experiment drivers.

Lets a user regenerate any of the paper's experiments without writing
Python::

    python -m repro.experiments.cli compare --dataset traffic --algorithm greedy
    python -m repro.experiments.cli sweep   --dataset stocks  --algorithm zstream
    python -m repro.experiments.cli table1
    python -m repro.experiments.cli ablation-k --dataset traffic

Each sub-command prints the same plain-text tables the benchmark suite
reports and optionally writes them as CSV.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.ablations import k_invariant_ablation, selection_strategy_ablation
from repro.experiments.config import ExperimentConfig
from repro.experiments.distance_estimation import distance_estimation_table
from repro.experiments.distance_sweep import DEFAULT_DISTANCES, distance_sweep, find_optimal_distance
from repro.experiments.method_comparison import DEFAULT_METHODS, RECOMMENDED_DISTANCE, compare_methods
from repro.experiments.parallel_scaling import parallel_speedup_rows
from repro.experiments.reporting import format_table, pivot, rows_to_csv


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("traffic", "stocks"), default="traffic")
    parser.add_argument("--algorithm", choices=("greedy", "zstream"), default="greedy")
    parser.add_argument("--duration", type=float, default=200.0, help="stream duration")
    parser.add_argument("--max-events", type=int, default=12000, help="stream length cap")
    parser.add_argument(
        "--sizes", type=str, default="3,4,5,6", help="comma-separated pattern sizes"
    )
    parser.add_argument(
        "--monitoring-interval", type=float, default=1.0, help="time between decisions"
    )
    parser.add_argument("--csv", type=str, default=None, help="also write rows to a CSV file")
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of parallel engine replicas (1 = plain sequential engine)",
    )
    parser.add_argument(
        "--partition-by",
        type=str,
        default=None,
        help="event attribute for key partitioning (default: broadcast to all shards)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=256, help="events per ingestion batch"
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "process"),
        default="serial",
        help="shard executor: in-process serial or a multiprocess worker pool",
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    sizes = tuple(int(part) for part in args.sizes.split(",") if part)
    return ExperimentConfig(
        dataset=args.dataset,
        algorithm=args.algorithm,
        duration=args.duration,
        max_events=args.max_events,
        sizes=sizes,
        monitoring_interval=args.monitoring_interval,
        shards=args.shards,
        partition_by=args.partition_by,
        batch_size=args.batch_size,
        executor=args.executor,
    )


def _maybe_write_csv(rows, path: Optional[str]) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(rows_to_csv(rows))
    print(f"wrote {len(rows)} rows to {path}")


def _run_compare(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    result = compare_methods(config, DEFAULT_METHODS(config.dataset, config.algorithm))
    for description, column in (
        ("throughput [events/s]", "throughput"),
        ("relative gain over static", "relative_gain"),
        ("plan reoptimizations", "reoptimizations"),
        ("adaptation overhead fraction", "overhead"),
    ):
        print(
            format_table(
                pivot(result.rows, index="size", column="method", value=column),
                title=f"{config.dataset}/{config.algorithm}: {description}",
            )
        )
    _maybe_write_csv(result.rows, args.csv)
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    distances = tuple(float(part) for part in args.distances.split(",") if part)
    rows = distance_sweep(config, distances)
    print(
        format_table(
            pivot(rows, index="size", column="distance", value="throughput"),
            title=f"{config.dataset}/{config.algorithm}: throughput per invariant distance d",
        )
    )
    dopt, throughput = find_optimal_distance(rows)
    print(f"scanned dopt = {dopt:g} (mean throughput {throughput:,.0f} events/s)")
    _maybe_write_csv(rows, args.csv)
    return 0


def _run_table1(args: argparse.Namespace) -> int:
    rows = []
    for dataset in ("traffic", "stocks"):
        for algorithm in ("greedy", "zstream"):
            config = ExperimentConfig(
                dataset=dataset,
                algorithm=algorithm,
                duration=args.duration,
                max_events=args.max_events,
                sizes=(4, 5, 6, 7, 8),
            )
            dopt = RECOMMENDED_DISTANCE[(dataset, algorithm)]
            rows.extend(distance_estimation_table(config, dopt=dopt))
    print(
        format_table(
            rows,
            ["dataset", "algorithm", "size", "davg", "dopt", "accuracy"],
            title="Table 1 — quality of distance estimates",
        )
    )
    _maybe_write_csv(rows, args.csv)
    return 0


def _run_parallel(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    shard_counts = tuple(int(part) for part in args.shard_counts.split(",") if part)
    # An explicit --shards N joins the comparison instead of being ignored.
    if args.shards > 1 and args.shards not in shard_counts:
        shard_counts = tuple(sorted(set(shard_counts) | {args.shards}))
    rows = parallel_speedup_rows(
        config, shard_counts=shard_counts, entities=args.entities
    )
    print(
        format_table(
            pivot(rows, index="size", column="mode", value="throughput"),
            title=(
                f"{config.dataset}/{config.algorithm}: sequential vs sharded "
                f"throughput [events/s] ({config.executor} executor)"
            ),
        )
    )
    print(
        format_table(
            pivot(rows, index="size", column="mode", value="matches"),
            title="match counts (must agree across modes)",
        )
    )
    _maybe_write_csv(rows, args.csv)
    return 0


def _run_ablation_k(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    rows = k_invariant_ablation(config, k_values=(1, 2, 4, 0))
    print(
        format_table(
            rows,
            ["k", "num_invariants", "throughput", "reoptimizations", "overhead"],
            title=f"K-invariant ablation — {config.dataset}/{config.algorithm}",
        )
    )
    _maybe_write_csv(rows, args.csv)
    return 0


def _run_ablation_strategy(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    rows = selection_strategy_ablation(config)
    print(
        format_table(
            rows,
            ["strategy", "throughput", "reoptimizations", "overhead"],
            title=f"Selection-strategy ablation — {config.dataset}/{config.algorithm}",
        )
    )
    _maybe_write_csv(rows, args.csv)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's experiments from the command line.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="Figures 6-9 style method comparison")
    _add_common_options(compare)
    compare.set_defaults(handler=_run_compare)

    sweep = subparsers.add_parser("sweep", help="Figure 5 style distance sweep")
    _add_common_options(sweep)
    sweep.add_argument(
        "--distances",
        type=str,
        default=",".join(str(d) for d in DEFAULT_DISTANCES),
        help="comma-separated candidate distances",
    )
    sweep.set_defaults(handler=_run_sweep)

    table1 = subparsers.add_parser("table1", help="Table 1 distance-estimate quality")
    table1.add_argument("--duration", type=float, default=200.0)
    table1.add_argument("--max-events", type=int, default=12000)
    table1.add_argument("--csv", type=str, default=None)
    table1.set_defaults(handler=_run_table1)

    parallel = subparsers.add_parser(
        "parallel", help="sequential vs sharded throughput on a keyed workload"
    )
    _add_common_options(parallel)
    parallel.add_argument(
        "--shard-counts",
        type=str,
        default="2,4",
        help="comma-separated shard counts to compare against sequential",
    )
    parallel.add_argument(
        "--entities",
        type=int,
        default=8,
        help="number of distinct partition-key values in the keyed stream",
    )
    parallel.set_defaults(handler=_run_parallel)

    ablation_k = subparsers.add_parser("ablation-k", help="K-invariant ablation")
    _add_common_options(ablation_k)
    ablation_k.set_defaults(handler=_run_ablation_k)

    ablation_strategy = subparsers.add_parser(
        "ablation-strategy", help="invariant selection strategy ablation"
    )
    _add_common_options(ablation_strategy)
    ablation_strategy.set_defaults(handler=_run_ablation_strategy)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point for the experiment drivers.

Lets a user regenerate any of the paper's experiments without writing
Python::

    python -m repro.experiments.cli compare --dataset traffic --algorithm greedy
    python -m repro.experiments.cli sweep   --dataset stocks  --algorithm zstream
    python -m repro.experiments.cli table1
    python -m repro.experiments.cli ablation-k --dataset traffic

and run the engine as a continuously-ingesting service::

    python -m repro.experiments.cli serve --dataset stocks --rate 5000 \
        --sink matches.jsonl --checkpoint-dir ckpt --checkpoint-every 10000
    python -m repro.experiments.cli serve --backend process --workers 4 \
        --partition-by entity_id --dataset stocks
    python -m repro.experiments.cli serve --control-port 8080 \
        --decision-log decisions.jsonl --checkpoint-dir ckpt
    python -m repro.experiments.cli serve --listen-port 9000 \
        --webhook-url http://127.0.0.1:9100 --checkpoint-dir ckpt
    python -m repro.experiments.cli stream-bench --rates 0,2000,8000
    python -m repro.experiments.cli stream-bench --backend process \
        --worker-counts 1,2,4
    python -m repro.experiments.cli stream-bench --rates 0 \
        --shuffle-slack 2 --max-lateness 2 --late-policy drop

look inside the engine (operator profiling, cost-model drift)::

    python -m repro.experiments.cli profile --dataset stocks --top 10
    python -m repro.experiments.cli profile --overhead --trials 3 --enforce

and compare the condition-evaluation strategies (interpreted condition
trees vs compiled kernels vs compiled + equality-indexed pruning)::

    python -m repro.experiments.cli compile-bench --dataset stocks --enforce
    python -m repro.experiments.cli serve --compile-mode indexed --rate 5000

Each sub-command prints the same plain-text tables the benchmark suite
reports and optionally writes them as CSV.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import List, Optional

from repro.errors import StreamingError
from repro.experiments.ablations import k_invariant_ablation, selection_strategy_ablation
from repro.experiments.checkpoint_bench import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_FULL_EVERY,
    checkpoint_mode_rows,
    enforce_checkpoint_gate,
)
from repro.experiments.compile_bench import (
    bench_report,
    compile_mode_rows,
    enforce_compile_gate,
)
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.distance_estimation import distance_estimation_table
from repro.experiments.multi_bench import (
    DEFAULT_PATTERN_COUNTS,
    enforce_multi_gate,
    multi_pattern_rows,
)
from repro.experiments.multi_bench import bench_report as multi_bench_report
from repro.experiments.distance_sweep import DEFAULT_DISTANCES, distance_sweep, find_optimal_distance
from repro.experiments.method_comparison import DEFAULT_METHODS, RECOMMENDED_DISTANCE, compare_methods
from repro.experiments.parallel_scaling import parallel_speedup_rows
from repro.experiments.profile_bench import (
    DEFAULT_TRIALS,
    drift_rows,
    enforce_overhead_gate,
    hotspot_rows,
    operator_rows,
    overhead_rows,
    profile_run,
)
from repro.experiments.reporting import format_table, pivot, rows_to_csv
from repro.experiments.runner import build_dataset, build_workload
from repro.experiments.streaming_rate import (
    DEFAULT_RATES,
    DEFAULT_WORKER_COUNTS,
    build_streaming_engine,
    rate_sweep_rows,
    worker_sweep_rows,
)
from repro.metrics import NetworkMetrics
from repro.obs import ControlPlane, DecisionLog, MetricsRegistry, Tracer
from repro.streaming import (
    CheckpointStore,
    CSVFileSource,
    HTTPEventIngress,
    JSONLFileSource,
    JSONLMatchWriter,
    MetricsSink,
    NetworkEventSource,
    ReplaySource,
    SocketMatchSink,
    StreamingPipeline,
    TCPEventIngress,
    WebhookMatchSink,
    bounded_shuffle,
    overflow_policy_by_name,
)


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("traffic", "stocks"), default="traffic")
    parser.add_argument("--algorithm", choices=("greedy", "zstream"), default="greedy")
    parser.add_argument("--duration", type=float, default=200.0, help="stream duration")
    parser.add_argument("--max-events", type=int, default=12000, help="stream length cap")
    parser.add_argument(
        "--sizes", type=str, default="3,4,5,6", help="comma-separated pattern sizes"
    )
    parser.add_argument(
        "--monitoring-interval", type=float, default=1.0, help="time between decisions"
    )
    parser.add_argument("--csv", type=str, default=None, help="also write rows to a CSV file")
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of parallel engine replicas (1 = plain sequential engine)",
    )
    parser.add_argument(
        "--partition-by",
        type=str,
        default=None,
        help="event attribute for key partitioning (default: broadcast to all shards)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=256, help="events per ingestion batch"
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "process"),
        default="serial",
        help="shard executor: in-process serial or a multiprocess worker pool",
    )
    parser.add_argument(
        "--compile-mode",
        choices=("interpreted", "compiled", "indexed"),
        default="interpreted",
        help="condition evaluation strategy: interpret the condition tree, "
        "compile it into specialized kernels at plan-build time, or "
        "additionally index equality joins to prune candidates before "
        "evaluation (matches are identical in all three modes)",
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    sizes = tuple(int(part) for part in args.sizes.split(",") if part)
    return ExperimentConfig(
        dataset=args.dataset,
        algorithm=args.algorithm,
        duration=args.duration,
        max_events=args.max_events,
        sizes=sizes,
        monitoring_interval=args.monitoring_interval,
        shards=args.shards,
        partition_by=args.partition_by,
        batch_size=args.batch_size,
        executor=args.executor,
        backend=getattr(args, "backend", "inline"),
        workers=getattr(args, "workers", 0) or 0,
        introspect=getattr(args, "introspect", False),
        compile_mode=getattr(args, "compile_mode", "interpreted"),
    )


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    """Streaming execution-backend options (serve / stream-bench)."""
    parser.add_argument(
        "--backend",
        choices=("inline", "thread", "process"),
        default="inline",
        help="where detection runs: in the pipeline thread (inline), or on "
        "per-shard worker threads/processes fed by bounded queues",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard workers for --backend thread/process (0 = use --shards)",
    )


def _add_checkpoint_mode_options(parser: argparse.ArgumentParser) -> None:
    """Checkpoint-strategy options (serve / stream-bench / checkpoint-bench)."""
    parser.add_argument(
        "--checkpoint-mode",
        choices=("full", "delta"),
        default="full",
        help="'full' pickles the whole engine state at every checkpoint; "
        "'delta' writes a full base every --checkpoint-full-every "
        "checkpoints and append-only incremental deltas (changed state "
        "only) in between",
    )
    parser.add_argument(
        "--checkpoint-full-every",
        type=int,
        default=DEFAULT_FULL_EVERY,
        help="with --checkpoint-mode delta: deltas between two full base "
        "snapshots (the chain length restore has to replay)",
    )


def _add_ordering_options(parser: argparse.ArgumentParser) -> None:
    """Event-time ordering options (serve / stream-bench)."""
    parser.add_argument(
        "--max-lateness",
        type=float,
        default=None,
        help="tolerate out-of-order events up to this many stream-time units: "
        "arrivals are reordered by event time before detection (default: "
        "require a timestamp-ordered source)",
    )
    parser.add_argument(
        "--late-policy",
        choices=("drop", "raise"),
        default="drop",
        help="what to do with events behind the watermark (beyond "
        "--max-lateness): count-and-drop them, or fail the run "
        "(the side-output policy is available through the API)",
    )
    parser.add_argument(
        "--shuffle-slack",
        type=float,
        default=0.0,
        help="inject seeded bounded disorder (each event displaced by up to "
        "this many stream-time units) into the synthetic replay — the "
        "out-of-order smoke mode; pair with --max-lateness >= the slack",
    )


def _add_observability_options(parser: argparse.ArgumentParser) -> None:
    """Observability options (serve)."""
    parser.add_argument(
        "--control-port",
        type=int,
        default=None,
        help="start the HTTP control plane on this port: /health, /ready, "
        "/metrics (Prometheus; ?format=json), /decisions and "
        "POST /checkpoint (0 = an ephemeral port, printed at startup)",
    )
    parser.add_argument(
        "--control-host",
        type=str,
        default="127.0.0.1",
        help="bind address for --control-port",
    )
    parser.add_argument(
        "--introspect",
        action="store_true",
        help="build the engine with introspection on: per-condition timing, "
        "operator accept/reject counts and cost-model drift gauges, served "
        "live through /engine and /metrics (small per-evaluation overhead)",
    )
    parser.add_argument(
        "--decision-log",
        type=str,
        default=None,
        help="append a JSONL audit trail of runtime decisions (shed, late "
        "events, checkpoint cuts, compactions, re-plans) to this file; an "
        "existing file is continued, not truncated",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record batch-level spans (source → reorder → engine → sink) "
        "for per-cycle timing attribution; off by default",
    )


def _add_network_options(parser: argparse.ArgumentParser) -> None:
    """Network data-plane options (serve)."""
    parser.add_argument(
        "--listen-port",
        type=int,
        default=None,
        help="ingest events over HTTP: POST /events (JSON records; 429 "
        "signals backpressure), POST /end, GET /stats on this port "
        "(0 = ephemeral, printed at startup); overrides --source",
    )
    parser.add_argument(
        "--tcp-port",
        type=int,
        default=None,
        help="ingest events over a line-delimited TCP socket on this port "
        "(one JSON record per line, per-line acks; a full buffer blocks "
        "the reader); combinable with --listen-port",
    )
    parser.add_argument(
        "--listen-host",
        type=str,
        default="127.0.0.1",
        help="bind address for --listen-port / --tcp-port",
    )
    parser.add_argument(
        "--listen-idle-timeout",
        type=float,
        default=None,
        help="stop the network source after this many seconds with no "
        "arrivals (default: wait for POST /end, a TCP END line, or Ctrl-C)",
    )
    parser.add_argument(
        "--webhook-url",
        type=str,
        default=None,
        help="deliver each match by HTTP POST to this URL, acked against "
        "the checkpoint barrier (Idempotency-Key header; retries with "
        "capped backoff)",
    )
    parser.add_argument(
        "--socket-sink",
        type=str,
        default=None,
        help="deliver matches over TCP to HOST:PORT (line frames with "
        "per-match acks)",
    )
    parser.add_argument(
        "--dead-letter",
        type=str,
        default=None,
        help="spill matches that exhaust their delivery retries to this "
        "JSONL file instead of stopping the pipeline",
    )


def _validate_ordering_args(args: argparse.Namespace) -> None:
    """Refuse disorder injection without an ordering stage to absorb it.

    ``--shuffle-slack`` deliberately disorders the replay; without
    ``--max-lateness`` the pipeline has no reorder buffer and the engines'
    sorted-input contract is silently violated (corrupted dedup eviction,
    statistics clamping or a mid-run StatisticsError).  Slack *larger*
    than the lateness bound is allowed — that is the late-policy stress
    mode.
    """
    if args.shuffle_slack > 0 and args.max_lateness is None:
        raise StreamingError(
            "--shuffle-slack injects out-of-order events and requires "
            "--max-lateness (>= the slack for lossless reordering; smaller "
            "values exercise the late policy)"
        )


def _maybe_write_csv(rows, path: Optional[str]) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(rows_to_csv(rows))
    print(f"wrote {len(rows)} rows to {path}")


def _run_compare(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    result = compare_methods(config, DEFAULT_METHODS(config.dataset, config.algorithm))
    for description, column in (
        ("throughput [events/s]", "throughput"),
        ("relative gain over static", "relative_gain"),
        ("plan reoptimizations", "reoptimizations"),
        ("adaptation overhead fraction", "overhead"),
    ):
        print(
            format_table(
                pivot(result.rows, index="size", column="method", value=column),
                title=f"{config.dataset}/{config.algorithm}: {description}",
            )
        )
    _maybe_write_csv(result.rows, args.csv)
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    distances = tuple(float(part) for part in args.distances.split(",") if part)
    rows = distance_sweep(config, distances)
    print(
        format_table(
            pivot(rows, index="size", column="distance", value="throughput"),
            title=f"{config.dataset}/{config.algorithm}: throughput per invariant distance d",
        )
    )
    dopt, throughput = find_optimal_distance(rows)
    print(f"scanned dopt = {dopt:g} (mean throughput {throughput:,.0f} events/s)")
    _maybe_write_csv(rows, args.csv)
    return 0


def _run_table1(args: argparse.Namespace) -> int:
    rows = []
    for dataset in ("traffic", "stocks"):
        for algorithm in ("greedy", "zstream"):
            config = ExperimentConfig(
                dataset=dataset,
                algorithm=algorithm,
                duration=args.duration,
                max_events=args.max_events,
                sizes=(4, 5, 6, 7, 8),
            )
            dopt = RECOMMENDED_DISTANCE[(dataset, algorithm)]
            rows.extend(distance_estimation_table(config, dopt=dopt))
    print(
        format_table(
            rows,
            ["dataset", "algorithm", "size", "davg", "dopt", "accuracy"],
            title="Table 1 — quality of distance estimates",
        )
    )
    _maybe_write_csv(rows, args.csv)
    return 0


def _run_parallel(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    shard_counts = tuple(int(part) for part in args.shard_counts.split(",") if part)
    # An explicit --shards N joins the comparison instead of being ignored.
    if args.shards > 1 and args.shards not in shard_counts:
        shard_counts = tuple(sorted(set(shard_counts) | {args.shards}))
    rows = parallel_speedup_rows(
        config, shard_counts=shard_counts, entities=args.entities
    )
    print(
        format_table(
            pivot(rows, index="size", column="mode", value="throughput"),
            title=(
                f"{config.dataset}/{config.algorithm}: sequential vs sharded "
                f"throughput [events/s] ({config.executor} executor)"
            ),
        )
    )
    print(
        format_table(
            pivot(rows, index="size", column="mode", value="matches"),
            title="match counts (must agree across modes)",
        )
    )
    _maybe_write_csv(rows, args.csv)
    return 0


def _serve_pattern(args: argparse.Namespace, config: ExperimentConfig, workload):
    """The pattern (or shared PatternSet, with --patterns > 1) the service detects."""
    size = int(args.size)
    if config.engine_replicas > 1 and args.partition_by:
        return workload.keyed_sequence_pattern(size, key=args.partition_by)
    patterns = int(getattr(args, "patterns", 1) or 1)
    if patterns > 1:
        from repro.multi import PatternSet

        return PatternSet(workload.similar_sequence_patterns(patterns, size=size))
    return workload.sequence_pattern(size)


def _serve_source(args: argparse.Namespace, config: ExperimentConfig, dataset, workload):
    """Source factory: ``synthetic`` replay or a JSONL/CSV file (tailable).

    The synthetic stream is only generated (and materialised) when it is
    actually served; file sources read the file lazily.
    """
    rate = args.rate if args.rate > 0 else None
    if args.source == "synthetic":
        if config.engine_replicas > 1 and args.partition_by:
            stream = workload.keyed_stream(
                args.duration,
                entities=args.entities,
                key=args.partition_by,
                max_events=args.max_events,
            )
        else:
            stream = dataset.generate(args.duration, max_events=args.max_events)
        if args.shuffle_slack > 0:
            return ReplaySource(
                bounded_shuffle(
                    stream.to_list(), args.shuffle_slack, seed=config.stream_seed
                ),
                rate=rate,
            )
        return ReplaySource(stream, rate=rate)
    types = {t.name: t for t in dataset.event_types}
    source_cls = CSVFileSource if args.source.endswith(".csv") else JSONLFileSource
    return source_cls(
        args.source,
        types,
        follow=args.follow,
        idle_timeout=args.idle_timeout,
        rate=rate,
    )


def _run_serve(args: argparse.Namespace) -> int:
    _validate_ordering_args(args)
    config = _config_from_args(args)
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    pattern = _serve_pattern(args, config, workload)
    spec = PolicySpec("invariant", distance=0.1, label="invariant")
    engine = build_streaming_engine(config, pattern, spec)

    # Network data plane: a push-buffer source behind HTTP/TCP ingress
    # servers (replacing --source) and/or acked delivery sinks, all sharing
    # one NetworkMetrics object (registered with the control plane below).
    use_network_source = args.listen_port is not None or args.tcp_port is not None
    net_metrics = (
        NetworkMetrics()
        if use_network_source or args.webhook_url or args.socket_sink
        else None
    )
    if use_network_source:
        types = {t.name: t for t in dataset.event_types}
        source = NetworkEventSource(
            types, idle_timeout=args.listen_idle_timeout, metrics=net_metrics
        )
    else:
        source = _serve_source(args, config, dataset, workload)

    metrics_sink = MetricsSink()
    sinks = [metrics_sink]
    if args.sink:
        sinks.append(JSONLMatchWriter(args.sink))
    if args.webhook_url:
        sinks.append(
            WebhookMatchSink(
                args.webhook_url,
                dead_letter_path=args.dead_letter,
                metrics=net_metrics,
            )
        )
    if args.socket_sink:
        sink_host, _, sink_port = args.socket_sink.rpartition(":")
        if not sink_host or not sink_port.isdigit():
            raise StreamingError(
                f"--socket-sink expects HOST:PORT, got {args.socket_sink!r}"
            )
        sinks.append(
            SocketMatchSink(
                sink_host,
                int(sink_port),
                dead_letter_path=args.dead_letter,
                metrics=net_metrics,
            )
        )
    store = CheckpointStore(args.checkpoint_dir) if args.checkpoint_dir else None

    # Observability: a decision log when asked for (file-backed via
    # --decision-log, in-memory-only when just the control plane wants to
    # answer /decisions), a tracer behind --trace, and the HTTP control
    # plane behind --control-port.
    decision_log = None
    if args.decision_log or args.control_port is not None:
        decision_log = DecisionLog(args.decision_log)
    tracer = Tracer() if args.trace else None

    pipeline = StreamingPipeline(
        engine,
        source,
        sinks=sinks,
        checkpoint_store=store,
        checkpoint_every=args.checkpoint_every if store else 0,
        checkpoint_mode=args.checkpoint_mode,
        checkpoint_full_every=args.checkpoint_full_every,
        buffer_capacity=args.buffer_capacity,
        overflow_policy=overflow_policy_by_name(args.overflow),
        max_lateness=args.max_lateness,
        late_policy=args.late_policy,
        decision_log=decision_log,
        tracer=tracer,
    )

    control = None
    if args.control_port is not None:
        registry = MetricsRegistry()
        registry.register_pipeline(pipeline.metrics)
        registry.register_engine_introspection(pipeline.engine_introspection)
        if net_metrics is not None:
            registry.register_network(net_metrics)
        control = ControlPlane(
            pipeline=pipeline,
            registry=registry,
            decision_log=decision_log,
            network=net_metrics,
            host=args.control_host,
            port=args.control_port,
        )
        control.start()
        print(f"control plane listening on {control.url}")

    # The ingress servers accept pushes the moment they are up; events that
    # land before the pipeline finishes a checkpoint restore are handled by
    # the source's sequence-number dedup, so starting early is safe.
    ingresses = []
    if args.listen_port is not None:
        http_ingress = HTTPEventIngress(
            source, host=args.listen_host, port=args.listen_port
        ).start()
        ingresses.append(http_ingress)
        print(f"HTTP event ingress listening on {http_ingress.url}/events")
    if args.tcp_port is not None:
        tcp_ingress = TCPEventIngress(
            source, host=args.listen_host, port=args.tcp_port
        ).start()
        ingresses.append(tcp_ingress)
        print(
            f"TCP event ingress listening on {args.listen_host}:{tcp_ingress.port}"
        )

    # Graceful shutdown on Ctrl-C: finish the in-flight event, write a final
    # checkpoint, flush the sinks.  A second Ctrl-C falls through to the
    # default handler (hard exit).
    def _handle_interrupt(signum, frame):
        print("\nshutting down gracefully (Ctrl-C again to force)...")
        pipeline.stop()
        signal.signal(signal.SIGINT, previous_handler)

    previous_handler = signal.signal(signal.SIGINT, _handle_interrupt)
    try:
        result = pipeline.run(max_events=args.serve_events)
    finally:
        signal.signal(signal.SIGINT, previous_handler)
        for ingress in ingresses:
            ingress.stop()
        if control is not None:
            control.stop()

    print(
        f"pipeline stopped ({result.stop_reason}): "
        f"{result.events_processed} events, {result.matches_emitted} matches, "
        f"{result.throughput:,.0f} ev/s [{config.backend} backend]"
        + (f", resumed from event {result.resumed_from}" if result.resumed_from else "")
    )
    print(format_table([result.metrics.as_row()], title="pipeline metrics"))
    if net_metrics is not None:
        print(
            format_table([net_metrics.snapshot()], title="network data plane")
        )
    if result.metrics.workers:
        print(
            format_table(
                [
                    {
                        "worker": lane.shard_id,
                        "events": lane.events_processed,
                        "batches": lane.batches_consumed,
                        "queue_hw": lane.queue_high_water,
                        "batch_ms_mean": lane.processing.mean_seconds * 1e3,
                    }
                    for _, lane in sorted(result.metrics.workers.items())
                ],
                ["worker", "events", "batches", "queue_hw", "batch_ms_mean"],
                title="worker lanes",
            )
        )
    if metrics_sink.per_pattern:
        print(
            format_table(
                [
                    {"pattern": name, "matches": count}
                    for name, count in sorted(metrics_sink.per_pattern.items())
                ],
                ["pattern", "matches"],
                title="matches per pattern",
            )
        )
    if args.sink:
        print(f"matches written to {args.sink}")
    if store is not None:
        stats = store.stats()
        reasons = stats.get("reasons", {})
        reason_note = (
            " [" + ", ".join(f"{k}: {v}" for k, v in sorted(reasons.items())) + "]"
            if reasons
            else ""
        )
        print(
            f"checkpoints in {store.directory} "
            f"({stats['checkpoints']} full + {stats['deltas']} delta kept)"
            + reason_note
        )
    if decision_log is not None:
        counts = decision_log.counts_by_type()
        summary = (
            ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
            if counts
            else "none"
        )
        destination = args.decision_log if args.decision_log else "in-memory"
        print(f"decisions recorded ({destination}): {summary}")
        decision_log.close()
    if tracer is not None:
        totals = tracer.stage_totals()
        if totals:
            print(
                format_table(
                    [
                        {
                            "stage": stage,
                            "spans": agg["spans"],
                            "events": agg["events"],
                            "seconds": agg["seconds"],
                        }
                        for stage, agg in totals.items()
                    ],
                    ["stage", "spans", "events", "seconds"],
                    title="trace spans by stage",
                )
            )
    return 0


def _run_stream_bench(args: argparse.Namespace) -> int:
    _validate_ordering_args(args)
    config = _config_from_args(args)
    ordering_kwargs = dict(
        shuffle_slack=args.shuffle_slack,
        max_lateness=args.max_lateness,
        late_policy=args.late_policy,
    )
    if args.worker_counts:
        worker_counts = tuple(
            int(part) for part in args.worker_counts.split(",") if part
        )
        rows = worker_sweep_rows(
            config,
            worker_counts=worker_counts,
            size=int(args.size),
            entities=args.entities,
            **ordering_kwargs,
        )
        backend = rows[-1]["backend"] if rows else config.backend
        print(
            format_table(
                rows,
                [
                    "backend",
                    "workers",
                    "throughput",
                    "speedup",
                    "matches",
                    "worker_queue_hw",
                ],
                title=(
                    f"{config.dataset}/{config.algorithm}: multi-core streaming "
                    f"scaling ({backend} workers vs inline; matches must agree)"
                ),
            )
        )
        _maybe_write_csv(rows, args.csv)
        return 0
    rates = tuple(float(part) for part in args.rates.split(",") if part)
    rows = rate_sweep_rows(
        config,
        rates=rates,
        size=int(args.size),
        entities=args.entities,
        patterns=int(getattr(args, "patterns", 1) or 1),
        checkpoint_every=args.checkpoint_every,
        checkpoint_mode=args.checkpoint_mode,
        checkpoint_full_every=args.checkpoint_full_every,
        **ordering_kwargs,
    )
    columns = [
        "rate",
        "throughput",
        "events_ingested",
        "engine_ms_mean",
        "engine_ms_max",
        "queue_high_water",
        "shed_fraction",
        "matches",
    ]
    if args.max_lateness is not None:
        columns += ["late", "watermark_lag_max"]
    if args.checkpoint_every:
        columns += ["checkpoints", "bytes_per_checkpoint", "checkpoint_ms_mean"]
    print(
        format_table(
            rows,
            columns,
            title=(
                f"{config.dataset}/{config.algorithm}: pipeline throughput and "
                f"latency per offered rate (0 = unthrottled)"
            ),
        )
    )
    _maybe_write_csv(rows, args.csv)
    return 0


def _run_checkpoint_bench(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    rows = checkpoint_mode_rows(
        config,
        size=int(args.size),
        entities=args.entities,
        checkpoint_every=args.checkpoint_every,
        checkpoint_full_every=args.checkpoint_full_every,
    )
    print(
        format_table(
            rows,
            [
                "mode",
                "checkpoints",
                "bytes_per_checkpoint",
                "checkpoint_ms_mean",
                "checkpoint_ms_max",
                "throughput",
                "matches",
                "recovered",
                "reasons",
            ],
            title=(
                f"{config.dataset}/{config.algorithm}: full vs delta "
                f"checkpoints every {args.checkpoint_every} events "
                f"(kill/resume verified per mode)"
            ),
        )
    )
    _maybe_write_csv(rows, args.csv)
    problems = enforce_checkpoint_gate(rows)
    if problems:
        for problem in problems:
            print(f"checkpoint gate: {problem}", file=sys.stderr)
        if args.enforce:
            return 1
    elif args.enforce:
        full = next(row for row in rows if row["mode"] == "full")
        delta = next(row for row in rows if row["mode"] == "delta")
        saved = 1.0 - delta["bytes_per_checkpoint"] / full["bytes_per_checkpoint"]
        print(
            f"checkpoint gate: OK — delta writes {saved:.0%} fewer bytes per "
            "checkpoint and kill/resume stayed exactly-once in both modes"
        )
    return 0


def _run_compile_bench(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    rows = compile_mode_rows(
        config,
        size=int(args.size),
        entities=args.entities,
        trials=args.trials,
    )
    print(
        format_table(
            rows,
            [
                "pattern_class",
                "mode",
                "events",
                "seconds",
                "throughput",
                "speedup",
                "matches",
                "matches_ok",
                "candidates_pruned",
            ],
            title=(
                f"{config.dataset}/{config.algorithm}: interpreted vs compiled "
                f"vs indexed execution (matches must agree byte-for-byte)"
            ),
        )
    )
    _maybe_write_csv(rows, args.csv)
    problems = enforce_compile_gate(rows)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(bench_report(rows, problems), handle, indent=2)
            handle.write("\n")
        print(f"wrote bench report to {args.json}")
    if problems:
        for problem in problems:
            print(f"compile gate: {problem}", file=sys.stderr)
        if args.enforce:
            return 1
    elif args.enforce:
        best = max(
            (row for row in rows if row["mode"] != "interpreted"),
            key=lambda row: row["speedup"],
        )
        print(
            f"compile gate: OK — matches are byte-identical in every mode and "
            f"{best['mode']} mode peaks at {best['speedup']:.1f}x on the "
            f"{best['pattern_class']} class"
        )
    return 0


def _run_multi_bench(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    counts = tuple(int(part) for part in args.patterns.split(",") if part)
    rows = multi_pattern_rows(
        config,
        pattern_counts=counts,
        size=int(args.size),
        trials=args.trials,
        compile_mode=config.compile_mode,
    )
    print(
        format_table(
            rows,
            [
                "patterns",
                "events",
                "isolated_seconds",
                "shared_seconds",
                "speedup",
                "shared_throughput",
                "matches",
                "matches_ok",
                "prefix_hits",
                "sharing_groups",
            ],
            title=(
                f"{config.dataset}/{config.algorithm}: shared one-pass serving "
                f"vs per-pattern re-read pipelines (per-pattern matches must "
                f"agree byte-for-byte)"
            ),
        )
    )
    _maybe_write_csv(rows, args.csv)
    problems = enforce_multi_gate(rows)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(multi_bench_report(rows, problems), handle, indent=2)
            handle.write("\n")
        print(f"wrote bench report to {args.json}")
    if problems:
        for problem in problems:
            print(f"multi gate: {problem}", file=sys.stderr)
        if args.enforce:
            return 1
    elif args.enforce:
        best = max(rows, key=lambda row: row["patterns"])
        print(
            f"multi gate: OK — per-pattern matches are byte-identical at every "
            f"count and shared serving is {best['speedup']:.1f}x the isolated "
            f"baseline at N={best['patterns']:.0f} "
            f"({best['prefix_hits']:.0f} shared-prefix hits)"
        )
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    if args.overhead:
        rows, enabled_overhead = overhead_rows(
            config, size=int(args.size), trials=args.trials
        )
        print(
            format_table(
                rows,
                ["mode", "trials", "median_s", "min_s", "throughput", "matches"],
                title=(
                    f"{config.dataset}/{config.algorithm}: instrumentation "
                    f"off vs on, interleaved ({args.trials} trials per mode)"
                ),
            )
        )
        print(f"enabled-profiler overhead: {enabled_overhead:+.1%} (median on vs off)")
        _maybe_write_csv(rows, args.csv)
        problems = enforce_overhead_gate(rows, enabled_overhead)
        if problems:
            for problem in problems:
                print(f"overhead gate: {problem}", file=sys.stderr)
            if args.enforce:
                return 1
        elif args.enforce:
            print("overhead gate: OK — matches agree and the enabled cost is in budget")
        return 0

    frame, result = profile_run(config, size=int(args.size))
    print(
        f"profiled {result.events_processed} events, "
        f"{result.matches_emitted} matches, plan: {frame.get('plan')}"
    )
    hotspots = hotspot_rows(frame, top=args.top)
    print(
        format_table(
            hotspots,
            ["condition", "calls", "pass_rate", "ms_total", "us_per_call", "share"],
            title=f"top {len(hotspots)} conditions by cumulative wall time",
        )
    )
    print(
        format_table(
            operator_rows(frame),
            ["operator", "attempts", "accepted", "rejected", "accept_rate"],
            title="operator accept/reject counts (NFA edges / tree nodes)",
        )
    )
    matches = frame.get("partial_matches") or {}
    print(
        f"partial matches: live={matches.get('live', 0)}, "
        f"high_water={matches.get('high_water', 0)}, "
        f"per_state={matches.get('per_state', {})}"
    )
    drift = frame.get("drift") or {}
    print(
        format_table(
            drift_rows(frame),
            ["pair", "predicted", "observed", "ratio", "drift"],
            title=(
                f"cost-model drift (predicted cost "
                f"{drift.get('predicted_cost', 0.0):,.1f}, "
                f"max drift {drift.get('max_drift', 1.0):.3f})"
            ),
        )
    )
    _maybe_write_csv(hotspots, args.csv)
    return 0


def _run_ablation_k(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    rows = k_invariant_ablation(config, k_values=(1, 2, 4, 0))
    print(
        format_table(
            rows,
            ["k", "num_invariants", "throughput", "reoptimizations", "overhead"],
            title=f"K-invariant ablation — {config.dataset}/{config.algorithm}",
        )
    )
    _maybe_write_csv(rows, args.csv)
    return 0


def _run_ablation_strategy(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    rows = selection_strategy_ablation(config)
    print(
        format_table(
            rows,
            ["strategy", "throughput", "reoptimizations", "overhead"],
            title=f"Selection-strategy ablation — {config.dataset}/{config.algorithm}",
        )
    )
    _maybe_write_csv(rows, args.csv)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's experiments from the command line.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="Figures 6-9 style method comparison")
    _add_common_options(compare)
    compare.set_defaults(handler=_run_compare)

    sweep = subparsers.add_parser("sweep", help="Figure 5 style distance sweep")
    _add_common_options(sweep)
    sweep.add_argument(
        "--distances",
        type=str,
        default=",".join(str(d) for d in DEFAULT_DISTANCES),
        help="comma-separated candidate distances",
    )
    sweep.set_defaults(handler=_run_sweep)

    table1 = subparsers.add_parser("table1", help="Table 1 distance-estimate quality")
    table1.add_argument("--duration", type=float, default=200.0)
    table1.add_argument("--max-events", type=int, default=12000)
    table1.add_argument("--csv", type=str, default=None)
    table1.set_defaults(handler=_run_table1)

    parallel = subparsers.add_parser(
        "parallel", help="sequential vs sharded throughput on a keyed workload"
    )
    _add_common_options(parallel)
    parallel.add_argument(
        "--shard-counts",
        type=str,
        default="2,4",
        help="comma-separated shard counts to compare against sequential",
    )
    parallel.add_argument(
        "--entities",
        type=int,
        default=8,
        help="number of distinct partition-key values in the keyed stream",
    )
    parallel.set_defaults(handler=_run_parallel)

    serve = subparsers.add_parser(
        "serve", help="run the engine as a continuously-ingesting service"
    )
    _add_common_options(serve)
    _add_backend_options(serve)
    _add_ordering_options(serve)
    _add_checkpoint_mode_options(serve)
    serve.add_argument(
        "--size", type=int, default=3, help="pattern size for the served pattern"
    )
    serve.add_argument(
        "--patterns",
        type=int,
        default=1,
        help="serve this many similar patterns as one shared PatternSet "
        "through the one-pass multi-pattern engine (1 = single pattern)",
    )
    serve.add_argument(
        "--source",
        type=str,
        default="synthetic",
        help="'synthetic' (rate-controlled replay of a generated stream) or "
        "a path to a .jsonl/.csv event file",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="offered arrival rate in events/second (0 = unthrottled)",
    )
    serve.add_argument(
        "--follow",
        action="store_true",
        help="tail a file source for newly appended events (like tail -f)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=2.0,
        help="stop a --follow tail after this many idle seconds",
    )
    serve.add_argument(
        "--sink", type=str, default=None, help="write matches to this JSONL file"
    )
    serve.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        help="enable fault tolerance: checkpoint directory (resumes if non-empty)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=10000,
        help="events between checkpoints (with --checkpoint-dir)",
    )
    serve.add_argument(
        "--buffer-capacity", type=int, default=1024, help="staging buffer capacity"
    )
    serve.add_argument(
        "--overflow",
        choices=("backpressure", "drop-newest", "drop-oldest"),
        default="backpressure",
        help="policy when the staging buffer is full",
    )
    serve.add_argument(
        "--entities",
        type=int,
        default=8,
        help="distinct partition-key values in the keyed synthetic stream",
    )
    serve.add_argument(
        "--serve-events",
        type=int,
        default=None,
        help="stop after processing this many events (default: run the source dry)",
    )
    _add_network_options(serve)
    _add_observability_options(serve)
    serve.set_defaults(handler=_run_serve)

    stream_bench = subparsers.add_parser(
        "stream-bench", help="pipeline throughput/latency under offered arrival rates"
    )
    _add_common_options(stream_bench)
    _add_backend_options(stream_bench)
    _add_ordering_options(stream_bench)
    _add_checkpoint_mode_options(stream_bench)
    stream_bench.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="also checkpoint every N events during the rate sweep (into a "
        "temporary store) and report bytes/pause-time columns; 0 = off",
    )
    stream_bench.add_argument(
        "--size", type=int, default=3, help="pattern size for the benchmark pattern"
    )
    stream_bench.add_argument(
        "--patterns",
        type=int,
        default=1,
        help="rate-sweep a shared PatternSet of this many similar patterns "
        "through the one-pass multi-pattern engine (1 = single pattern)",
    )
    stream_bench.add_argument(
        "--rates",
        type=str,
        default=",".join(str(rate) for rate in DEFAULT_RATES),
        help="comma-separated offered rates in events/second (0 = unthrottled)",
    )
    stream_bench.add_argument(
        "--entities",
        type=int,
        default=8,
        help="distinct partition-key values in the keyed stream (with --partition-by)",
    )
    stream_bench.add_argument(
        "--worker-counts",
        type=str,
        default=None,
        help="comma-separated worker counts: run the multi-core scaling sweep "
        f"(keyed workload, unthrottled) instead of the rate sweep; e.g. "
        f"{','.join(str(count) for count in DEFAULT_WORKER_COUNTS)}",
    )
    stream_bench.set_defaults(handler=_run_stream_bench)

    checkpoint_bench = subparsers.add_parser(
        "checkpoint-bench",
        help="full vs delta checkpoint bytes/pause comparison with a "
        "kill/resume recovery check per mode",
    )
    _add_common_options(checkpoint_bench)
    _add_backend_options(checkpoint_bench)
    checkpoint_bench.add_argument(
        "--size", type=int, default=3, help="pattern size for the benchmark pattern"
    )
    checkpoint_bench.add_argument(
        "--entities",
        type=int,
        default=8,
        help="distinct partition-key values in the keyed stream (with --partition-by)",
    )
    checkpoint_bench.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        help="events between checkpoints (same cadence for both modes)",
    )
    checkpoint_bench.add_argument(
        "--checkpoint-full-every",
        type=int,
        default=DEFAULT_FULL_EVERY,
        help="delta mode: deltas between two full base snapshots",
    )
    checkpoint_bench.add_argument(
        "--enforce",
        action="store_true",
        help="exit non-zero unless delta checkpoints are strictly smaller "
        "than full checkpoints and both modes recover losslessly (the CI "
        "regression gate)",
    )
    checkpoint_bench.set_defaults(handler=_run_checkpoint_bench)

    compile_bench = subparsers.add_parser(
        "compile-bench",
        help="interpreted vs compiled vs indexed execution comparison with "
        "a byte-level match-equivalence check per mode",
    )
    _add_common_options(compile_bench)
    compile_bench.add_argument(
        "--size", type=int, default=3, help="pattern size for the benchmark patterns"
    )
    compile_bench.add_argument(
        "--entities",
        type=int,
        default=8,
        help="distinct partition-key values in the keyed join-heavy stream",
    )
    compile_bench.add_argument(
        "--trials",
        type=int,
        default=1,
        help="timed replays per mode (the fastest trial is kept)",
    )
    compile_bench.add_argument(
        "--json",
        type=str,
        default="BENCH_compile.json",
        help="write the rows plus the gate verdict to this JSON report "
        "('' = skip)",
    )
    compile_bench.add_argument(
        "--enforce",
        action="store_true",
        help="exit non-zero unless every mode reproduces the interpreted "
        "match set, compiled mode is >= 1.3x on every pattern class and "
        "indexed mode is >= 2x on the join-heavy class (the CI gate)",
    )
    compile_bench.set_defaults(handler=_run_compile_bench)

    multi_bench = subparsers.add_parser(
        "multi-bench",
        help="shared one-pass multi-pattern serving vs N isolated pipelines, "
        "with a per-pattern byte-level match-equivalence check",
    )
    _add_common_options(multi_bench)
    # The multi gate measures prefix sharing, so its defaults pick the
    # workload where a shared prefix is well-posed: the stocks feed has
    # structural (order-key) inter-event conditions and balanced per-type
    # match counts, and size-4 patterns give the three-step shared prefix
    # a distinct final step to fan out on.
    multi_bench.set_defaults(dataset="stocks", duration=120.0)
    multi_bench.add_argument(
        "--patterns",
        type=str,
        default=",".join(str(count) for count in DEFAULT_PATTERN_COUNTS),
        help="comma-separated pattern counts to sweep",
    )
    multi_bench.add_argument(
        "--size", type=int, default=4, help="size of every generated pattern"
    )
    multi_bench.add_argument(
        "--trials",
        type=int,
        default=1,
        help="timed replays per side and count (the fastest trial is kept)",
    )
    multi_bench.add_argument(
        "--json",
        type=str,
        default="BENCH_multipattern.json",
        help="write the rows plus the gate verdict to this JSON report "
        "('' = skip)",
    )
    multi_bench.add_argument(
        "--enforce",
        action="store_true",
        help="exit non-zero unless per-pattern matches are byte-identical at "
        "every count, shared serving is >= 3x the isolated baseline at the "
        "largest count with nonzero shared-prefix hits, and shared wall "
        "time scales sublinearly in the pattern count (the CI gate)",
    )
    multi_bench.set_defaults(handler=_run_multi_bench)

    profile = subparsers.add_parser(
        "profile",
        help="operator-level engine profiling report (or, with --overhead, "
        "the interleaved instrumentation-cost A/B bench)",
    )
    _add_common_options(profile)
    profile.add_argument(
        "--size", type=int, default=3, help="pattern size for the profiled pattern"
    )
    profile.add_argument(
        "--top",
        type=int,
        default=10,
        help="conditions shown in the hotspot table (ranked by wall time)",
    )
    profile.add_argument(
        "--overhead",
        action="store_true",
        help="instead of the report: time instrumentation-off vs -on runs "
        "interleaved over the same replay and print the overhead",
    )
    profile.add_argument(
        "--trials",
        type=int,
        default=DEFAULT_TRIALS,
        help="with --overhead: measured trials per mode (plus one warmup)",
    )
    profile.add_argument(
        "--enforce",
        action="store_true",
        help="with --overhead: exit non-zero unless matches agree across "
        "modes and the enabled profiler stays within its overhead budget "
        "(the CI gate)",
    )
    profile.set_defaults(handler=_run_profile)

    ablation_k = subparsers.add_parser("ablation-k", help="K-invariant ablation")
    _add_common_options(ablation_k)
    ablation_k.set_defaults(handler=_run_ablation_k)

    ablation_strategy = subparsers.add_parser(
        "ablation-strategy", help="invariant selection strategy ablation"
    )
    _add_common_options(ablation_strategy)
    ablation_strategy.set_defaults(handler=_run_ablation_strategy)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

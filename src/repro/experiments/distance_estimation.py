"""Distance-estimation quality (Table 1 of the paper).

The average-relative-difference heuristic computes ``davg`` from the
deciding conditions recorded while generating the initial plan.  Table 1
compares ``davg`` against the scanned optimum ``dopt`` via the symmetric
accuracy ratio ``min(davg/dopt, dopt/davg)``.

The reproduction computes ``davg`` exactly as Section 3.4 prescribes, and
takes ``dopt`` either from a caller-supplied mapping (e.g. the output of
:func:`repro.experiments.distance_sweep.find_optimal_distance`) or from the
recommended values recorded in
:mod:`repro.experiments.method_comparison`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.adaptive import average_relative_difference
from repro.experiments.config import ExperimentConfig
from repro.experiments.method_comparison import RECOMMENDED_DISTANCE
from repro.experiments.runner import build_dataset, build_planner, build_workload


def distance_estimation_table(
    config: ExperimentConfig,
    dopt: Optional[float] = None,
    family: str = "sequence",
    sizes: Optional[Sequence[int]] = None,
) -> List[Dict[str, float]]:
    """Rows of Table 1 for one dataset–algorithm combination.

    Each row carries the pattern size, ``davg``, ``dopt`` and the accuracy
    ratio ``min(davg/dopt, dopt/davg)``.
    """
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    planner = build_planner(config.algorithm)
    if dopt is None:
        dopt = RECOMMENDED_DISTANCE.get((config.dataset, config.algorithm), 0.1)

    rows: List[Dict[str, float]] = []
    for size in sizes or config.sizes:
        pattern = workload.pattern(family, size)
        snapshot = dataset.initial_snapshot(pattern)
        result = planner.generate(pattern, snapshot)
        davg = average_relative_difference(result.condition_sets, snapshot)
        rows.append(
            {
                "dataset": config.dataset,
                "algorithm": config.algorithm,
                "size": size,
                "davg": davg,
                "dopt": dopt,
                "accuracy": accuracy_ratio(davg, dopt),
            }
        )
    return rows


def accuracy_ratio(davg: float, dopt: float) -> float:
    """The paper's symmetric accuracy measure ``min(davg/dopt, dopt/davg)``."""
    if davg <= 0.0 or dopt <= 0.0:
        return 0.0
    return min(davg / dopt, dopt / davg)

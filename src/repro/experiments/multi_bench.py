"""Shared multi-pattern serving vs isolated pipelines — the CI multi gate.

Builds a family of ``N`` similar sequence patterns (common rare-type
prefix, distinct final step; see
:meth:`~repro.workloads.WorkloadGenerator.similar_sequence_patterns`) and
replays one recorded stream two ways:

* **isolated** — the deployment the multi-pattern engine replaces: ``N``
  independent :class:`~repro.engine.AdaptiveCEPEngine` pipelines, each
  re-reading the whole stream;
* **shared** — one :class:`~repro.engine.MultiPatternEngine` serving the
  whole :class:`~repro.multi.PatternSet` in a single pass, with shared
  statistics and cost-model-scored prefix sharing.

Both runs replay identical events, so the per-pattern sorted match
records must agree byte-for-byte (``matches_ok``) — sharing must never
change *what* any individual pattern detects, only how fast the union is
served.

:func:`enforce_multi_gate` turns the sweep into a pass/fail signal:
shared throughput must reach :data:`MULTI_MIN_SPEEDUP` times the
isolated baseline at the largest pattern count, the shared prefix must
actually engage (nonzero ``prefix_hits``) whenever two or more patterns
are served, and shared wall time must scale *sublinearly* in the pattern
count (:data:`SUBLINEAR_FACTOR`).  CI runs this sweep and fails the
build on any violation, so one-pass serving cannot silently regress into
"N pipelines behind one facade".
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import AdaptiveCEPEngine, MultiPatternEngine
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import (
    build_dataset,
    build_planner,
    build_policy,
    build_workload,
)
from repro.multi import PatternSet
from repro.streaming.sinks import match_record

#: Minimum shared-over-isolated speedup at the largest pattern count.
MULTI_MIN_SPEEDUP = 3.0

#: Shared wall time must satisfy ``t(N_max)/t(N_min) <= (N_max/N_min) * SUBLINEAR_FACTOR``.
SUBLINEAR_FACTOR = 0.5

#: Default pattern counts of the sweep (1 is the no-sharing sanity point).
DEFAULT_PATTERN_COUNTS = (1, 8, 32, 128)


def _default_spec() -> PolicySpec:
    return PolicySpec("invariant", distance=0.1, label="invariant")


PerPattern = Dict[str, List[str]]


def _sorted_per_pattern(patterns, matches) -> PerPattern:
    """Sorted JSON match records grouped by originating pattern."""
    per_pattern: PerPattern = {p.name: [] for p in patterns}
    for match in matches:
        per_pattern.setdefault(match.pattern_name, []).append(
            json.dumps(match_record(match))
        )
    return {name: sorted(records) for name, records in per_pattern.items()}


def _run_isolated(
    config: ExperimentConfig, patterns, events, spec: PolicySpec, compile_mode: str
) -> Tuple[float, PerPattern]:
    """The re-read baseline: one fresh pipeline per pattern, N stream reads."""
    batch_size = max(1, config.batch_size)
    per_pattern: PerPattern = {}
    seconds = 0.0
    for pattern in patterns:
        engine = AdaptiveCEPEngine(
            pattern,
            build_planner(config.algorithm),
            build_policy(spec),
            monitoring_interval=config.monitoring_interval,
            compile_mode=compile_mode,
        )
        matches = []
        started = time.perf_counter()
        for start in range(0, len(events), batch_size):
            matches.extend(engine.process_batch(events[start : start + batch_size]))
        seconds += time.perf_counter() - started
        per_pattern[pattern.name] = sorted(
            json.dumps(match_record(match)) for match in matches
        )
    return seconds, per_pattern


def _run_shared(
    config: ExperimentConfig, patterns, events, spec: PolicySpec, compile_mode: str
) -> Tuple[float, PerPattern, MultiPatternEngine]:
    """One-pass shared serving of the whole pattern set."""
    batch_size = max(1, config.batch_size)
    engine = MultiPatternEngine(
        PatternSet(patterns),
        build_planner(config.algorithm),
        policy_factory=lambda: build_policy(spec),
        monitoring_interval=config.monitoring_interval,
        compile_mode=compile_mode,
    )
    matches = []
    started = time.perf_counter()
    for start in range(0, len(events), batch_size):
        matches.extend(engine.process_batch(events[start : start + batch_size]))
    seconds = time.perf_counter() - started
    return seconds, _sorted_per_pattern(patterns, matches), engine


def multi_pattern_rows(
    config: ExperimentConfig,
    pattern_counts: Sequence[int] = DEFAULT_PATTERN_COUNTS,
    size: int = 4,
    trials: int = 1,
    compile_mode: str = "interpreted",
    policy_spec: Optional[PolicySpec] = None,
) -> List[Dict[str, object]]:
    """One row per pattern count: shared vs isolated time, speedup, verdict.

    With ``trials > 1`` each side keeps its fastest trial (the variance of
    a loaded CI box should not fail the gate); the correctness comparison
    uses every trial's records — all must agree.
    """
    if trials < 1:
        raise ValueError("multi bench needs at least one trial per count")
    spec = policy_spec or _default_spec()
    counts = sorted(set(int(n) for n in pattern_counts))
    if any(n < 1 for n in counts):
        raise ValueError("pattern counts must be positive")
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    events = dataset.generate(
        duration=config.duration,
        seed=config.stream_seed,
        max_events=config.max_events,
    ).to_list()

    # One unmeasured warmup (imports, allocator, kernel caches).
    warm = workload.similar_sequence_patterns(1, size=size)
    _run_shared(config, warm, events, spec, compile_mode)

    rows: List[Dict[str, object]] = []
    for count in counts:
        patterns = workload.similar_sequence_patterns(count, size=size)
        isolated_seconds = float("inf")
        shared_seconds = float("inf")
        matches_ok = True
        shared_engine = None
        isolated_records: PerPattern = {}
        shared_records: PerPattern = {}
        for _ in range(int(trials)):
            seconds, isolated_records = _run_isolated(
                config, patterns, events, spec, compile_mode
            )
            isolated_seconds = min(isolated_seconds, seconds)
            seconds, shared_records, shared_engine = _run_shared(
                config, patterns, events, spec, compile_mode
            )
            shared_seconds = min(shared_seconds, seconds)
            matches_ok = matches_ok and shared_records == isolated_records
        report = shared_engine.share_manager.sharing_report()
        rows.append(
            {
                "dataset": config.dataset,
                "algorithm": config.algorithm,
                "compile_mode": compile_mode,
                "patterns": count,
                "size": size,
                "events": float(len(events)),
                "isolated_seconds": isolated_seconds,
                "shared_seconds": shared_seconds,
                "speedup": (
                    isolated_seconds / shared_seconds if shared_seconds > 0 else 0.0
                ),
                "shared_throughput": (
                    len(events) / shared_seconds if shared_seconds > 0 else 0.0
                ),
                "matches": float(sum(len(r) for r in shared_records.values())),
                "matches_expected": float(
                    sum(len(r) for r in isolated_records.values())
                ),
                "matches_ok": float(matches_ok),
                "prefix_hits": float(shared_engine.prefix_hits_total()),
                "sharing_groups": float(len(report)),
                "sharing_score": float(sum(row["score"] for row in report)),
            }
        )
    return rows


def enforce_multi_gate(rows: List[Dict[str, object]]) -> List[str]:
    """Gate violations (empty = the build may pass).

    * every pattern count must serve per-pattern match sets byte-identical
      to the isolated pipelines;
    * at the largest count, shared serving must be at least
      :data:`MULTI_MIN_SPEEDUP` times faster than the re-read baseline;
    * whenever two or more patterns are served, the shared prefix must
      actually have delivered partial matches (nonzero ``prefix_hits``);
    * shared wall time must grow sublinearly across the sweep
      (:data:`SUBLINEAR_FACTOR`).
    """
    problems: List[str] = []
    if not rows:
        return ["the gate needs at least one pattern-count row"]
    by_count = {int(row["patterns"]): row for row in rows}
    counts = sorted(by_count)
    for count in counts:
        row = by_count[count]
        if row["matches_ok"] != 1.0:
            problems.append(
                f"N={count}: shared serving detected {row['matches']:.0f} "
                f"matches, expected {row['matches_expected']:.0f} — sharing "
                "changed a per-pattern match set"
            )
        if count >= 2 and row["prefix_hits"] <= 0:
            problems.append(
                f"N={count}: no shared-prefix hits — prefix sharing never engaged"
            )
    largest = by_count[counts[-1]]
    if counts[-1] >= 2 and largest["speedup"] < MULTI_MIN_SPEEDUP:
        problems.append(
            f"N={counts[-1]}: shared speedup {largest['speedup']:.2f}x over the "
            f"isolated baseline is below the {MULTI_MIN_SPEEDUP:g}x floor"
        )
    if len(counts) >= 2 and counts[-1] > counts[0]:
        smallest = by_count[counts[0]]
        if smallest["shared_seconds"] > 0:
            growth = largest["shared_seconds"] / smallest["shared_seconds"]
            allowed = (counts[-1] / counts[0]) * SUBLINEAR_FACTOR
            if growth > allowed:
                problems.append(
                    f"shared wall time grew {growth:.1f}x from N={counts[0]} to "
                    f"N={counts[-1]} — above the sublinear bound {allowed:.1f}x"
                )
    return problems


def bench_report(rows: List[Dict[str, object]], problems: List[str]) -> Dict:
    """The JSON document the CLI writes as ``BENCH_multipattern.json``."""
    return {
        "bench": "multipattern",
        "gate": {
            "multi_min_speedup": MULTI_MIN_SPEEDUP,
            "sublinear_factor": SUBLINEAR_FACTOR,
            "passed": not problems,
            "problems": list(problems),
        },
        "rows": rows,
    }

"""Ablations over the invariant method's design choices.

Two ablations complement the paper's experiments:

* **K-invariant** (Section 3.3): precision vs overhead as ``K`` grows from
  1 (the basic method) towards "all deciding conditions" (the iff guarantee
  of Theorem 2).
* **Selection strategy** (Section 3.5): the tightest-condition heuristic vs
  a violation-probability-based selection and a random selection baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.adaptive import InvariantBasedPolicy
from repro.adaptive.invariants import (
    RandomSelectionStrategy,
    SelectionStrategy,
    TightestConditionStrategy,
    ViolationProbabilityStrategy,
)
from repro.engine import AdaptiveCEPEngine
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_dataset,
    build_planner,
    build_workload,
    make_stream,
)


def k_invariant_ablation(
    config: ExperimentConfig,
    k_values: Sequence[int] = (1, 2, 4, 0),
    distance: float = 0.1,
    family: str = "sequence",
    size: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Throughput / reoptimizations / overhead as a function of ``K``.

    ``K = 0`` means "all deciding conditions" (the Theorem 2 variant).
    """
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    stream = make_stream(dataset, config)
    pattern_size = size or max(config.sizes)
    pattern = workload.pattern(family, pattern_size)

    rows: List[Dict[str, float]] = []
    for k in k_values:
        policy = InvariantBasedPolicy(k=k, distance=distance)
        engine = AdaptiveCEPEngine(
            pattern,
            build_planner(config.algorithm),
            policy,
            initial_snapshot=dataset.initial_snapshot(pattern),
            monitoring_interval=config.monitoring_interval,
        )
        result = engine.run(stream)
        invariant_count = len(policy.invariants) if policy.invariants else 0
        rows.append(
            {
                "dataset": config.dataset,
                "algorithm": config.algorithm,
                "size": pattern_size,
                "k": float(k),
                "num_invariants": float(invariant_count),
                "throughput": result.metrics.throughput,
                "reoptimizations": float(result.metrics.reoptimizations),
                "overhead": result.metrics.overhead_fraction,
            }
        )
    return rows


_STRATEGIES: Dict[str, SelectionStrategy] = {
    "tightest": TightestConditionStrategy(),
    "violation-probability": ViolationProbabilityStrategy(),
    "random": RandomSelectionStrategy(seed=3),
}


def selection_strategy_ablation(
    config: ExperimentConfig,
    distance: float = 0.1,
    family: str = "sequence",
    size: Optional[int] = None,
    strategies: Optional[Dict[str, SelectionStrategy]] = None,
) -> List[Dict[str, float]]:
    """Compare invariant-selection strategies on one pattern."""
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    stream = make_stream(dataset, config)
    pattern_size = size or max(config.sizes)
    pattern = workload.pattern(family, pattern_size)

    rows: List[Dict[str, float]] = []
    for label, strategy in (strategies or _STRATEGIES).items():
        policy = InvariantBasedPolicy(k=1, distance=distance, strategy=strategy)
        engine = AdaptiveCEPEngine(
            pattern,
            build_planner(config.algorithm),
            policy,
            initial_snapshot=dataset.initial_snapshot(pattern),
            monitoring_interval=config.monitoring_interval,
        )
        result = engine.run(stream)
        rows.append(
            {
                "dataset": config.dataset,
                "algorithm": config.algorithm,
                "size": pattern_size,
                "strategy": label,
                "throughput": result.metrics.throughput,
                "reoptimizations": float(result.metrics.reoptimizations),
                "overhead": result.metrics.overhead_fraction,
            }
        )
    return rows

"""Sequential-vs-sharded throughput comparison on a keyed workload.

The scale-out experiment the paper does not run: take a keyed multi-entity
workload (every event tagged with an entity identifier, the pattern joined
on it), evaluate it once with the sequential
:class:`~repro.engine.AdaptiveCEPEngine` and once per requested shard
count with the :class:`~repro.parallel.ParallelCEPEngine`, and report
throughput side by side.  Because the workload is key-partitionable, the
sharded runs detect exactly the same matches — the match count column
doubles as a correctness check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.engine import AdaptiveCEPEngine
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import (
    build_dataset,
    build_executor,
    build_planner,
    build_policy,
    build_workload,
)
from repro.parallel import KeyPartitioner, ParallelCEPEngine

#: Key attribute used when the config does not name one.
DEFAULT_PARTITION_KEY = "entity_id"


def parallel_speedup_rows(
    config: ExperimentConfig,
    shard_counts: Sequence[int] = (2, 4),
    entities: int = 8,
    policy_spec: Optional[PolicySpec] = None,
) -> List[Dict[str, float]]:
    """One row per (pattern size, execution mode) with throughput and matches.

    The ``"sequential"`` row is the plain adaptive engine; each
    ``"sharded(N)"`` row runs ``N`` key-partitioned replicas under the
    executor named by ``config.executor``.
    """
    spec = policy_spec or PolicySpec("invariant", distance=0.1, label="invariant")
    key = config.partition_by or DEFAULT_PARTITION_KEY
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)

    rows: List[Dict[str, float]] = []
    for size in config.sizes:
        pattern, stream = workload.keyed_workload(
            size,
            duration=config.duration,
            entities=entities,
            key=key,
            seed=config.stream_seed,
            max_events=config.max_events,
        )

        sequential = AdaptiveCEPEngine(
            pattern,
            build_planner(config.algorithm),
            build_policy(spec),
            monitoring_interval=config.monitoring_interval,
        ).run(stream)
        rows.append(
            {
                "dataset": config.dataset,
                "algorithm": config.algorithm,
                "size": size,
                "mode": "sequential",
                "shards": 1,
                "throughput": sequential.metrics.throughput,
                "matches": float(sequential.match_count),
                "speedup": 1.0,
            }
        )

        for shards in shard_counts:
            parallel = ParallelCEPEngine(
                pattern,
                build_planner(config.algorithm),
                build_policy(spec),
                shards=shards,
                partitioner=KeyPartitioner(key),
                executor=build_executor(config.executor),
                batch_size=config.batch_size,
                monitoring_interval=config.monitoring_interval,
            ).run(stream)
            rows.append(
                {
                    "dataset": config.dataset,
                    "algorithm": config.algorithm,
                    "size": size,
                    "mode": f"sharded({shards})",
                    "shards": shards,
                    "throughput": parallel.metrics.throughput,
                    "matches": float(parallel.match_count),
                    "speedup": (
                        parallel.metrics.throughput / sequential.metrics.throughput
                        if sequential.metrics.throughput > 0
                        else float("inf")
                    ),
                }
            )
    return rows

"""Interpreted vs compiled vs indexed execution — the CI compile gate.

Replays the same recorded workload through a fresh
:class:`~repro.engine.AdaptiveCEPEngine` once per compile mode
(``interpreted``, ``compiled``, ``indexed``; see :mod:`repro.compile`)
and reports, per pattern class and mode, the wall time, the throughput
and the speedup over the interpreted baseline.  Two pattern classes are
measured:

* ``sequence`` — the dataset's plain SEQ pattern, dominated by local
  acceptance predicates and inter-variable comparisons; this is where
  condition compilation and the columnar batch path pay off.
* ``keyed-join`` — the keyed multi-entity workload whose equality chain
  on the partition key makes every extension a join; this is where the
  equality-predicate index prunes candidate partial matches before any
  condition runs (the ``candidates_pruned`` column).

Every run replays identical events, so the ``matches_ok`` column doubles
as a byte-level equivalence check against the interpreted reference —
compilation must never change *what* is detected, only how fast.

:func:`enforce_compile_gate` turns the rows into a pass/fail signal:
compiled mode must be at least :data:`COMPILED_MIN_SPEEDUP` times faster
than interpreted on every pattern class, indexed mode at least
:data:`INDEXED_MIN_SPEEDUP` times faster on the join-heavy class (where
it must actually have pruned candidates), and every mode must reproduce
the reference match set exactly.  CI runs this on the stocks workload
and fails the build on any violation, so the compiled hot path cannot
silently regress into "correct but no faster than the interpreter".
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compile import COMPILE_MODES
from repro.engine import AdaptiveCEPEngine
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import (
    build_dataset,
    build_planner,
    build_policy,
    build_workload,
)
from repro.streaming.sinks import match_record

#: Minimum compiled-over-interpreted speedup on every pattern class.
COMPILED_MIN_SPEEDUP = 1.3

#: Minimum indexed-over-interpreted speedup on the join-heavy class.
INDEXED_MIN_SPEEDUP = 2.0

#: Name of the join-heavy pattern class the indexed gate applies to.
JOIN_CLASS = "keyed-join"


def _default_spec() -> PolicySpec:
    return PolicySpec("invariant", distance=0.1, label="invariant")


def _pattern_classes(
    config: ExperimentConfig, size: int, entities: int
) -> List[Tuple[str, object, list]]:
    """The (class name, pattern, recorded events) triples every mode replays."""
    dataset = build_dataset(config)
    workload = build_workload(config, dataset)
    sequence_pattern = workload.sequence_pattern(size)
    sequence_events = dataset.generate(
        duration=config.duration,
        seed=config.stream_seed,
        max_events=config.max_events,
    ).to_list()
    keyed_pattern, keyed_stream = workload.keyed_workload(
        size,
        duration=config.duration,
        entities=entities,
        seed=config.stream_seed,
        max_events=config.max_events,
    )
    return [
        ("sequence", sequence_pattern, sequence_events),
        (JOIN_CLASS, keyed_pattern, keyed_stream.to_list()),
    ]


def _run_mode(
    config: ExperimentConfig, pattern, events, spec: PolicySpec, mode: str
):
    """One timed replay; returns ``(seconds, sorted records, counters)``."""
    engine = AdaptiveCEPEngine(
        pattern,
        build_planner(config.algorithm),
        build_policy(spec),
        monitoring_interval=config.monitoring_interval,
        compile_mode=mode,
    )
    batch_size = max(1, config.batch_size)
    matches = []
    started = time.perf_counter()
    for start in range(0, len(events), batch_size):
        matches.extend(engine.process_batch(events[start : start + batch_size]))
    seconds = time.perf_counter() - started
    counters = engine.migration_manager.total_counters()
    records = sorted(json.dumps(match_record(match)) for match in matches)
    return seconds, records, counters


def compile_mode_rows(
    config: ExperimentConfig,
    size: int = 3,
    entities: int = 8,
    trials: int = 1,
    modes: Sequence[str] = COMPILE_MODES,
    policy_spec: Optional[PolicySpec] = None,
) -> List[Dict[str, object]]:
    """One row per (pattern class, compile mode): time, speedup, verdict.

    The interpreted run is always measured first (after one unmeasured
    warmup per class) and its sorted match records become the reference
    every other mode is compared against byte-for-byte.  With
    ``trials > 1`` each mode keeps its fastest trial — the variance of a
    loaded CI box should not fail the gate.
    """
    if trials < 1:
        raise ValueError("compile bench needs at least one trial per mode")
    spec = policy_spec or _default_spec()
    ordered_modes = ["interpreted"] + [m for m in modes if m != "interpreted"]
    rows: List[Dict[str, object]] = []
    for class_name, pattern, events in _pattern_classes(config, size, entities):
        # One unmeasured warmup (imports, allocator, branch caches).
        _run_mode(config, pattern, events, spec, "interpreted")
        reference: List[str] = []
        baseline_seconds = 0.0
        for mode in ordered_modes:
            best_seconds = float("inf")
            records: List[str] = []
            counters = None
            for _ in range(int(trials)):
                seconds, records, counters = _run_mode(
                    config, pattern, events, spec, mode
                )
                best_seconds = min(best_seconds, seconds)
            if mode == "interpreted":
                reference = records
                baseline_seconds = best_seconds
            rows.append(
                {
                    "dataset": config.dataset,
                    "algorithm": config.algorithm,
                    "pattern_class": class_name,
                    "size": size,
                    "mode": mode,
                    "events": float(len(events)),
                    "seconds": best_seconds,
                    "throughput": (
                        len(events) / best_seconds if best_seconds > 0 else 0.0
                    ),
                    "speedup": (
                        baseline_seconds / best_seconds if best_seconds > 0 else 0.0
                    ),
                    "matches": float(len(records)),
                    "matches_expected": float(len(reference)),
                    "matches_ok": float(records == reference),
                    "candidates_pruned": float(counters.candidates_pruned),
                }
            )
    return rows


def enforce_compile_gate(rows: List[Dict[str, object]]) -> List[str]:
    """Gate violations (empty = the build may pass).

    * every mode must reproduce the interpreted match set byte-for-byte;
    * compiled mode must reach :data:`COMPILED_MIN_SPEEDUP` on every
      pattern class;
    * indexed mode must reach :data:`INDEXED_MIN_SPEEDUP` on the
      join-heavy class, and must actually have pruned candidates there
      (a no-op index that merely matches compiled speed is a regression).
    """
    problems: List[str] = []
    by_class: Dict[str, Dict[str, Dict[str, object]]] = {}
    for row in rows:
        by_class.setdefault(str(row["pattern_class"]), {})[str(row["mode"])] = row
    if not by_class:
        return ["the gate needs at least one pattern class of rows"]
    for class_name, by_mode in sorted(by_class.items()):
        for mode in ("interpreted", "compiled", "indexed"):
            if mode not in by_mode:
                problems.append(f"{class_name}: missing a {mode}-mode row")
        for mode, row in sorted(by_mode.items()):
            if row["matches_ok"] != 1.0:
                problems.append(
                    f"{class_name}/{mode} detected {row['matches']:.0f} matches, "
                    f"expected {row['matches_expected']:.0f} — compilation "
                    "changed the match set"
                )
        compiled = by_mode.get("compiled")
        if compiled is not None and compiled["speedup"] < COMPILED_MIN_SPEEDUP:
            problems.append(
                f"{class_name}: compiled speedup {compiled['speedup']:.2f}x is "
                f"below the {COMPILED_MIN_SPEEDUP:g}x floor"
            )
        indexed = by_mode.get("indexed")
        if class_name == JOIN_CLASS and indexed is not None:
            if indexed["speedup"] < INDEXED_MIN_SPEEDUP:
                problems.append(
                    f"{class_name}: indexed speedup {indexed['speedup']:.2f}x is "
                    f"below the {INDEXED_MIN_SPEEDUP:g}x floor"
                )
            if indexed["candidates_pruned"] <= 0:
                problems.append(
                    f"{class_name}: indexed mode pruned no candidates — the "
                    "equality index never engaged"
                )
    return problems


def bench_report(rows: List[Dict[str, object]], problems: List[str]) -> Dict:
    """The JSON document the CLI writes as ``BENCH_compile.json``."""
    return {
        "bench": "compile",
        "gate": {
            "compiled_min_speedup": COMPILED_MIN_SPEEDUP,
            "indexed_min_speedup": INDEXED_MIN_SPEEDUP,
            "join_class": JOIN_CLASS,
            "passed": not problems,
            "problems": list(problems),
        },
        "rows": rows,
    }

"""Stream partitioning strategies.

A partitioner decides which shard(s) each event is routed to.  Three
strategies are provided:

* :class:`KeyPartitioner` — hash an event attribute, so all events sharing
  a key value land on the same shard.  Correct whenever every match is
  guaranteed to bind events of a single key — which :meth:`validate`
  checks conservatively from the pattern's conditions.
* :class:`RoundRobinPartitioner` — spread events evenly regardless of
  content.  Only correct for single-event patterns (a multi-event match
  could straddle shards), which :meth:`validate` enforces.
* :class:`BroadcastPartitioner` — replicate every event to every shard.
  Always correct for any pattern (each shard sees the full stream, so it
  finds the full match set); the merger deduplicates the replicated
  results.  Useful as a safe default and for testing, at the cost of
  doing the full work on every shard.

Partition safety is the classical condition for data-parallel CEP: key
partitioning preserves the match set iff the pattern's conditions confine
every match to one partition key.  We check this structurally: every
pattern variable (including negated ones, whose absence must also be
decided per key) must be connected to every other through equality
predicates on the partition attribute.  Conditions that correlate events
through *other* attributes (e.g. ``a.price < b.price``) do not constrain
the keys, so a match could span keys and key partitioning is refused.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Sequence, Tuple, Union

from repro.conditions import AttributeComparisonCondition
from repro.errors import PartitionError
from repro.events import Event
from repro.patterns import CompositePattern, Pattern

PatternLike = Union[Pattern, CompositePattern]


def _stable_hash(value: object) -> int:
    """A process-independent hash (``hash()`` of strings is randomised).

    Numeric keys are canonicalised first so that values that compare equal
    under the engine's equality joins (``7 == 7.0 == True``) also land on
    the same shard — mirroring Python's own ``hash(1) == hash(1.0)``
    invariant.
    """
    if isinstance(value, bool):
        value = int(value)
    elif isinstance(value, float) and value.is_integer():
        value = int(value)
    digest = hashlib.blake2b(repr(value).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Partitioner:
    """Base class for partitioning strategies."""

    #: Name used in reports and CLI output.
    name: str = "partitioner"

    def route(self, event: Event, num_shards: int) -> Tuple[int, ...]:
        """Shard indices (in ``range(num_shards)``) this event is sent to."""
        raise NotImplementedError

    def validate(self, pattern: PatternLike, num_shards: int) -> None:
        """Raise :class:`PartitionError` if sharded detection under this
        strategy could miss matches of ``pattern``.  The default accepts
        everything; strategies that split the stream override it."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class BroadcastPartitioner(Partitioner):
    """Replicate every event to every shard (always correct)."""

    name = "broadcast"

    def route(self, event: Event, num_shards: int) -> Tuple[int, ...]:
        return tuple(range(num_shards))


class RoundRobinPartitioner(Partitioner):
    """Cycle through the shards event by event.

    Splits the stream with no regard for content, so two events of one
    match can land on different shards.  :meth:`validate` therefore only
    accepts single-event patterns (or a single shard, where no split
    happens).
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, event: Event, num_shards: int) -> Tuple[int, ...]:
        shard = self._next % num_shards
        self._next += 1
        return (shard,)

    def validate(self, pattern: PatternLike, num_shards: int) -> None:
        if num_shards <= 1:
            return
        for subpattern in pattern.subpatterns():
            # A Kleene item binds several events even in a one-item pattern,
            # so splitting the stream would split (and corrupt) its runs.
            if len(subpattern.items) > 1 or any(
                item.kleene for item in subpattern.items
            ):
                raise PartitionError(
                    f"round-robin partitioning over {num_shards} shards would "
                    f"scatter the events of a multi-event match of pattern "
                    f"({subpattern.name!r}) across shards and corrupt the "
                    "match set; use KeyPartitioner or BroadcastPartitioner"
                )


class KeyPartitioner(Partitioner):
    """Route events by the hash of one payload attribute.

    All events carrying the same key value land on the same shard, so any
    match whose events share a key is found by exactly one shard.  Events
    missing the attribute hash to a single deterministic shard (they can
    never satisfy an equality join anyway, so no match is lost).
    """

    name = "key"

    def __init__(self, attribute: str):
        if not attribute:
            raise PartitionError("KeyPartitioner requires a non-empty attribute name")
        self.attribute = attribute

    def route(self, event: Event, num_shards: int) -> Tuple[int, ...]:
        return (_stable_hash(event.get(self.attribute)) % num_shards,)

    # ------------------------------------------------------------------
    # Safety check
    # ------------------------------------------------------------------
    def _key_equality_edges(self, pattern: Pattern) -> Sequence[Tuple[str, str]]:
        """Variable pairs joined by an equality predicate on the key."""
        edges = []
        for condition in pattern.conditions.conjuncts:
            if not isinstance(condition, AttributeComparisonCondition):
                continue
            if condition.op_symbol != "==":
                continue
            if (
                condition.left_attribute == self.attribute
                and condition.right_attribute == self.attribute
            ):
                edges.append((condition.left_variable, condition.right_variable))
        return edges

    def validate(self, pattern: PatternLike, num_shards: int) -> None:
        if num_shards <= 1:
            return
        for subpattern in pattern.subpatterns():
            variables = [item.variable for item in subpattern.items]
            if len(variables) <= 1:
                # A lone Kleene item still combines several events, and with
                # no equality join on the key its runs may mix key values.
                if any(item.kleene for item in subpattern.items):
                    raise PartitionError(
                        f"pattern {subpattern.name!r} is not partitionable by "
                        f"key {self.attribute!r}: its Kleene item may combine "
                        "events with different key values; use "
                        "BroadcastPartitioner"
                    )
                continue
            # Union-find over the key-equality graph: every variable must end
            # up in one component, otherwise a match could combine events
            # with different key values and therefore span shards.
            parent: Dict[str, str] = {v: v for v in variables}

            def find(v: str) -> str:
                while parent[v] != v:
                    parent[v] = parent[parent[v]]
                    v = parent[v]
                return v

            for left, right in self._key_equality_edges(subpattern):
                parent[find(left)] = find(right)
            roots = {find(v) for v in variables}
            if len(roots) > 1:
                raise PartitionError(
                    f"pattern {subpattern.name!r} is not partitionable by key "
                    f"{self.attribute!r}: its conditions do not confine all of "
                    f"{sorted(variables)} to a single key value (events of one "
                    "match could carry different keys and land on different "
                    "shards); add equality joins on the key or use "
                    "BroadcastPartitioner"
                )

    def __repr__(self) -> str:
        return f"<KeyPartitioner attribute={self.attribute!r}>"

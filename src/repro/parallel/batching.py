"""Event batching.

Shards ingest *chunks* of events instead of single events: the dispatcher
pulls a batch from the input stream, routes its events to the shard
buffers, and hands whole batches to the per-shard engines.  Even with the
serial executor this amortises dispatch overhead (one partitioning pass
and one buffer append per batch rather than per event); with the
multiprocess executor it additionally bounds the number of inter-process
hand-offs.

The helpers here are deliberately independent of the rest of the parallel
runtime so :meth:`repro.events.EventStream.batched` can delegate to them
without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from repro.errors import ParallelExecutionError
from repro.events import Event

#: Default number of events per ingestion batch.
DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class EventBatch:
    """An ordered chunk of events pulled from a stream.

    Batches preserve the stream order: events inside a batch are in
    non-decreasing timestamp order, and batch ``index`` increases along the
    stream.
    """

    index: int
    events: Tuple[Event, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    @property
    def first_timestamp(self) -> float:
        if not self.events:
            raise ParallelExecutionError("empty batch has no first timestamp")
        return self.events[0].timestamp

    @property
    def last_timestamp(self) -> float:
        if not self.events:
            raise ParallelExecutionError("empty batch has no last timestamp")
        return self.events[-1].timestamp

    def time_span(self) -> float:
        """``last_timestamp - first_timestamp`` (0 for singleton batches)."""
        if len(self.events) < 2:
            return 0.0
        return self.last_timestamp - self.first_timestamp

    def __repr__(self) -> str:
        return f"EventBatch(index={self.index}, events={len(self.events)})"


def batched(
    stream: Iterable[Event], batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[EventBatch]:
    """Split a stream into consecutive :class:`EventBatch` chunks.

    The last batch may be shorter than ``batch_size``; an empty stream
    yields no batches at all.
    """
    if batch_size < 1:
        raise ParallelExecutionError(
            f"batch_size must be a positive integer, got {batch_size!r}"
        )
    buffer = []
    index = 0
    for event in stream:
        buffer.append(event)
        if len(buffer) >= batch_size:
            yield EventBatch(index=index, events=tuple(buffer))
            buffer.clear()
            index += 1
    if buffer:
        yield EventBatch(index=index, events=tuple(buffer))

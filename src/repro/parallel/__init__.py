"""Partitioned parallel execution of adaptive CEP.

Scales the single-threaded :class:`~repro.engine.AdaptiveCEPEngine` out by
data partitioning: the input stream is split across ``N`` independent
engine replicas (each with its own statistics collector and adaptation
controller), the replicas run under a pluggable executor (in-process
serial or multiprocess), and their match outputs are merged into one
deduplicated, timestamp-ordered result.  The paper's per-shard algorithm
is untouched — a single shard with the serial executor is exactly the
sequential engine.

Quick start::

    from repro.parallel import ParallelCEPEngine, KeyPartitioner, MultiprocessExecutor

    engine = ParallelCEPEngine(
        pattern, GreedyOrderPlanner(), InvariantBasedPolicy(),
        shards=4,
        partitioner=KeyPartitioner("entity_id"),
        executor=MultiprocessExecutor(),
    )
    result = engine.run(stream)   # same RunResult as AdaptiveCEPEngine.run

The partitioner is validated against the pattern before anything runs:
key partitioning is refused when the pattern's conditions could correlate
events across partition keys (see
:meth:`~repro.parallel.partitioner.KeyPartitioner.validate`).
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Union

from repro.adaptive import ReoptimizationPolicy
from repro.engine import Match, RunResult
from repro.errors import ParallelExecutionError
from repro.events import Event, EventStream
from repro.optimizer import PlanGenerator
from repro.parallel.batching import DEFAULT_BATCH_SIZE, EventBatch, batched
from repro.parallel.executor import (
    MultiprocessExecutor,
    SerialExecutor,
    ShardExecutor,
)
from repro.parallel.merger import (
    UNBOUNDED_DEDUP_WINDOW,
    StreamingMatchDeduplicator,
    match_signature,
    merge_matches,
    merge_outputs,
)
from repro.parallel.partitioner import (
    BroadcastPartitioner,
    KeyPartitioner,
    Partitioner,
    RoundRobinPartitioner,
)
from repro.parallel.shard import Shard, ShardedEngine, ShardOutput, build_replica
from repro.multi.registry import PatternSet
from repro.patterns import CompositePattern, Pattern
from repro.statistics import StatisticsProvider, StatisticsSnapshot

PatternLike = Union[Pattern, CompositePattern, PatternSet]


class ParallelCEPEngine:
    """Sharded adaptive CEP over one pattern (mirrors ``AdaptiveCEPEngine.run``).

    Parameters
    ----------
    pattern / planner / policy:
        Exactly as for :class:`~repro.engine.AdaptiveCEPEngine`; each shard
        receives its own deep copy of the planner and policy.
    shards:
        Number of independent engine replicas.
    partitioner:
        Event-routing strategy; defaults to the always-correct
        :class:`BroadcastPartitioner`.
    executor:
        Shard execution strategy; defaults to the deterministic
        :class:`SerialExecutor`.
    batch_size:
        Events per ingestion batch (chunked dispatch to the shards).
    statistics_provider / initial_snapshot / monitoring_interval / introspect /
    compile_mode:
        Forwarded to every shard's engine replica.
    validate_partitioning:
        When true (default), the partitioner's safety check runs against
        the pattern before any event is routed.
    """

    def __init__(
        self,
        pattern: PatternLike,
        planner: PlanGenerator,
        policy: ReoptimizationPolicy,
        shards: int = 1,
        partitioner: Optional[Partitioner] = None,
        executor: Optional[ShardExecutor] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        statistics_provider: Optional[StatisticsProvider] = None,
        initial_snapshot: Optional[StatisticsSnapshot] = None,
        monitoring_interval: float = 1.0,
        validate_partitioning: bool = True,
        introspect: bool = False,
        compile_mode: str = "interpreted",
    ):
        self.pattern = pattern
        self._partitioner = partitioner or BroadcastPartitioner()
        self._executor = executor or SerialExecutor()
        self._batch_size = int(batch_size)
        if validate_partitioning:
            self._partitioner.validate(pattern, shards)
        self._sharded = ShardedEngine(
            pattern,
            planner,
            policy,
            num_shards=shards,
            statistics_provider=statistics_provider,
            initial_snapshot=initial_snapshot,
            monitoring_interval=monitoring_interval,
            introspect=introspect,
            compile_mode=compile_mode,
        )
        # Lazily created on first process() call (streaming ingestion).
        self._streaming_dedup: Optional[StreamingMatchDeduplicator] = None
        self._batch_run_started = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._sharded.num_shards

    @property
    def partitioner(self) -> Partitioner:
        return self._partitioner

    @property
    def executor(self) -> ShardExecutor:
        return self._executor

    @property
    def sharded_engine(self) -> ShardedEngine:
        return self._sharded

    def partial_match_count(self) -> int:
        """Live partial matches summed across every shard replica."""
        return sum(
            shard.engine.partial_match_count() for shard in self._sharded.shards
        )

    @property
    def plan_history(self) -> "list[str]":
        """Installed-plan descriptions across all shard replicas, in shard
        order (replicas adapt independently)."""
        history: "list[str]" = []
        for shard in self._sharded.shards:
            history.extend(shard.engine.plan_history)
        return history

    def introspection(self) -> dict:
        """Per-shard introspection frames under one facade-level dict."""
        return {
            "pattern": self.pattern.name,
            "shards": {
                shard.shard_id: shard.engine.introspection()
                for shard in self._sharded.shards
            },
            "partitioner": type(self._partitioner).__name__,
            "partial_matches": {"live": self.partial_match_count()},
        }

    # ------------------------------------------------------------------
    # Event-at-a-time API (streaming ingestion)
    # ------------------------------------------------------------------
    def process(self, event: Event) -> "list[Match]":
        """Route one event through the partitioner and evaluate it now.

        The streaming counterpart of :meth:`run`: events flow through the
        partitioner to the shard replicas *as they arrive* instead of being
        buffered for a whole-stream split, and matches are returned
        immediately.  Replicating partitioners (broadcast) make every shard
        report the same detections, so an online deduplicator — with memory
        bounded by the pattern window — suppresses repeats before they
        reach the caller.

        Runs the shards in-process (the streaming pipeline's single-writer
        loop); the pluggable executor only applies to the batch :meth:`run`
        path.  Do not interleave with :meth:`run` on the same instance.
        """
        if self._batch_run_started:
            raise ParallelExecutionError(
                "this ParallelCEPEngine already ran in batch mode; create a "
                "fresh engine for streaming ingestion"
            )
        if self._streaming_dedup is None:
            self._streaming_dedup = StreamingMatchDeduplicator(
                window=self.pattern.window
                if self.pattern.window != float("inf")
                else UNBOUNDED_DEDUP_WINDOW
            )
        matches = self._sharded.process_event(event, self._partitioner)
        if not matches:
            return []
        return self._streaming_dedup.filter(matches, now=event.timestamp)

    def process_batch(self, events: "list[Event]") -> "list[Match]":
        """Streaming counterpart of a batch dispatch: events are routed in
        stream order through :meth:`process`, so the concatenated output
        matches event-at-a-time processing exactly (the unified
        :class:`~repro.engine.CEPEngine` surface)."""
        matches: "list[Match]" = []
        for event in events:
            matches.extend(self.process(event))
        return matches

    # ------------------------------------------------------------------
    # State snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> bytes:
        """Serialize every shard replica plus the partitioner/deduplication
        state; see :func:`repro.engine.state.snapshot_engine`."""
        from repro.engine.state import snapshot_engine

        return snapshot_engine(self)

    @classmethod
    def restore_state(cls, blob: bytes) -> "ParallelCEPEngine":
        """Rebuild a sharded engine from a :meth:`snapshot_state` blob."""
        from repro.engine.state import restore_engine

        engine = restore_engine(blob)
        if not isinstance(engine, cls):
            raise ParallelExecutionError(
                f"snapshot holds a {type(engine).__name__}, not a {cls.__name__}"
            )
        return engine

    def _delta_keyed_state(self):
        """Change-tracked collections of every shard replica plus the
        streaming deduplicator (incremental-snapshot hook)."""
        slots = []
        for shard in self._sharded.shards:
            slots.extend(
                (f"shard{shard.shard_id}.{name}", holder, attr)
                for name, holder, attr in shard.engine._delta_keyed_state()
            )
        if self._streaming_dedup is not None:
            slots.extend(
                (f"dedup.{name}", holder, attr)
                for name, holder, attr in self._streaming_dedup._delta_keyed_state()
            )
        return slots

    def _delta_frozen_state(self):
        """Immutable roots across the facade and its shard replicas."""
        roots = [self.pattern]
        for shard in self._sharded.shards:
            roots.extend(shard.engine._delta_frozen_state())
        return roots

    def snapshot_delta(self, since_epoch=None, epoch=None) -> bytes:
        """Framed incremental snapshot of every shard's state changed since
        ``since_epoch``; see :func:`repro.streaming.delta.engine_snapshot_delta`."""
        from repro.streaming.delta import engine_snapshot_delta

        return engine_snapshot_delta(self, since_epoch, epoch)

    # ------------------------------------------------------------------
    # Whole-stream API
    # ------------------------------------------------------------------
    def run(self, stream: "EventStream | Iterable[Event]") -> RunResult:
        """Partition, execute and merge: the sharded counterpart of
        :meth:`AdaptiveCEPEngine.run`."""
        if self._streaming_dedup is not None:
            raise ParallelExecutionError(
                "this ParallelCEPEngine is already ingesting in streaming "
                "mode; create a fresh engine for a batch run"
            )
        self._batch_run_started = True
        started = time.perf_counter()
        ingested = self._sharded.dispatch(
            stream, self._partitioner, batch_size=self._batch_size
        )
        try:
            outputs = self._executor.execute(self._sharded.shards)
        finally:
            # The multiprocess executor runs *copies* of the shards, so the
            # local buffers must be drained here too — otherwise a later
            # run() would re-dispatch this stream's events alongside the
            # next one's.
            for shard in self._sharded.shards:
                shard.clear_batches()
        wall_seconds = time.perf_counter() - started
        return merge_outputs(
            outputs, events_ingested=ingested, wall_seconds=wall_seconds
        )


__all__ = [
    "ParallelCEPEngine",
    # partitioning
    "Partitioner",
    "KeyPartitioner",
    "RoundRobinPartitioner",
    "BroadcastPartitioner",
    # sharding
    "Shard",
    "ShardOutput",
    "ShardedEngine",
    "build_replica",
    # batching
    "EventBatch",
    "batched",
    "DEFAULT_BATCH_SIZE",
    # execution
    "ShardExecutor",
    "SerialExecutor",
    "MultiprocessExecutor",
    # merging
    "match_signature",
    "merge_matches",
    "merge_outputs",
    "StreamingMatchDeduplicator",
    "UNBOUNDED_DEDUP_WINDOW",
]

"""Sharded engine replicas.

A :class:`Shard` owns one independent engine replica (a full
:class:`~repro.engine.AdaptiveCEPEngine` — or
:class:`~repro.engine.MultiPatternEngine` for composite patterns — with
its own statistics collector and adaptation controller) plus the batches
of events routed to it.  :class:`ShardedEngine` builds ``N`` such shards
from one pattern/planner/policy specification and dispatches a stream
across them through a partitioner.

The per-shard algorithm is exactly the paper's ACEP loop — sharding only
decides *which* events each replica sees, never *how* they are evaluated,
so a single shard fed the whole stream behaves bit-for-bit like the
unsharded engine.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.adaptive import ReoptimizationPolicy
from repro.engine import AdaptiveCEPEngine, Match, MultiPatternEngine
from repro.errors import ParallelExecutionError
from repro.events import Event, EventStream
from repro.metrics import RunMetrics
from repro.optimizer import PlanGenerator
from repro.parallel.batching import DEFAULT_BATCH_SIZE, EventBatch, batched
from repro.parallel.partitioner import Partitioner
from repro.patterns import CompositePattern, Pattern
from repro.statistics import StatisticsProvider, StatisticsSnapshot

PatternLike = Union[Pattern, CompositePattern]
EngineLike = Union[AdaptiveCEPEngine, MultiPatternEngine]


@dataclass
class ShardOutput:
    """Result of running one shard to completion (picklable)."""

    shard_id: int
    matches: List[Match]
    metrics: RunMetrics
    plan_history: List[str] = field(default_factory=list)


class Shard:
    """One engine replica plus its buffered input batches.

    A shard is self-contained and picklable: the multiprocess executor
    ships the whole object (engine state and buffered events) to a worker
    process and gets a :class:`ShardOutput` back.

    Two lifecycles are supported.  The batch path buffers input with
    :meth:`add_batch` and drains it with the run-to-completion :meth:`run`.
    The streaming-worker path instead alternates :meth:`feed` (process a
    batch incrementally, return the matches it produced *now*) with a final
    :meth:`flush` — the init/feed/flush split that lets a long-lived worker
    host the replica across an unbounded stream.
    """

    def __init__(self, shard_id: int, engine: EngineLike):
        self.shard_id = shard_id
        self.engine = engine
        self._batches: List[EventBatch] = []
        self.events_fed = 0
        self.matches_found = 0

    def add_batch(self, batch: EventBatch) -> None:
        self._batches.append(batch)

    def clear_batches(self) -> None:
        """Drop buffered input (the executor's copy may already have run it)."""
        self._batches = []

    @property
    def batches(self) -> List[EventBatch]:
        return list(self._batches)

    @property
    def pending_events(self) -> int:
        return sum(len(batch) for batch in self._batches)

    def _events(self):
        for batch in self._batches:
            yield from batch

    def run(self) -> ShardOutput:
        """Drain the buffered batches through the engine replica."""
        result = self.engine.run(self._events())
        self.clear_batches()
        return ShardOutput(
            shard_id=self.shard_id,
            matches=result.matches,
            metrics=result.metrics,
            plan_history=result.plan_history,
        )

    # ------------------------------------------------------------------
    # Streaming-worker lifecycle (init / feed / flush)
    # ------------------------------------------------------------------
    def feed(self, events: Sequence[Event]) -> List[Match]:
        """Process one batch incrementally; return the matches found now.

        Unlike :meth:`run`, the replica keeps its open partial matches and
        adaptation state between calls — the shape a long-lived worker
        process needs.  Events must arrive in non-decreasing timestamp
        order across calls (the same contract the engines place on a
        stream); a pipeline ingesting out-of-order arrivals restores that
        order upstream with the event-time reordering stage
        (:mod:`repro.streaming.ordering`) before events are partitioned
        into the shard queues.
        """
        events = list(events)
        matches = self.engine.process_batch(events)
        self.events_fed += len(events)
        self.matches_found += len(matches)
        return matches

    def flush(self) -> ShardOutput:
        """End the streaming lifecycle: summarize the fed work.

        The engines detect eagerly (every match is returned by the
        :meth:`feed` that completed it), so flushing emits no new matches —
        it closes the books: a picklable :class:`ShardOutput` with the
        replica's counters and plan history for the coordinator to merge.
        """
        metrics = RunMetrics(
            events_processed=self.events_fed,
            matches_emitted=self.matches_found,
        )
        return ShardOutput(
            shard_id=self.shard_id,
            matches=[],
            metrics=metrics,
            plan_history=list(getattr(self.engine, "plan_history", [])),
        )

    def __repr__(self) -> str:
        return f"<Shard id={self.shard_id} pending={self.pending_events}>"


class ShardedEngine:
    """``N`` independent engine replicas over one pattern.

    Each replica gets its *own* deep copy of the planner and the decision
    policy: policies are stateful (invariants, reference snapshots), and
    every shard adapts independently to the statistics of its sub-stream.
    """

    def __init__(
        self,
        pattern: PatternLike,
        planner: PlanGenerator,
        policy: ReoptimizationPolicy,
        num_shards: int,
        statistics_provider: Optional[StatisticsProvider] = None,
        initial_snapshot: Optional[StatisticsSnapshot] = None,
        monitoring_interval: float = 1.0,
        introspect: bool = False,
        compile_mode: str = "interpreted",
    ):
        if num_shards < 1:
            raise ParallelExecutionError(
                f"num_shards must be a positive integer, got {num_shards!r}"
            )
        self.pattern = pattern
        self._num_shards = int(num_shards)
        self._shards = [
            Shard(
                shard_id,
                build_replica(
                    pattern,
                    planner,
                    policy,
                    statistics_provider,
                    initial_snapshot,
                    monitoring_interval,
                    introspect=introspect,
                    compile_mode=compile_mode,
                ),
            )
            for shard_id in range(self._num_shards)
        ]

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def shards(self) -> List[Shard]:
        return list(self._shards)

    def process_event(self, event: Event, partitioner: Partitioner) -> List[Match]:
        """Streaming ingestion: route one event and evaluate it immediately.

        The incremental counterpart of :meth:`dispatch` + execute — used by
        the streaming pipeline, where events arrive one at a time and
        matches must be emitted as they are found rather than at
        end-of-stream.  Each routed shard's replica processes the event
        in-process; the caller is responsible for cross-shard deduplication
        (see :class:`~repro.parallel.merger.StreamingMatchDeduplicator`)
        when the partitioner replicates events.
        """
        matches: List[Match] = []
        for shard_id in partitioner.route(event, self._num_shards):
            matches.extend(self._shards[shard_id].engine.process(event))
        return matches

    def dispatch(
        self,
        stream: "EventStream | List[Event]",
        partitioner: Partitioner,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> int:
        """Route a stream into the shard buffers batch by batch.

        Returns the number of *distinct* input events ingested (broadcast
        replication does not inflate the count).  Events are routed in
        stream order, so each shard's buffer remains timestamp-ordered.
        """
        ingested = 0
        buckets: List[List[Event]] = [[] for _ in range(self._num_shards)]
        for batch in batched(stream, batch_size):
            ingested += len(batch)
            for bucket in buckets:
                bucket.clear()
            for event in batch:
                for shard_id in partitioner.route(event, self._num_shards):
                    buckets[shard_id].append(event)
            for shard, bucket in zip(self._shards, buckets):
                if bucket:
                    shard.add_batch(EventBatch(index=batch.index, events=tuple(bucket)))
        return ingested


def build_replica(
    pattern: PatternLike,
    planner: PlanGenerator,
    policy: ReoptimizationPolicy,
    statistics_provider: Optional[StatisticsProvider],
    initial_snapshot: Optional[StatisticsSnapshot],
    monitoring_interval: float,
    introspect: bool = False,
    compile_mode: str = "interpreted",
) -> EngineLike:
    """One fresh engine with private planner/policy copies."""
    replica_planner = copy.deepcopy(planner)
    replica_policy = copy.deepcopy(policy)
    if not isinstance(pattern, Pattern) and hasattr(pattern, "subpatterns"):
        # CompositePattern or PatternSet: normalise through the registry so
        # the replica gets stable per-pattern ids (and no deprecation shim).
        from repro.multi.registry import as_pattern_set

        return MultiPatternEngine(
            as_pattern_set(pattern),
            replica_planner,
            policy_factory=lambda: copy.deepcopy(replica_policy),
            statistics_provider=statistics_provider,
            initial_snapshot=initial_snapshot,
            monitoring_interval=monitoring_interval,
            introspect=introspect,
            compile_mode=compile_mode,
        )
    return AdaptiveCEPEngine(
        pattern,
        replica_planner,
        replica_policy,
        statistics_provider=statistics_provider,
        initial_snapshot=initial_snapshot,
        monitoring_interval=monitoring_interval,
        introspect=introspect,
        compile_mode=compile_mode,
    )

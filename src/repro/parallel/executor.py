"""Pluggable shard executors.

An executor takes the populated shards and runs each replica to
completion, returning the per-shard outputs in shard order:

* :class:`SerialExecutor` runs the shards one after another in-process —
  fully deterministic, no pickling, the right choice for tests and for
  measuring per-shard work without parallel interference.
* :class:`MultiprocessExecutor` ships each shard (engine state plus
  buffered batches) to a :class:`concurrent.futures.ProcessPoolExecutor`
  worker for real CPU parallelism.  Shards must be picklable — every
  component shipped with the library is; user-supplied conditions must
  avoid closures/lambdas to participate.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence

from repro.errors import ParallelExecutionError
from repro.parallel.shard import Shard, ShardOutput


class ShardExecutor:
    """Base class for shard execution strategies."""

    name: str = "executor"

    def execute(self, shards: Sequence[Shard]) -> List[ShardOutput]:
        """Run every shard to completion; outputs ordered by shard id."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class SerialExecutor(ShardExecutor):
    """Run the shards sequentially in the calling process."""

    name = "serial"

    def execute(self, shards: Sequence[Shard]) -> List[ShardOutput]:
        return [shard.run() for shard in sorted(shards, key=lambda s: s.shard_id)]


def _run_shard(shard: Shard) -> ShardOutput:
    """Module-level worker entry point (must be picklable by reference)."""
    return shard.run()


class MultiprocessExecutor(ShardExecutor):
    """Run each shard in its own worker process.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent worker processes; defaults to one per
        shard (capped by the interpreter's own CPU-count default).
    """

    name = "multiprocess"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ParallelExecutionError(
                f"max_workers must be positive, got {max_workers!r}"
            )
        self._max_workers = max_workers

    def execute(self, shards: Sequence[Shard]) -> List[ShardOutput]:
        shards = sorted(shards, key=lambda s: s.shard_id)
        if len(shards) <= 1:
            # No parallelism to gain; avoid process start-up cost entirely.
            return [shard.run() for shard in shards]
        # Pre-check the engines only (a few KB each, unlike the buffered
        # event batches): an unpicklable shard is almost always a closure in
        # the pattern's conditions, and this names the shard precisely
        # without serializing the whole stream twice.
        for shard in shards:
            try:
                pickle.dumps(shard.engine)
            except Exception as exc:
                raise ParallelExecutionError(
                    f"shard {shard.shard_id} is not picklable (user-supplied "
                    "conditions must be module-level classes or functions, "
                    f"not closures): {exc}"
                ) from exc
        workers = self._max_workers or len(shards)
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(shards))) as pool:
                return list(pool.map(_run_shard, shards))
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            # CPython surfaces submission-time serialization failures (e.g.
            # an unpicklable event payload) as PicklingError, AttributeError
            # or TypeError mentioning pickling; genuine worker exceptions
            # propagate unchanged.
            if "pickle" in str(exc).lower():
                raise ParallelExecutionError(
                    f"shard state is not picklable: {exc}"
                ) from exc
            raise
        except BrokenProcessPool as exc:
            raise ParallelExecutionError(
                f"a shard worker process died unexpectedly: {exc}"
            ) from exc

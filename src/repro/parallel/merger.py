"""Match merging and metric aggregation across shards.

Per-shard match lists are merged into one timestamp-ordered, duplicate-free
list.  Duplicates arise from broadcast partitioning (every shard finds the
same matches); they are identified by a canonical *signature* — the pattern
name plus the exact events bound to each variable — so two shards reporting
the same detection are collapsed while genuinely distinct matches that
happen to share a detection time are kept.

The per-shard :class:`~repro.metrics.RunMetrics` are folded into one
aggregate: work counters (partial matches, extension attempts,
reoptimizations, adaptation time) are summed, ``events_processed`` reflects
the distinct input events, and ``duration_seconds`` is the wall-clock time
of the whole parallel run (so throughput reflects actual elapsed time, not
the sum of shard times).  Per-shard totals are preserved in
``metrics.extra``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.engine import Match, RunResult
from repro.metrics import RunMetrics
from repro.parallel.shard import ShardOutput

#: Deduplication window substituted for patterns with an unbounded window
#: (shared by the inline streaming path and the worker backends, so every
#: execution mode evicts duplicate signatures at the same stream horizon).
UNBOUNDED_DEDUP_WINDOW = 100.0


def match_signature(match: Match) -> Tuple:
    """Canonical identity of a match: pattern plus per-variable event ids."""
    bound = []
    for variable in sorted(match.bindings):
        value = match.bindings[variable]
        if isinstance(value, list):
            ids = tuple(
                (event.type_name, event.timestamp, event.sequence_number)
                for event in value
            )
        else:
            ids = ((value.type_name, value.timestamp, value.sequence_number),)
        bound.append((variable, ids))
    return (match.pattern_name, tuple(bound))


def merge_matches(outputs: Sequence[ShardOutput]) -> Tuple[List[Match], int]:
    """Merge per-shard matches into one ordered, deduplicated list.

    Returns ``(matches, duplicates_dropped)``.  Matches are ordered by
    detection time (ties broken by signature for determinism); the sort is
    stable, so a single shard's emission order is preserved.
    """
    collected = []
    for output in sorted(outputs, key=lambda o: o.shard_id):
        collected.extend(output.matches)
    # Signatures are computed once per match (they walk every binding, so
    # recomputing them inside the sort comparator would dominate the merge).
    keyed = [
        ((match.detection_time, match_signature(match)), match)
        for match in collected
    ]
    keyed.sort(key=lambda pair: pair[0])

    merged: List[Match] = []
    seen = set()
    for (_, signature), match in keyed:
        if signature in seen:
            continue
        seen.add(signature)
        merged.append(match)
    return merged, len(collected) - len(merged)


class StreamingMatchDeduplicator:
    """Online duplicate suppression for streaming (event-at-a-time) sharding.

    When events are fed incrementally through a broadcast partitioner, every
    shard reports the same detections; this filter admits the first report
    of each match signature and drops the rest.  Seen signatures are evicted
    once they fall a pattern window behind the stream clock — a match whose
    events have all expired can never be re-reported, so the memory of the
    filter is bounded by the window like the engines' own partial-match
    state.
    """

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError(f"deduplication window must be positive, got {window!r}")
        self.window = float(window)
        self._seen: "dict[Tuple, float]" = {}
        self._last_eviction = float("-inf")
        self.duplicates_dropped = 0

    def filter(self, matches: Sequence[Match], now: float) -> List[Match]:
        """Admit first-seen matches; ``now`` is the current stream time."""
        # Evict at most once per window of stream time: a full-dict sweep per
        # event would turn the hot path quadratic.
        if self._seen and now - self._last_eviction >= self.window:
            # Age each signature with the same subtraction the admission
            # contract uses (now - seen_at); deriving a shared horizon via
            # now - window rounds differently and can evict a signature
            # that is exactly one window old.
            self._seen = {
                signature: seen_at
                for signature, seen_at in self._seen.items()
                if now - seen_at <= self.window
            }
            self._last_eviction = now
        admitted: List[Match] = []
        for match in matches:
            signature = match_signature(match)
            if signature in self._seen:
                self.duplicates_dropped += 1
                continue
            self._seen[signature] = match.detection_time
            admitted.append(match)
        return admitted

    def _delta_keyed_state(self):
        """Change-tracked collections (incremental-snapshot hook): the
        window-bounded seen-signature map, which dwarfs the rest of the
        filter's state on long runs."""
        return [("seen", self, "_seen")]

    def __repr__(self) -> str:
        return (
            f"<StreamingMatchDeduplicator window={self.window:g} "
            f"tracked={len(self._seen)} dropped={self.duplicates_dropped}>"
        )


def merge_outputs(
    outputs: Sequence[ShardOutput],
    events_ingested: int,
    wall_seconds: float,
) -> RunResult:
    """Fold shard outputs into one :class:`~repro.engine.RunResult`."""
    matches, duplicates = merge_matches(outputs)
    metrics = RunMetrics(
        events_processed=events_ingested,
        matches_emitted=len(matches),
        duration_seconds=wall_seconds,
    )
    shard_seconds = 0.0
    events_dispatched = 0
    plan_history: List[str] = []
    for output in sorted(outputs, key=lambda o: o.shard_id):
        shard_metrics = output.metrics
        metrics.reoptimizations += shard_metrics.reoptimizations
        metrics.decisions_evaluated += shard_metrics.decisions_evaluated
        metrics.time_in_decision += shard_metrics.time_in_decision
        metrics.time_in_generation += shard_metrics.time_in_generation
        metrics.partial_matches_created += shard_metrics.partial_matches_created
        metrics.extension_attempts += shard_metrics.extension_attempts
        shard_seconds += shard_metrics.duration_seconds
        events_dispatched += shard_metrics.events_processed
        plan_history.extend(
            f"shard {output.shard_id}: {plan}" for plan in output.plan_history
        )
    metrics.extra.update(
        {
            "shards": float(len(outputs)),
            "events_dispatched": float(events_dispatched),
            "shard_seconds": shard_seconds,
            "duplicates_dropped": float(duplicates),
        }
    )
    return RunResult(matches=matches, metrics=metrics, plan_history=plan_history)

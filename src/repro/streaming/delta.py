"""Incremental (differential) engine-state snapshots.

A full checkpoint pickles the whole engine object graph (see
:mod:`repro.engine.state`).  That is simple and correct, but at a high
checkpoint cadence it is wasteful: profiling shows the overwhelming
majority of a long-running engine's state lives in a handful of *keyed
collections* that evolve incrementally — the emitted-match signature sets
of the evaluation engines and the duplicate-suppression signature map of
the sharded merger — while everything else (pattern, plans, statistics
buckets, partial-match buffers, adaptation state) is small.

Byte-level diffing of the full pickle does **not** work: removing one
element early in the object graph renumbers every later pickle memo
reference, so consecutive snapshots share almost no bytes (measured ~0%
chunk reuse under sliding-window eviction).  Instead, a delta snapshot is
taken at the object level:

* every engine exposes ``_delta_keyed_state()`` — the change-tracking API
  listing its big keyed collections as ``(name, holder, attribute)``
  slots (nested engines prefix their children's names, so a sharded
  engine exposes ``shard0.active.emitted`` and so on);
* the tracked collections are swapped out for a sentinel and the
  remaining object graph — the *skeleton* — is pickled whole (cheap, and
  aliasing inside the skeleton is preserved exactly because it is one
  pickle);
* each tracked collection is diffed against the copy remembered at the
  previous epoch: the delta ships only added/removed set elements and
  inserted/updated/deleted map entries.

Replaying a chain — the base snapshot's collections plus every delta in
epoch order, injected into the newest delta's skeleton — rebuilds the
exact engine state of the newest epoch (a property the Hypothesis suite
enforces at every epoch).  Frames are written with a magic string, a
format version and a CRC32 (:func:`repro.engine.state.snapshot_delta_state`),
so torn or corrupted delta files fail loudly and the checkpoint store can
fall back to the longest intact chain prefix.
"""

from __future__ import annotations

import io
import pickle
import pickletools
import weakref
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.state import (
    is_shard_snapshot,
    restore_delta_state,
    restore_engine,
    restore_shard_states,
    snapshot_delta_state,
    snapshot_engine,
    snapshot_shard_states,
)
from repro.errors import CheckpointError


class _ExtractedSlot:
    """Sentinel standing in for a tracked collection inside a skeleton."""

    _instance: Optional["_ExtractedSlot"] = None

    def __new__(cls) -> "_ExtractedSlot":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_ExtractedSlot, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<extracted delta slot>"


EXTRACTED = _ExtractedSlot()


def delta_keyed_slots(target: object) -> List[Tuple[str, object, str]]:
    """The change-tracked collection slots of an engine (or merger) object.

    Resolved through the ``_delta_keyed_state()`` hook; every slot is a
    ``(name, holder, attribute)`` triple where ``getattr(holder, attribute)``
    is a ``set`` or ``dict``.  Names must be unique and deterministic for
    the same logical state — they key the per-epoch diffs.
    """
    hook = getattr(target, "_delta_keyed_state", None)
    if hook is None:
        raise CheckpointError(
            f"{type(target).__name__} does not support incremental snapshots "
            "(no _delta_keyed_state() change-tracking hook)"
        )
    slots = list(hook())
    names = [name for name, _holder, _attr in slots]
    if len(set(names)) != len(names):
        raise CheckpointError(
            f"{type(target).__name__} reported duplicate delta slot names: "
            f"{sorted(names)}"
        )
    return slots


def supports_delta(target: object) -> bool:
    """Whether ``target`` implements the change-tracking hook."""
    return callable(getattr(target, "_delta_keyed_state", None))


def frozen_roots(target: object) -> List[object]:
    """The engine's immutable configuration roots, deduplicated by identity.

    Resolved through the optional ``_delta_frozen_state()`` hook: objects
    (pattern, evaluation plans, the stateless planner) that never mutate
    after construction.  Delta skeletons pickle references to them as tiny
    persistent-id tokens instead of re-serializing the objects at every
    epoch; restore resolves the tokens against the same enumeration over
    the restored base engine.  Enumeration must therefore be deterministic
    attribute navigation — never iteration over a set — and listing a
    *mutable* object here would silently resurrect its base-time state on
    restore.
    """
    hook = getattr(target, "_delta_frozen_state", None)
    roots: List[object] = []
    seen: set = set()
    if hook is not None:
        for obj in hook():
            if obj is not None and id(obj) not in seen:
                seen.add(id(obj))
                roots.append(obj)
    return roots


def extract_keyed_state(
    target: object, cold_ids: Optional[Dict[int, Tuple[str, int]]] = None
) -> Tuple[bytes, Dict[str, Any]]:
    """Split ``target`` into ``(skeleton_blob, collections)``.

    The tracked collections are swapped out for a sentinel, the remaining
    graph is pickled as one blob (so aliasing between skeleton components
    — e.g. the statistics collector shared by the migration engines — is
    preserved exactly), and the original collections are swapped back in
    before returning.  With ``cold_ids`` (object id → persistent token),
    references to the registered immutable roots are pickled as tokens
    instead of the objects themselves.  The returned collections are the
    *live* objects; callers must copy before retaining them.
    """
    slots = delta_keyed_slots(target)
    saved: List[Tuple[object, str, Any]] = []
    try:
        for _name, holder, attr in slots:
            value = getattr(holder, attr)
            if isinstance(value, _ExtractedSlot):
                raise CheckpointError(
                    f"slot {attr!r} of {type(holder).__name__} is already "
                    "extracted (re-entrant delta snapshot?)"
                )
            if not isinstance(value, (set, dict, deque)):
                raise CheckpointError(
                    f"delta slot {attr!r} of {type(holder).__name__} must be "
                    f"a set, dict or bucket deque, got {type(value).__name__}"
                )
            saved.append((holder, attr, value))
            setattr(holder, attr, EXTRACTED)
        try:
            if cold_ids:
                buffer = io.BytesIO()
                pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
                pickler.persistent_id = lambda obj: cold_ids.get(id(obj))
                pickler.dump(target)
                skeleton = pickletools.optimize(buffer.getvalue())
            else:
                skeleton = pickletools.optimize(
                    pickle.dumps(target, protocol=pickle.HIGHEST_PROTOCOL)
                )
        except Exception as exc:
            raise CheckpointError(
                f"engine skeleton is not picklable: {exc}"
            ) from exc
    finally:
        for holder, attr, value in saved:
            setattr(holder, attr, value)
    collections = {name: getattr(holder, attr) for name, holder, attr in slots}
    return skeleton, collections


def inject_keyed_state(
    skeleton: bytes,
    collections: Dict[str, Any],
    cold_objects: Optional[List[object]] = None,
    kinds: Optional[Dict[str, str]] = None,
) -> object:
    """Rebuild an object from a skeleton blob plus materialized collections."""

    def resolve(token):
        if (
            not isinstance(token, tuple)
            or len(token) != 2
            or token[0] != "cold"
            or cold_objects is None
            or not 0 <= token[1] < len(cold_objects)
        ):
            raise CheckpointError(
                f"delta skeleton references unknown cold object {token!r}; "
                "was the chain's base produced by an incompatible build?"
            )
        return cold_objects[token[1]]

    try:
        unpickler = pickle.Unpickler(io.BytesIO(skeleton))
        unpickler.persistent_load = resolve
        target = unpickler.load()
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"corrupt delta skeleton: {exc}") from exc
    slots = delta_keyed_slots(target)
    slot_names = {name for name, _holder, _attr in slots}
    missing = slot_names - set(collections)
    extra = set(collections) - slot_names
    if missing or extra:
        raise CheckpointError(
            "delta chain is inconsistent with the skeleton's slots "
            f"(missing={sorted(missing)}, unexpected={sorted(extra)})"
        )
    for name, holder, attr in slots:
        value = collections[name]
        kind = (kinds or {}).get(name) or _collection_kind(value)
        setattr(holder, attr, _restore_native(kind, value))
    return target


def _collection_kind(value: Any) -> str:
    if isinstance(value, set):
        return "set"
    if isinstance(value, deque):
        return "buckets"
    return "map"


def _as_mapping(value: Any) -> Any:
    """Normalize a tracked collection for diffing.

    Sets diff as sets; dicts as key→value maps; bucket deques — the
    sliding-window statistics counters' ``(bucket_start, count)`` runs,
    which append at the tail, update the newest bucket in place and expire
    at the head — normalize to a ``start → count`` map (starts are unique
    and ascending, so the deque reassembles exactly by sorting).
    """
    if isinstance(value, set):
        return set(value)
    if isinstance(value, deque):
        return dict(value)
    return dict(value)


def _restore_native(kind: str, value: Any) -> Any:
    if kind == "set":
        return set(value)
    if kind == "buckets":
        return deque(sorted(value.items()))
    return dict(value)


def _copy_collection(value: Any) -> Any:
    return _as_mapping(value)


def _diff_collection(prev: Optional[Any], current: Any) -> Dict[str, Any]:
    """One collection's per-epoch diff entry.

    Sets ship added/removed elements; maps (and bucket deques, normalized
    to maps) ship inserted-or-updated pairs and deleted keys.  When a diff
    would be larger than the collection itself (e.g. the positional slot
    name now refers to a different engine after a plan switch), the entry
    degrades to a self-contained ``reset``.
    """
    kind = _collection_kind(current)
    current_map = _as_mapping(current)
    if isinstance(current_map, set):
        if prev is None or not isinstance(prev, set):
            adds, dels, reset = list(current_map), [], True
        else:
            adds = list(current_map - prev)
            dels = list(prev - current_map)
            if len(adds) + len(dels) >= max(1, len(current_map)):
                adds, dels, reset = list(current_map), [], True
            else:
                reset = False
    else:
        if prev is None or isinstance(prev, set):
            adds, dels, reset = list(current_map.items()), [], True
        else:
            adds = [
                (key, value)
                for key, value in current_map.items()
                if key not in prev or prev[key] != value
            ]
            dels = [key for key in prev.keys() if key not in current_map]
            if len(adds) + len(dels) >= max(1, len(current_map)):
                adds, dels, reset = list(current_map.items()), [], True
            else:
                reset = False
    try:
        adds_blob = pickle.dumps(adds, protocol=pickle.HIGHEST_PROTOCOL)
        dels_blob = pickle.dumps(dels, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"delta collection elements are not picklable: {exc}"
        ) from exc
    return {"kind": kind, "reset": reset, "adds": adds_blob, "dels": dels_blob}


def _apply_collection(entry: Dict[str, Any], current: Optional[Any]) -> Any:
    adds = pickle.loads(entry["adds"])
    dels = pickle.loads(entry["dels"])
    if entry["kind"] == "set":
        value = set() if (entry["reset"] or not isinstance(current, set)) else current
        value.difference_update(dels)
        value.update(adds)
        return value
    value = {} if (entry["reset"] or not isinstance(current, dict)) else current
    for key in dels:
        value.pop(key, None)
    value.update(adds)
    return value


class DeltaTracker:
    """Change tracking for one live engine (or merger) object.

    One tracker accompanies one object through its life between two base
    snapshots: :meth:`prime` remembers the keyed-collection contents at a
    base epoch, and every :meth:`encode_payload` call ships the diff since
    the previous epoch and advances the remembered state.  Trackers live
    *outside* the tracked object (worker-side for shard replicas,
    coordinator-side for the dedup filter), so full snapshots of the
    object never carry tracking state.
    """

    def __init__(self, target: object):
        delta_keyed_slots(target)  # validate the hook up front
        self._target = target
        self.epoch: Optional[int] = None
        self._prev: Optional[Dict[str, Any]] = None
        # Immutable roots captured at the base: strong references (so the
        # identity tokens stay valid) and their id → token map.
        self._cold_objects: List[object] = []
        self._cold_ids: Dict[int, Tuple[str, int]] = {}
        #: Degradation gauges for observability: how the last encode came
        #: out (``"delta"``/``"base"``) and how often a requested delta
        #: degraded to a self-contained base because continuity could not
        #: be proven — a climbing counter on a long-running service means
        #: the chain is silently paying full-snapshot costs.
        self.last_kind: Optional[str] = None
        self.degraded_encodes = 0

    def prime(self, epoch: int) -> None:
        """Remember the current collection contents as epoch ``epoch``."""
        self._prev = {
            name: _copy_collection(getattr(holder, attr))
            for name, holder, attr in delta_keyed_slots(self._target)
        }
        self._cold_objects = frozen_roots(self._target)
        self._cold_ids = {
            id(obj): ("cold", index)
            for index, obj in enumerate(self._cold_objects)
        }
        self.epoch = int(epoch)

    def encode_payload(self, since_epoch: Optional[int], epoch: int) -> Dict[str, Any]:
        """One stream's delta payload for ``since_epoch → epoch``.

        When the tracker cannot prove continuity (never primed, or
        ``since_epoch`` is not the epoch it last encoded) the payload is a
        self-contained ``base`` carrying the full collections — the chain
        stays correct, just bigger for that one frame.
        """
        continuous = (
            since_epoch is not None
            and self._prev is not None
            and self.epoch == since_epoch
        )
        self.last_kind = "delta" if continuous else "base"
        if since_epoch is not None and not continuous:
            self.degraded_encodes += 1
        skeleton, collections = extract_keyed_state(
            self._target, self._cold_ids if continuous else None
        )
        entries = {}
        for name, value in collections.items():
            prev = self._prev.get(name) if continuous else None
            if prev is not None and isinstance(prev, set) != isinstance(value, set):
                prev = None
            entries[name] = _diff_collection(prev, value)
        payload = {
            "kind": "delta" if continuous else "base",
            "since_epoch": since_epoch if continuous else None,
            "epoch": int(epoch),
            "skeleton": skeleton,
            "cold": bool(continuous and self._cold_ids),
            "collections": entries,
        }
        self._prev = {name: _copy_collection(value) for name, value in collections.items()}
        self.epoch = int(epoch)
        return payload

    def encode_frame(
        self, since_epoch: Optional[int], epoch: int, stream: str = "engine"
    ) -> bytes:
        """A framed single-stream delta (the engine-level public API)."""
        payload = self.encode_payload(since_epoch, epoch)
        return snapshot_delta_state(
            {
                "streams": {stream: payload},
                "meta": None,
                "epoch": int(epoch),
                "since_epoch": since_epoch,
            }
        )


# ----------------------------------------------------------------------
# Engine-level API (snapshot_delta on the engine facades)
# ----------------------------------------------------------------------
# Trackers are keyed by live object identity; a weak registry keeps the
# engine's own pickled state free of tracking baggage and lets trackers
# die with their engines.
_TRACKERS: "weakref.WeakKeyDictionary[object, DeltaTracker]" = (
    weakref.WeakKeyDictionary()
)


def shared_tracker(target: object) -> DeltaTracker:
    """The (created-on-first-use) tracker accompanying a live object."""
    tracker = _TRACKERS.get(target)
    if tracker is None:
        tracker = _TRACKERS[target] = DeltaTracker(target)
    return tracker


def tracker_degradation(target: object) -> Dict[str, Any]:
    """Degradation gauges of a live object's tracker (for decision records).

    Read-only: does **not** create a tracker — an object that was never
    delta-encoded reports ``{"last_kind": None, "degraded_encodes": 0}``.
    """
    try:
        tracker = _TRACKERS.get(target)
    except TypeError:  # unhashable / non-weakrefable target
        tracker = None
    if tracker is None:
        return {"last_kind": None, "degraded_encodes": 0}
    return {
        "last_kind": tracker.last_kind,
        "degraded_encodes": tracker.degraded_encodes,
    }


def engine_snapshot_delta(
    engine: object, since_epoch: Optional[int] = None, epoch: Optional[int] = None
) -> bytes:
    """Framed incremental snapshot of ``engine`` since ``since_epoch``.

    The implementation behind the engines' ``snapshot_delta()`` method.
    Without a prior base (``since_epoch=None`` or an epoch the tracker
    never saw) the frame is a self-contained base.
    """
    if epoch is None:
        epoch = 0 if since_epoch is None else int(since_epoch) + 1
    return shared_tracker(engine).encode_frame(since_epoch, epoch)


def prime_engine_tracker(engine: object, epoch: int) -> None:
    """Mark the engine's *current* full state as delta epoch ``epoch``.

    Called right after a full (base) snapshot so the next
    ``snapshot_delta(epoch)`` ships only what changed since that base.
    """
    shared_tracker(engine).prime(epoch)


# ----------------------------------------------------------------------
# Chain replay (the checkpoint store's restore path)
# ----------------------------------------------------------------------
class DeltaChainMaterializer:
    """Replays ``base + deltas`` back into a full engine-state blob."""

    def __init__(self) -> None:
        self._streams: Dict[str, Dict[str, Any]] = {}
        self._meta_blob: Optional[bytes] = None

    def seed(self, stream: str, target: object) -> None:
        """Adopt a restored base object's collections as the chain start.

        The restored base graph has exactly the aliasing of the live engine
        the tracker primed on (pickle preserves identity within one blob),
        so enumerating its frozen roots yields the same token numbering the
        deltas' skeletons were encoded with.
        """
        _skeleton, collections = extract_keyed_state(target)
        self._streams[stream] = {
            "collections": {
                name: _copy_collection(value) for name, value in collections.items()
            },
            "kinds": {
                name: _collection_kind(value) for name, value in collections.items()
            },
            "skeleton": None,
            "cold_objects": frozen_roots(target),
            "cold": False,
        }

    def apply_frame(self, frame: bytes) -> Dict[str, Any]:
        payload = restore_delta_state(frame)
        for stream, stream_payload in payload["streams"].items():
            self._apply_stream(stream, stream_payload)
        meta_blob = payload.get("meta")
        if meta_blob is not None:
            self._meta_blob = meta_blob
        return payload

    def _apply_stream(self, stream: str, payload: Dict[str, Any]) -> None:
        entry = self._streams.setdefault(
            stream,
            {
                "collections": {},
                "kinds": {},
                "skeleton": None,
                "cold_objects": [],
                "cold": False,
            },
        )
        if payload.get("kind") == "base":
            entry["collections"] = {}
        previous = entry["collections"]
        updated: Dict[str, Any] = {}
        kinds: Dict[str, str] = {}
        for name, collection_entry in payload["collections"].items():
            updated[name] = _apply_collection(collection_entry, previous.get(name))
            kinds[name] = collection_entry["kind"]
        # Names absent from this epoch (e.g. a drained migration engine)
        # are dropped — the skeleton no longer has a slot for them.
        entry["collections"] = updated
        entry["kinds"] = kinds
        entry["skeleton"] = payload["skeleton"]
        entry["cold"] = bool(payload.get("cold"))

    def materialize(self, stream: str) -> object:
        entry = self._streams.get(stream)
        if entry is None or entry["skeleton"] is None:
            raise CheckpointError(
                f"delta chain holds no skeleton for stream {stream!r}"
            )
        cold_objects = entry["cold_objects"] if entry["cold"] else None
        if entry["cold"] and not cold_objects:
            raise CheckpointError(
                f"delta chain for stream {stream!r} references cold objects "
                "but its base provided none"
            )
        return inject_keyed_state(
            entry["skeleton"], entry["collections"], cold_objects, entry["kinds"]
        )

    @property
    def streams(self) -> List[str]:
        return sorted(self._streams)

    @property
    def meta_blob(self) -> Optional[bytes]:
        return self._meta_blob


def materialize_engine_blob(base_engine_blob: bytes, frames: List[bytes]) -> bytes:
    """Fold a base engine blob plus chained delta frames into a full blob.

    The result is a plain :func:`~repro.engine.state.snapshot_engine` (or
    :func:`~repro.engine.state.snapshot_shard_states`) frame — exactly what
    an execution backend's ``restore()`` already understands, so resuming
    from a delta chain needs no new restore paths downstream.
    """
    if not frames:
        return base_engine_blob
    materializer = DeltaChainMaterializer()
    if is_shard_snapshot(base_engine_blob):
        shard_blobs, meta = restore_shard_states(base_engine_blob)
        for shard_id, shard_blob in enumerate(shard_blobs):
            materializer.seed(f"shard:{shard_id}", restore_engine(shard_blob))
        dedup = meta.get("dedup")
        if dedup is not None and supports_delta(dedup):
            materializer.seed("dedup", dedup)
        num_shards: Optional[int] = len(shard_blobs)
        base_meta: Optional[Dict[str, Any]] = meta
    else:
        materializer.seed("engine", restore_engine(base_engine_blob))
        num_shards = None
        base_meta = None
    for frame in frames:
        materializer.apply_frame(frame)
    shard_streams = [s for s in materializer.streams if s.startswith("shard:")]
    if not shard_streams:
        return snapshot_engine(materializer.materialize("engine"))
    if num_shards is None:
        num_shards = len(shard_streams)
    blobs = [
        snapshot_engine(materializer.materialize(f"shard:{shard_id}"))
        for shard_id in range(num_shards)
    ]
    if materializer.meta_blob is not None:
        try:
            meta = pickle.loads(materializer.meta_blob)
        except Exception as exc:
            raise CheckpointError(f"corrupt delta coordinator meta: {exc}") from exc
    else:
        meta = dict(base_meta or {})
    if "dedup" in materializer.streams:
        meta["dedup"] = materializer.materialize("dedup")
    return snapshot_shard_states(blobs, meta)

"""Event sources for the streaming runtime.

A source is a lazy, single-pass :class:`~repro.events.EventStream` that
yields events incrementally instead of materialising a list:

* :class:`IterableSource` — adapt any iterable/generator of events;
* :class:`CallbackSource` — pull events from a zero-argument callable
  (the adapter for push-style client libraries);
* :class:`ReplaySource` — rate-controlled replay of a recorded stream,
  the synthetic-load generator of the throughput experiments;
* :class:`JSONLFileSource` / :class:`CSVFileSource` — read (and optionally
  tail) event files, assigning *deterministic* sequence numbers from the
  record index so two reads of one file produce identical events — the
  property checkpoint/resume correctness rests on.

Every source supports :meth:`~EventSource.skip`, which fast-forwards past
the first ``n`` records without rate-limiting delays — how a resumed
pipeline seeks to its checkpoint offset.
"""

from __future__ import annotations

import csv
import json
import time
from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, Optional

from repro.errors import StreamingError
from repro.events import Event, EventStream, EventType
from repro.events.stream import GeneratorEventStream


class RateLimiter:
    """Paces an event flow to a target rate (events per second).

    The limiter schedules event ``i`` at ``start + i / rate`` and sleeps
    until that deadline, so short hiccups are amortised (the flow catches
    up) rather than compounding.  ``clock`` and ``sleep`` are injectable
    for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if rate <= 0:
            raise StreamingError(f"rate must be positive, got {rate!r}")
        self.rate = float(rate)
        self._clock = clock
        self._sleep = sleep
        self._started: Optional[float] = None
        self._emitted = 0

    def wait(self) -> None:
        """Block until the next event is due, then account for it."""
        now = self._clock()
        if self._started is None:
            self._started = now
        deadline = self._started + self._emitted / self.rate
        if deadline > now:
            self._sleep(deadline - now)
        self._emitted += 1

    def reset(self) -> None:
        self._started = None
        self._emitted = 0

    def __repr__(self) -> str:
        return f"<RateLimiter rate={self.rate:g}/s emitted={self._emitted}>"


class EventSource(GeneratorEventStream):
    """Base class for streaming sources.

    Subclasses implement :meth:`_records`, yielding events lazily.  The
    base class provides single-pass semantics (inherited from
    :class:`~repro.events.GeneratorEventStream` — re-iteration raises),
    skip-ahead for checkpoint resume, optional rate limiting, and an
    ``events_emitted`` counter.
    """

    name: str = "source"

    def __init__(self, rate: Optional[float] = None):
        # `rate is None` means unthrottled; anything else must be a valid
        # positive rate.  (A bare truthiness test would let rate=0 silently
        # disable pacing while RateLimiter itself rejects rate<=0.)
        self._limiter = RateLimiter(rate) if rate is not None else None
        self._skip = 0
        self.events_emitted = 0
        super().__init__(self._iterate(), name=type(self).__name__)

    def _records(self) -> Iterator[Event]:  # pragma: no cover - abstract
        raise NotImplementedError

    def skip(self, count: int) -> None:
        """Fast-forward past the first ``count`` records (no rate limiting).

        Must be called before iteration starts; used by a resuming pipeline
        to seek to its checkpoint offset.
        """
        if count < 0:
            raise StreamingError(f"skip count must be non-negative, got {count!r}")
        if self.consumed:
            raise StreamingError(
                f"{type(self).__name__} is already being consumed; skip() must "
                "be called before iteration starts"
            )
        self._skip = int(count)

    def _iterate(self) -> Iterator[Event]:
        remaining_skip = None
        for event in self._records():
            if remaining_skip is None:
                remaining_skip = self._skip
            if remaining_skip > 0:
                remaining_skip -= 1
                continue
            if self._limiter is not None:
                self._limiter.wait()
            self.events_emitted += 1
            yield event


class IterableSource(EventSource):
    """Adapt any iterable of events (a list, a generator, another stream)."""

    name = "iterable"

    def __init__(self, events: Iterable[Event], rate: Optional[float] = None):
        self._events = events
        super().__init__(rate=rate)

    def _records(self) -> Iterator[Event]:
        return iter(self._events)


class _NoEvent:
    """The type of the :data:`NO_EVENT` sentinel (repr-friendly singleton)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_EVENT"


#: Sentinel a :class:`CallbackSource` poll may return when it has *no event
#: available yet*.  Distinct from ``None``, which still means end-of-stream:
#: a network poll that comes up empty must be able to say "not yet" without
#: terminating the whole source.
NO_EVENT = _NoEvent()


class CallbackSource(EventSource):
    """Pull events from a zero-argument callable.

    The callable returns the next :class:`~repro.events.Event`, ``None`` to
    signal end-of-stream, or :data:`NO_EVENT` when nothing is available
    *yet* — the natural adapter for client libraries that expose a
    ``poll()``-style API, whether it blocks or not.

    After a :data:`NO_EVENT` the optional ``on_idle`` hook runs (block,
    sleep, or yield there); returning ``False`` from it ends the stream.
    Without ``on_idle`` the source polls again immediately, so a
    non-blocking poller should pass one to avoid a busy loop.
    """

    name = "callback"

    def __init__(
        self,
        poll: Callable[[], Optional[Event]],
        rate: Optional[float] = None,
        on_idle: Optional[Callable[[], Optional[bool]]] = None,
    ):
        if not callable(poll):
            raise StreamingError("CallbackSource requires a callable")
        if on_idle is not None and not callable(on_idle):
            raise StreamingError("CallbackSource on_idle must be callable")
        self._poll = poll
        self._on_idle = on_idle
        super().__init__(rate=rate)

    def _records(self) -> Iterator[Event]:
        while True:
            event = self._poll()
            if event is None:
                return
            if event is NO_EVENT:
                if self._on_idle is not None and self._on_idle() is False:
                    return
                continue
            yield event


class ReplaySource(EventSource):
    """Rate-controlled replay of a recorded stream.

    Replays a materialised stream (or any re-iterable collection of events)
    at ``rate`` events per second — the synthetic load generator used by
    the ``serve`` CLI and the throughput-under-rate experiment.  With
    ``rate=None`` the replay is unthrottled (as fast as the consumer pulls).
    """

    name = "replay"

    def __init__(self, stream: "EventStream | Iterable[Event]", rate: Optional[float] = None):
        self._stream = stream
        super().__init__(rate=rate)

    def _records(self) -> Iterator[Event]:
        return iter(self._stream)


class _FileSource(EventSource):
    """Shared machinery of the file-backed sources.

    Reads records from a text file, optionally *tailing* it: with
    ``follow=True`` the source polls for newly appended lines after
    reaching EOF (like ``tail -f``) until ``idle_timeout`` seconds pass
    with no new data, or :meth:`stop_following` is called.

    Events get ``sequence_number = record index``, so replaying a file
    yields byte-identical events on every read — checkpoint/resume and
    cross-run match comparison depend on this determinism.
    """

    def __init__(
        self,
        path: str,
        types: Mapping[str, EventType],
        timestamp_field: str = "timestamp",
        type_field: str = "type",
        follow: bool = False,
        poll_interval: float = 0.05,
        idle_timeout: Optional[float] = None,
        rate: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not types:
            raise StreamingError(f"{type(self).__name__} requires an event-type registry")
        self.path = path
        self._types = dict(types)
        self._timestamp_field = timestamp_field
        self._type_field = type_field
        self._follow = bool(follow)
        self._poll_interval = float(poll_interval)
        self._idle_timeout = idle_timeout
        self._clock = clock
        self._sleep = sleep
        self._following = True
        super().__init__(rate=rate)

    def stop_following(self) -> None:
        """End a ``follow=True`` tail at the next EOF poll."""
        self._following = False

    def _lines(self) -> Iterator[str]:
        with open(self.path, "r", encoding="utf-8") as handle:
            idle_since: Optional[float] = None
            while True:
                position = handle.tell() if self._follow else 0
                line = handle.readline()
                if line and (line.endswith("\n") or not self._follow):
                    # Complete line (or the unterminated final line of a
                    # closed file).
                    idle_since = None
                    yield line
                    continue
                if line:
                    # A partially written line while tailing: rewind to the
                    # line start and retry once the writer finishes it.
                    handle.seek(position)
                if not self._follow or not self._following:
                    return
                now = self._clock()
                if idle_since is None:
                    idle_since = now
                if (
                    self._idle_timeout is not None
                    and now - idle_since >= self._idle_timeout
                ):
                    return
                self._sleep(self._poll_interval)

    def _event_from(self, record: Dict[str, Any], index: int) -> Event:
        try:
            type_name = record.pop(self._type_field)
            timestamp = float(record.pop(self._timestamp_field))
        except KeyError as exc:
            raise StreamingError(
                f"{self.path}:{index + 1}: record is missing field {exc}"
            ) from None
        except (TypeError, ValueError) as exc:
            raise StreamingError(
                f"{self.path}:{index + 1}: bad timestamp: {exc}"
            ) from None
        event_type = self._types.get(type_name)
        if event_type is None:
            raise StreamingError(
                f"{self.path}:{index + 1}: unknown event type {type_name!r} "
                f"(registry has {sorted(self._types)})"
            )
        return Event(event_type, timestamp, record, sequence_number=index)

    def _parse(self, line: str, index: int) -> Dict[str, Any]:  # pragma: no cover
        raise NotImplementedError

    def _records(self) -> Iterator[Event]:
        for index, line in enumerate(self._lines()):
            stripped = line.strip()
            if not stripped:
                continue
            yield self._event_from(self._parse(stripped, index), index)


class JSONLFileSource(_FileSource):
    """Read events from a JSON-lines file (one JSON object per line).

    Each record carries the event-type name, the timestamp and the payload
    attributes, e.g. ``{"type": "MSFT", "timestamp": 12.5, "price": 101.3}``.
    """

    name = "jsonl"

    def _parse(self, line: str, index: int) -> Dict[str, Any]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StreamingError(f"{self.path}:{index + 1}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise StreamingError(
                f"{self.path}:{index + 1}: expected a JSON object, "
                f"got {type(record).__name__}"
            )
        return record


def _coerce(value: str) -> Any:
    """CSV cells are strings; recover ints and floats where unambiguous."""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


class CSVFileSource(_FileSource):
    """Read events from a CSV file with a header row.

    The header names the per-record fields; numeric-looking cells are
    coerced to ``int``/``float`` so equality joins behave as they would on
    the original payloads.
    """

    name = "csv"

    def _records(self) -> Iterator[Event]:
        # The reader consumes the raw line flow: filtering blank lines first
        # would corrupt quoted fields that span physical lines.  Blank lines
        # *between* records come back as empty rows and are skipped.
        reader = csv.reader(self._lines())
        header = None
        index = 0
        for row in reader:
            if not row:
                continue
            if header is None:
                header = row
                continue
            if len(row) != len(header):
                raise StreamingError(
                    f"{self.path}:{reader.line_num}: expected {len(header)} "
                    f"fields, got {len(row)}"
                )
            record = {name: _coerce(cell) for name, cell in zip(header, row)}
            yield self._event_from(record, index)
            index += 1


# ----------------------------------------------------------------------
# Event-file writers (the inverse of the file sources)
# ----------------------------------------------------------------------
def event_record(event: Event, timestamp_field: str = "timestamp", type_field: str = "type") -> Dict[str, Any]:
    """Flat dictionary representation of one event (file-source schema)."""
    record: Dict[str, Any] = {
        type_field: event.type_name,
        timestamp_field: event.timestamp,
    }
    record.update(event.payload)
    return record


def write_events_jsonl(
    events: Iterable[Event],
    path: str,
    timestamp_field: str = "timestamp",
    type_field: str = "type",
) -> int:
    """Dump events as JSON lines readable by :class:`JSONLFileSource`."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(
                json.dumps(event_record(event, timestamp_field, type_field)) + "\n"
            )
            count += 1
    return count


def write_events_csv(
    events: Iterable[Event],
    path: str,
    timestamp_field: str = "timestamp",
    type_field: str = "type",
) -> int:
    """Dump events as a CSV file readable by :class:`CSVFileSource`.

    The header is the union of all payload attribute names, so the events
    are buffered once; for unbounded streams use the JSONL writer.
    """
    buffered = list(events)
    field_names = [type_field, timestamp_field]
    for event in buffered:
        for key in event.payload:
            if key not in field_names:
                field_names.append(key)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=field_names, restval="")
        writer.writeheader()
        for event in buffered:
            writer.writerow(event_record(event, timestamp_field, type_field))
    return len(buffered)

"""The network data plane: socket/HTTP ingestion and acked match delivery.

Everything before this module moves events and matches through files.  This
module puts the pipeline on the wire — stdlib only, matching the control
plane's :mod:`http.server` idiom — with the same exactly-once discipline
the file seams already have:

* **Ingestion** — a :class:`NetworkEventSource` is a push-buffer behind the
  existing :class:`~repro.streaming.sources.CallbackSource` pull seam.  Two
  servers feed it: :class:`HTTPEventIngress` (``POST /events`` with JSON
  records, answering **429** when the push buffer is full — backpressure a
  load balancer understands) and :class:`TCPEventIngress` (one JSON record
  per line, ``ok``/``dup``/``err`` acks; a full buffer *blocks* the accept,
  so backpressure reaches the client as slow reads).  Records carry an
  explicit ``sequence`` field — the same deterministic record index the
  file sources assign — so a resumed pipeline deduplicates re-pushed
  events by sequence number exactly as ``source.skip()`` seeks a file.

* **Delivery** — :class:`WebhookMatchSink` (HTTP POST per match with an
  ``Idempotency-Key`` header) and :class:`SocketMatchSink` (length-framed
  lines with per-match acks) extend :class:`AckedDeliverySink`, which holds
  unacked matches in a bounded in-flight buffer, retries with capped
  exponential backoff, spills to a dead-letter file after the retry budget,
  and checkpoints the **durably acked** match sequence.  ``flush()`` drains
  the buffer, so by the time the pipeline's snapshot barrier collects
  ``state()`` every emitted match is acked — and a kill between a send and
  its checkpoint re-derives the match with the *same* idempotency key, so
  the receiver's dedup makes redelivery invisible.

* **Receivers** — :class:`WebhookReceiver` and :class:`SocketMatchReceiver`
  are the counterpart processes (tests, the CLI smoke, and a reference for
  real consumers): they write the raw match JSON line *before* acking and
  deduplicate by idempotency key, which is what makes the loopback
  differential byte-identical to a file-source run.

Run a receiver or push an event file from the command line::

    python -m repro.streaming.net receive --port 9100 --out matches.jsonl
    python -m repro.streaming.net push --url http://127.0.0.1:9000 \
        --file events.jsonl --end
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import socketserver
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Deque, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import CheckpointError, StreamingError
from repro.events import Event, EventType
from repro.metrics import NetworkMetrics
from repro.streaming.sinks import MatchSink, match_record
from repro.streaming.sources import NO_EVENT, CallbackSource

#: Push statuses a :class:`NetworkEventSource` answers (the TCP ack words).
PUSH_ACCEPTED = "accepted"
PUSH_DUPLICATE = "duplicate"
PUSH_REJECTED = "rejected"
PUSH_INVALID = "invalid"

#: Default capacity of the push buffer between the ingress servers and the
#: pipeline's pull loop.  Deliberately modest: the pipeline's own staging
#: buffer does the real smoothing; this one exists to surface backpressure
#: to the network quickly.
DEFAULT_PUSH_CAPACITY = 1024

#: Default in-flight bound of the acked delivery sinks.
DEFAULT_MAX_IN_FLIGHT = 128


# ----------------------------------------------------------------------
# Ingestion: the push-buffer source
# ----------------------------------------------------------------------
class NetworkEventSource(CallbackSource):
    """A push-buffer event source fed by the ingress servers.

    Producers call :meth:`push_record` from server threads; the pipeline
    pulls through the inherited :class:`CallbackSource` seam (the poll
    returns :data:`~repro.streaming.sources.NO_EVENT` while the buffer is
    empty and the ``on_idle`` hook blocks on a condition variable, so an
    idle pipeline sleeps instead of spinning).

    Exactly-once across resume rests on two cursors:

    * ``_next_sequence`` — push-time dedup: a record whose ``sequence`` is
      below the cursor was already ingested (this run or a previous one)
      and is dropped as a duplicate before it ever reaches the buffer;
    * ``_floor`` — pop-time dedup: :meth:`skip` (called by a resuming
      pipeline *after* the servers may have started accepting) raises the
      floor, and buffered events below it are discarded on the way out.

    Parameters
    ----------
    types:
        Event-type registry naming the admissible ``type`` values.
    timestamp_field / type_field:
        Record field names (file-source schema).
    capacity:
        Push-buffer bound; a full buffer rejects (HTTP) or blocks (TCP).
    poll_interval:
        How long one idle wait blocks before re-checking for shutdown.
    idle_timeout:
        End the stream after this many seconds with no arrivals (``None``
        = run until :meth:`end_of_stream` or :meth:`stop_following`).
    metrics:
        Shared :class:`~repro.metrics.NetworkMetrics` (optional).
    """

    name = "network"

    def __init__(
        self,
        types: Mapping[str, EventType],
        timestamp_field: str = "timestamp",
        type_field: str = "type",
        capacity: int = DEFAULT_PUSH_CAPACITY,
        poll_interval: float = 0.05,
        idle_timeout: Optional[float] = None,
        metrics: Optional[NetworkMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not types:
            raise StreamingError("NetworkEventSource requires an event-type registry")
        if capacity < 1:
            raise StreamingError(f"capacity must be positive, got {capacity!r}")
        self._types = dict(types)
        self._timestamp_field = timestamp_field
        self._type_field = type_field
        self.capacity = int(capacity)
        self._poll_interval = float(poll_interval)
        self._idle_timeout = idle_timeout
        self.metrics = metrics if metrics is not None else NetworkMetrics()
        self._clock = clock
        self._pending: Deque[Event] = deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._next_sequence = 0
        self._floor = 0
        self._ended = False
        self._following = True
        self._idle_since: Optional[float] = None
        super().__init__(self._poll_pending, on_idle=self._idle)

    # -- producer side (ingress server threads) ------------------------
    def _event_from(self, record: Mapping[str, Any]) -> Event:
        fields = dict(record)
        try:
            type_name = fields.pop(self._type_field)
            timestamp = float(fields.pop(self._timestamp_field))
        except KeyError as exc:
            raise StreamingError(f"record is missing field {exc}") from None
        except (TypeError, ValueError) as exc:
            raise StreamingError(f"bad timestamp: {exc}") from None
        event_type = self._types.get(type_name)
        if event_type is None:
            raise StreamingError(
                f"unknown event type {type_name!r} (registry has "
                f"{sorted(self._types)})"
            )
        sequence = fields.pop("sequence", None)
        if sequence is not None:
            try:
                sequence = int(sequence)
            except (TypeError, ValueError) as exc:
                raise StreamingError(f"bad sequence: {exc}") from None
            if sequence < 0:
                raise StreamingError(f"bad sequence: {sequence} is negative")
        return Event(event_type, timestamp, fields, sequence_number=sequence)

    def push_record(
        self, record: Mapping[str, Any], block: bool = True, timeout: Optional[float] = None
    ) -> str:
        """Offer one event record; returns a ``PUSH_*`` status string.

        ``block=True`` (the TCP path) waits for buffer space — backpressure
        as slow reads; ``block=False`` (the HTTP path) answers
        :data:`PUSH_REJECTED` immediately so the server can say 429.
        """
        if not isinstance(record, Mapping):
            self.metrics.events_invalid += 1
            return PUSH_INVALID
        try:
            event = self._event_from(record)
        except StreamingError:
            self.metrics.events_invalid += 1
            return PUSH_INVALID
        with self._lock:
            if event.sequence_number is None:
                # Auto-sequence convenience pushes at the cursor.
                event = Event(
                    event.event_type,
                    event.timestamp,
                    event.payload,
                    sequence_number=self._next_sequence,
                )
            if event.sequence_number < self._next_sequence:
                self.metrics.events_duplicate += 1
                return PUSH_DUPLICATE
            if self._ended:
                self.metrics.events_rejected += 1
                return PUSH_REJECTED
            deadline = None if timeout is None else self._clock() + timeout
            while len(self._pending) >= self.capacity:
                if not block:
                    self.metrics.events_rejected += 1
                    return PUSH_REJECTED
                remaining = self._poll_interval
                if deadline is not None:
                    remaining = min(remaining, deadline - self._clock())
                    if remaining <= 0:
                        self.metrics.events_rejected += 1
                        return PUSH_REJECTED
                self._space.wait(remaining)
                if self._ended or not self._following:
                    self.metrics.events_rejected += 1
                    return PUSH_REJECTED
            self._next_sequence = event.sequence_number + 1
            self._pending.append(event)
            self.metrics.events_accepted += 1
            self._available.notify()
            return PUSH_ACCEPTED

    def end_of_stream(self) -> None:
        """Declare the stream complete: drain the buffer, then stop."""
        with self._lock:
            self._ended = True
            self._available.notify_all()
            self._space.notify_all()

    def stop_following(self) -> None:
        """Graceful-stop hook (the pipeline calls this from ``stop()``)."""
        with self._lock:
            self._following = False
            self._available.notify_all()
            self._space.notify_all()

    # -- consumer side (the pipeline's pull loop) -----------------------
    def _poll_pending(self) -> Optional[Event]:
        with self._lock:
            while self._pending:
                event = self._pending.popleft()
                self._space.notify()
                if event.sequence_number < self._floor:
                    # Buffered before a resume raised the floor: the
                    # checkpoint already covers this event.
                    self.metrics.events_duplicate += 1
                    continue
                self._idle_since = None
                return event
            if self._ended or not self._following:
                return None
        return NO_EVENT

    def _idle(self) -> Optional[bool]:
        with self._lock:
            if self._pending or self._ended or not self._following:
                return True  # let the poll decide
            now = self._clock()
            if self._idle_since is None:
                self._idle_since = now
            if (
                self._idle_timeout is not None
                and now - self._idle_since >= self._idle_timeout
            ):
                return False
            self._available.wait(self._poll_interval)
        return True

    def skip(self, count: int) -> None:
        """Resume seek: discard (re-)pushed records below ``count``.

        Unlike the file sources there is nothing to fast-forward through —
        the floor makes the first ``count`` sequence numbers inadmissible,
        whether they are already buffered or arrive later.
        """
        if count < 0:
            raise StreamingError(f"skip count must be non-negative, got {count!r}")
        if self.consumed:
            raise StreamingError(
                "NetworkEventSource is already being consumed; skip() must "
                "be called before iteration starts"
            )
        with self._lock:
            self._floor = int(count)
            if self._next_sequence < self._floor:
                self._next_sequence = self._floor

    # -- introspection ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "pending": len(self._pending),
                "capacity": self.capacity,
                "next_sequence": self._next_sequence,
                "floor": self._floor,
                "ended": self._ended,
            }

    def __repr__(self) -> str:
        return (
            f"<NetworkEventSource pending={len(self._pending)}/{self.capacity} "
            f"next_seq={self._next_sequence}>"
        )


# ----------------------------------------------------------------------
# Ingestion: the wire servers
# ----------------------------------------------------------------------
class HTTPEventIngress:
    """HTTP ingestion endpoint feeding a :class:`NetworkEventSource`.

    ``POST /events``
        Body: one JSON object, a JSON array of objects, or JSON lines.
        Answers **202** with per-status counts when every record was
        admitted (duplicates and invalid records are counted, not errors),
        **429** when the push buffer filled mid-batch (the body reports how
        many records were accepted before the rejection — the client
        retries from there), **400** for an unparseable body.
    ``POST /end``
        Declares end-of-stream; the pipeline drains and finishes.
    ``GET /stats``
        The source's buffer/cursor counters.
    """

    def __init__(self, source: NetworkEventSource, host: str = "127.0.0.1", port: int = 0):
        self.source = source
        self.host = host
        self._requested_port = int(port)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HTTPEventIngress":
        if self._server is not None:
            raise StreamingError("HTTP ingress already started")
        ingress = self

        class Handler(_IngressHandler):
            owner = ingress

        self._server = ThreadingHTTPServer((self.host, self._requested_port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="http-ingress", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HTTPEventIngress":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # Transport-independent request logic (unit-testable).
    def handle_events(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            records = parse_event_payload(body)
        except StreamingError as exc:
            self.source.metrics.events_invalid += 1
            return 400, {"error": str(exc)}
        counts = {PUSH_ACCEPTED: 0, PUSH_DUPLICATE: 0, PUSH_INVALID: 0}
        for index, record in enumerate(records):
            status = self.source.push_record(record, block=False)
            if status == PUSH_REJECTED:
                return 429, {
                    "error": "push buffer full",
                    "retry_from": index,
                    **counts,
                }
            counts[status] += 1
        return 202, counts

    def handle_end(self) -> Tuple[int, Dict[str, Any]]:
        self.source.end_of_stream()
        return 200, {"status": "ended"}


class _IngressHandler(BaseHTTPRequestHandler):
    owner: HTTPEventIngress  # injected by HTTPEventIngress.start()
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        payload = (json.dumps(body) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        route = self.path.rstrip("/") or "/"
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        if route == "/events":
            self._send_json(*self.owner.handle_events(body))
        elif route == "/end":
            self._send_json(*self.owner.handle_end())
        else:
            self._send_json(404, {"error": f"unknown endpoint {route!r}"})

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        route = self.path.rstrip("/") or "/"
        if route == "/stats":
            self._send_json(200, self.owner.source.stats())
        else:
            self._send_json(404, {"error": f"unknown endpoint {route!r}"})


def parse_event_payload(body: bytes) -> List[Dict[str, Any]]:
    """Decode a ``POST /events`` body into a list of record dicts."""
    text = body.decode("utf-8", errors="replace").strip()
    if not text:
        raise StreamingError("empty request body")
    if text.startswith("["):
        try:
            parsed = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StreamingError(f"invalid JSON: {exc}") from None
        if not all(isinstance(item, dict) for item in parsed):
            raise StreamingError("JSON array must contain objects")
        return parsed
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StreamingError(f"line {number}: invalid JSON: {exc}") from None
        if not isinstance(record, dict):
            raise StreamingError(f"line {number}: expected a JSON object")
        records.append(record)
    return records


class TCPEventIngress:
    """Line-protocol TCP ingestion feeding a :class:`NetworkEventSource`.

    One JSON record per line; the server answers ``accepted``,
    ``duplicate`` or ``invalid`` per line and ``ended`` for the literal
    line ``END``.  A full push buffer **blocks** the handler before it
    acks — the client sees its writes stall (TCP flow control), which is
    the socket world's backpressure signal.
    """

    def __init__(self, source: NetworkEventSource, host: str = "127.0.0.1", port: int = 0):
        self.source = source
        self.host = host
        self._requested_port = int(port)
        self._server: Optional[socketserver.ThreadingTCPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    def start(self) -> "TCPEventIngress":
        if self._server is not None:
            raise StreamingError("TCP ingress already started")
        ingress = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                for raw in self.rfile:
                    line = raw.decode("utf-8", errors="replace").strip()
                    if not line:
                        continue
                    if line == "END":
                        ingress.source.end_of_stream()
                        self.wfile.write(b"ended\n")
                        return
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        record = None
                    if not isinstance(record, dict):
                        ingress.source.metrics.events_invalid += 1
                        self.wfile.write(b"invalid\n")
                        continue
                    status = ingress.source.push_record(record, block=True)
                    self.wfile.write(status.encode("ascii") + b"\n")

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((self.host, self._requested_port), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="tcp-ingress", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TCPEventIngress":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Delivery: acked match sinks
# ----------------------------------------------------------------------
class AckedDeliverySink(MatchSink):
    """Base class for sinks that deliver matches over a lossy hop.

    Emission appends the match to a bounded **in-flight buffer**; delivery
    sends each buffered match with its **idempotency key** — a
    deterministic function of the match's global index, so a resumed
    pipeline re-deriving the same match regenerates the same key — and
    retries failures with capped exponential backoff.  A match that
    exhausts its retry budget is spilled to the **dead-letter file**
    (without one the sink raises, stopping the pipeline rather than
    silently dropping output).

    The checkpoint contract: :meth:`flush` drains the buffer, and the
    pipeline flushes every sink *before* collecting :meth:`state` — so the
    recorded ``acked`` count is the durably delivered prefix.  On
    :meth:`restore` the emit counter rewinds to it, and the matches the
    resumed run re-derives are re-sent under their original keys for the
    receiver to deduplicate.

    Subclasses implement :meth:`_send` (raise on failure).
    """

    name = "acked-delivery"

    def __init__(
        self,
        key_prefix: str = "match",
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_attempts: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        dead_letter_path: Optional[str] = None,
        metrics: Optional[NetworkMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_in_flight < 1:
            raise StreamingError(f"max_in_flight must be positive, got {max_in_flight!r}")
        if max_attempts < 1:
            raise StreamingError(f"max_attempts must be positive, got {max_attempts!r}")
        self.key_prefix = key_prefix
        self.max_in_flight = int(max_in_flight)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.dead_letter_path = dead_letter_path
        self.metrics = metrics if metrics is not None else NetworkMetrics()
        self._clock = clock
        self._sleep = sleep
        self.emitted = 0  # global match index, continuous across restarts
        self.acked = 0  # durably delivered (or dead-lettered) prefix
        self._pending: Deque[Tuple[str, Dict[str, Any]]] = deque()
        #: Decision-record hook; the pipeline wires this to its decision log.
        self.on_decision: Optional[Callable[..., Any]] = None

    # -- the wire (subclass responsibility) -----------------------------
    def _send(self, key: str, record: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def idempotency_key(self, index: int) -> str:
        return f"{self.key_prefix}-{index:012d}"

    # -- MatchSink ------------------------------------------------------
    def emit(self, match) -> None:
        key = self.idempotency_key(self.emitted)
        self._pending.append((key, match_record(match)))
        self.emitted += 1
        while len(self._pending) > self.max_in_flight:
            self._deliver_next()

    def flush(self) -> None:
        """Drain the in-flight buffer (the pre-checkpoint barrier)."""
        while self._pending:
            self._deliver_next()

    def close(self) -> None:
        self.flush()

    def _record_decision(self, type: str, **detail: Any) -> None:
        if self.on_decision is not None:
            self.on_decision(type, **detail)

    def _deliver_next(self) -> None:
        key, record = self._pending[0]
        error: Optional[str] = None
        for attempt in range(1, self.max_attempts + 1):
            started = self._clock()
            try:
                self._send(key, record)
            except Exception as exc:
                error = str(exc)
                if attempt == self.max_attempts:
                    break
                self.metrics.delivery_retries += 1
                self._record_decision(
                    "delivery_retry",
                    sink=self.name,
                    key=key,
                    attempt=attempt,
                    error=error,
                )
                self._sleep(
                    min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
                )
            else:
                self.metrics.matches_delivered += 1
                self.metrics.delivery.observe(self._clock() - started)
                self._pending.popleft()
                self.acked += 1
                return
        # Retry budget exhausted: spill or stop.
        if self.dead_letter_path is None:
            raise StreamingError(
                f"{self.name} sink: delivery of {key} failed after "
                f"{self.max_attempts} attempts: {error}"
            )
        with open(self.dead_letter_path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"key": key, "error": error, "match": record}) + "\n"
            )
            handle.flush()
            os.fsync(handle.fileno())
        self.metrics.dead_letters += 1
        self._record_decision(
            "dead_letter", sink=self.name, key=key, error=error,
            path=self.dead_letter_path,
        )
        self._pending.popleft()
        self.acked += 1  # resolved: the spill file is the durable record

    # -- checkpointing --------------------------------------------------
    def state(self) -> Dict[str, int]:
        return {"acked": self.acked}

    def restore(self, state: Any) -> None:
        if not state:
            return
        try:
            acked = int(state["acked"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"{self.name} sink: malformed checkpoint state {state!r}: {exc}"
            ) from None
        if acked < 0:
            raise CheckpointError(
                f"{self.name} sink: malformed checkpoint state {state!r}: "
                "acked count is negative"
            )
        # Unacked in-flight matches are dropped — the resumed run re-derives
        # them and re-sends under the same idempotency keys.
        self._pending.clear()
        self.acked = acked
        self.emitted = acked

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} emitted={self.emitted} acked={self.acked} "
            f"in_flight={len(self._pending)}>"
        )


class WebhookMatchSink(AckedDeliverySink):
    """POST each match to a webhook URL, acked by the HTTP response.

    One request per match: the body is the match record JSON, the
    ``Idempotency-Key`` header carries the delivery key.  Any non-2xx
    response (or transport error) counts as a failed attempt.
    """

    name = "webhook"

    def __init__(self, url: str, timeout: float = 5.0, **kwargs: Any):
        super().__init__(**kwargs)
        self.url = url
        self.timeout = float(timeout)

    def _send(self, key: str, record: Dict[str, Any]) -> None:
        request = urllib.request.Request(
            self.url,
            data=json.dumps(record).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "Idempotency-Key": key,
            },
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            status = response.status
        if not 200 <= status < 300:  # pragma: no cover - urlopen raises first
            raise StreamingError(f"webhook answered {status}")


class SocketMatchSink(AckedDeliverySink):
    """Deliver matches over a TCP connection with per-match acks.

    Frame: ``<key>\\t<match JSON>\\n``; the receiver answers
    ``ack <key>\\n`` after durably writing the match.  The key precedes the
    JSON so the receiver can deduplicate (and the differential test can
    compare) without re-serialising the record.  Any socket error tears the
    connection down; the next attempt reconnects.
    """

    name = "socket"

    def __init__(self, host: str, port: int, timeout: float = 5.0, **kwargs: Any):
        super().__init__(**kwargs)
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._sock: Optional[socket.socket] = None
        self._reader = None

    def _connect(self) -> None:
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            self._sock = sock
            self._reader = sock.makefile("rb")

    def _disconnect(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _send(self, key: str, record: Dict[str, Any]) -> None:
        try:
            self._connect()
            frame = f"{key}\t{json.dumps(record)}\n".encode("utf-8")
            self._sock.sendall(frame)
            ack = self._reader.readline().decode("utf-8", errors="replace").strip()
        except OSError as exc:
            self._disconnect()
            raise StreamingError(f"socket delivery failed: {exc}") from exc
        if ack != f"ack {key}":
            self._disconnect()
            raise StreamingError(f"bad ack {ack!r} for {key}")

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._disconnect()


# ----------------------------------------------------------------------
# Receivers (the consumer side: tests, CLI smoke, reference consumers)
# ----------------------------------------------------------------------
class _ReceiverCore:
    """Shared dedup-and-write logic of both receivers.

    The ordering discipline that makes the hop exactly-once: the match line
    is written and fsynced **before** the ack goes back, and a key seen
    before is acked **without** a second write.  A producer killed between
    a send and its checkpoint re-sends under the same key; the dedup makes
    the redelivery invisible in the output file.
    """

    def __init__(self, path: str, fail_first: int = 0):
        self.path = path
        self._lock = threading.Lock()
        self._seen: set = set()
        self.received = 0
        self.duplicates = 0
        self.failures_to_inject = int(fail_first)
        self._handle = open(path, "a", encoding="utf-8")

    def accept(self, key: str, line: str) -> str:
        """Record one delivery; returns ``stored``/``duplicate``/``injected``."""
        with self._lock:
            if self.failures_to_inject > 0:
                self.failures_to_inject -= 1
                return "injected"
            if key in self._seen:
                self.duplicates += 1
                return "duplicate"
            self._handle.write(line.rstrip("\n") + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._seen.add(key)
            self.received += 1
            return "stored"

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "received": self.received,
                "duplicates": self.duplicates,
                "failures_to_inject": self.failures_to_inject,
            }

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class WebhookReceiver:
    """A webhook endpoint that stores match deliveries exactly once.

    ``POST`` (any path) with an ``Idempotency-Key`` header appends the raw
    request body as one line of the output file — first delivery only; a
    repeated key is acknowledged without a second write.  ``--fail-first``
    injects 500s before the first success (retry/backoff tests).
    ``GET /stats`` reports received/duplicate counts.
    """

    def __init__(
        self,
        path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        fail_first: int = 0,
    ):
        self.core = _ReceiverCore(path, fail_first=fail_first)
        self.host = host
        self._requested_port = int(port)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "WebhookReceiver":
        if self._server is not None:
            raise StreamingError("webhook receiver already started")
        core = self.core

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
                pass

            def _answer(self, status: int, body: Dict[str, Any]) -> None:
                payload = (json.dumps(body) + "\n").encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:  # noqa: N802
                self._answer(200, core.stats())

            def do_POST(self) -> None:  # noqa: N802
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b""
                key = self.headers.get("Idempotency-Key")
                if not key:
                    self._answer(400, {"error": "missing Idempotency-Key header"})
                    return
                outcome = core.accept(key, body.decode("utf-8", errors="replace"))
                if outcome == "injected":
                    self._answer(500, {"error": "injected failure"})
                else:
                    self._answer(200, {"status": outcome, "key": key})

        self._server = ThreadingHTTPServer((self.host, self._requested_port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="webhook-receiver", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.core.close()

    def __enter__(self) -> "WebhookReceiver":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class SocketMatchReceiver:
    """TCP counterpart of :class:`WebhookReceiver` (line frames + acks).

    Accepts ``<key>\\t<json>\\n`` frames, writes the JSON part verbatim on
    first delivery, answers ``ack <key>\\n`` either way.  ``--fail-first``
    injects dropped connections before the first success.
    """

    def __init__(
        self,
        path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        fail_first: int = 0,
    ):
        self.core = _ReceiverCore(path, fail_first=fail_first)
        self.host = host
        self._requested_port = int(port)
        self._server: Optional[socketserver.ThreadingTCPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    def start(self) -> "SocketMatchReceiver":
        if self._server is not None:
            raise StreamingError("socket receiver already started")
        core = self.core

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                for raw in self.rfile:
                    line = raw.decode("utf-8", errors="replace").rstrip("\n")
                    if not line:
                        continue
                    key, sep, payload = line.partition("\t")
                    if not sep:
                        self.wfile.write(b"err missing frame separator\n")
                        continue
                    outcome = core.accept(key, payload)
                    if outcome == "injected":
                        return  # drop the connection: the sink reconnects
                    self.wfile.write(f"ack {key}\n".encode("utf-8"))

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((self.host, self._requested_port), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="socket-receiver", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.core.close()

    def __enter__(self) -> "SocketMatchReceiver":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Client helpers (the producer side: tests, CLI, examples)
# ----------------------------------------------------------------------
def read_event_records(
    path: str, start: int = 0, count: Optional[int] = None
) -> Iterator[Dict[str, Any]]:
    """Read a JSONL event file as push records with explicit sequences.

    The ``sequence`` field is the record's line index — the same number a
    :class:`~repro.streaming.sources.JSONLFileSource` would assign — which
    is what makes a wire-pushed run byte-comparable to a file-source run.
    ``start`` skips the first records (a client resuming a push);
    ``count`` bounds how many are yielded.
    """
    yielded = 0
    with open(path, "r", encoding="utf-8") as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            if index < start:
                continue
            if count is not None and yielded >= count:
                return
            record = json.loads(line)
            record["sequence"] = index
            yield record
            yielded += 1


def push_events_http(
    url: str,
    records: Iterable[Dict[str, Any]],
    batch: int = 100,
    end: bool = False,
    timeout: float = 10.0,
    retry_wait: float = 0.05,
    max_retries: int = 200,
) -> Dict[str, int]:
    """POST event records to an :class:`HTTPEventIngress`, honouring 429s.

    Records are sent in JSONL batches; a 429 re-sends the unaccepted tail
    after ``retry_wait`` (doubling up to 1s), which is how a client is
    expected to behave under backpressure.  Returns aggregate counts.
    """
    base = url.rstrip("/")
    totals = {PUSH_ACCEPTED: 0, PUSH_DUPLICATE: 0, PUSH_INVALID: 0, "retries": 0}

    def post(path: str, body: bytes) -> Tuple[int, Dict[str, Any]]:
        request = urllib.request.Request(
            base + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode("utf-8"))

    pending: List[Dict[str, Any]] = []
    iterator = iter(records)
    exhausted = False
    while not exhausted or pending:
        while not exhausted and len(pending) < batch:
            try:
                pending.append(next(iterator))
            except StopIteration:
                exhausted = True
        if not pending:
            break
        body = "\n".join(json.dumps(record) for record in pending).encode("utf-8")
        status, reply = post("/events", body)
        if status == 429:
            accepted = int(reply.get("retry_from", 0))
            for key in (PUSH_ACCEPTED, PUSH_DUPLICATE, PUSH_INVALID):
                totals[key] += int(reply.get(key, 0))
            pending = pending[accepted:]
            totals["retries"] += 1
            if totals["retries"] > max_retries:
                raise StreamingError(
                    f"push to {base} still backpressured after "
                    f"{max_retries} retries"
                )
            time.sleep(min(1.0, retry_wait * (2 ** min(10, totals["retries"]))))
            continue
        if status != 202:
            raise StreamingError(f"push to {base} failed: {status} {reply}")
        for key in (PUSH_ACCEPTED, PUSH_DUPLICATE, PUSH_INVALID):
            totals[key] += int(reply.get(key, 0))
        pending = []
    if end:
        status, reply = post("/end", b"")
        if status != 200:
            raise StreamingError(f"end-of-stream to {base} failed: {status} {reply}")
    return totals


def push_events_tcp(
    host: str,
    port: int,
    records: Iterable[Dict[str, Any]],
    end: bool = False,
    timeout: float = 30.0,
) -> Dict[str, int]:
    """Stream event records to a :class:`TCPEventIngress`, one per line.

    Blocks naturally when the server blocks (backpressure as slow acks).
    Returns per-status counts.
    """
    totals = {PUSH_ACCEPTED: 0, PUSH_DUPLICATE: 0, PUSH_INVALID: 0, PUSH_REJECTED: 0}
    with socket.create_connection((host, int(port)), timeout=timeout) as sock:
        reader = sock.makefile("rb")
        for record in records:
            sock.sendall(json.dumps(record).encode("utf-8") + b"\n")
            ack = reader.readline().decode("utf-8", errors="replace").strip()
            if ack in totals:
                totals[ack] += 1
            else:
                raise StreamingError(f"unexpected ack {ack!r}")
        if end:
            sock.sendall(b"END\n")
            ack = reader.readline().decode("utf-8", errors="replace").strip()
            if ack != "ended":
                raise StreamingError(f"unexpected end-of-stream ack {ack!r}")
        reader.close()
    return totals


# ----------------------------------------------------------------------
# Module CLI: `python -m repro.streaming.net receive|push`
# ----------------------------------------------------------------------
def _cmd_receive(options: argparse.Namespace) -> int:
    if options.mode == "webhook":
        receiver: Any = WebhookReceiver(
            options.out,
            host=options.host,
            port=options.port,
            fail_first=options.fail_first,
        )
    else:
        receiver = SocketMatchReceiver(
            options.out,
            host=options.host,
            port=options.port,
            fail_first=options.fail_first,
        )
    receiver.start()
    print(
        json.dumps(
            {"mode": options.mode, "host": options.host, "port": receiver.port,
             "out": options.out}
        ),
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        receiver.stop()
    return 0


def _cmd_push(options: argparse.Namespace) -> int:
    records = read_event_records(options.file, start=options.start, count=options.count)
    if options.url:
        totals = push_events_http(
            options.url, records, batch=options.batch, end=options.end
        )
    else:
        host, _, port = options.tcp.rpartition(":")
        if not host or not port.isdigit():
            raise StreamingError(f"--tcp expects HOST:PORT, got {options.tcp!r}")
        totals = push_events_tcp(host, int(port), records, end=options.end)
    print(json.dumps(totals), flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.streaming.net",
        description="Network data-plane utilities: match receivers and event pushers.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    receive = commands.add_parser("receive", help="run a match receiver")
    receive.add_argument("--mode", choices=("webhook", "socket"), default="webhook")
    receive.add_argument("--host", default="127.0.0.1")
    receive.add_argument("--port", type=int, default=0)
    receive.add_argument("--out", required=True, help="output JSONL file")
    receive.add_argument(
        "--fail-first", type=int, default=0,
        help="inject N failures before the first successful delivery",
    )
    receive.set_defaults(run=_cmd_receive)

    push = commands.add_parser("push", help="push a JSONL event file")
    target = push.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="HTTP ingress base URL")
    target.add_argument("--tcp", help="TCP ingress HOST:PORT")
    push.add_argument("--file", required=True, help="JSONL event file")
    push.add_argument("--start", type=int, default=0, help="skip the first N records")
    push.add_argument("--count", type=int, default=None, help="push at most N records")
    push.add_argument("--batch", type=int, default=100, help="HTTP batch size")
    push.add_argument("--end", action="store_true", help="declare end-of-stream after")
    push.set_defaults(run=_cmd_push)

    options = parser.parse_args(argv)
    return options.run(options)


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke
    raise SystemExit(main())

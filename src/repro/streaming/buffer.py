"""Bounded staging buffer and overflow policies.

The pipeline stages events between the source and the engine in a bounded
buffer.  What happens when the buffer is full is the pipeline's overload
policy:

* :class:`Backpressure` — refuse the event; the *caller* must slow down.
  In the pull-driven :meth:`~repro.streaming.StreamingPipeline.run` loop
  this can't trigger (the pipeline simply stops pulling), but push-style
  ingestion via :meth:`~repro.streaming.StreamingPipeline.submit` surfaces
  it as a ``False`` return the producer must honour.
* :class:`DropNewest` — shed the incoming event (keep the oldest backlog;
  matches already half-built stay completable).
* :class:`DropOldest` — evict the oldest buffered event to admit the new
  one (keep the freshest data; the policy of latency-sensitive services).

Shedding trades recall for bounded memory and latency: drop policies keep
the service alive under sustained overload at the cost of possibly missing
matches involving dropped events.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Optional

from repro.errors import StreamingError
from repro.events import Event


class OverflowPolicy:
    """Decides the fate of an event offered to a full buffer."""

    name: str = "overflow-policy"

    def on_full(self, buffer: "BoundedBuffer", event: Event) -> bool:
        """Handle an event that does not fit; return ``True`` iff admitted."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class Backpressure(OverflowPolicy):
    """Refuse the event and make the producer wait (no loss)."""

    name = "backpressure"

    def on_full(self, buffer: "BoundedBuffer", event: Event) -> bool:
        return False


class DropNewest(OverflowPolicy):
    """Shed the incoming event (the oldest backlog is preserved)."""

    name = "drop-newest"

    def on_full(self, buffer: "BoundedBuffer", event: Event) -> bool:
        buffer.events_shed += 1
        if buffer.on_shed is not None:
            buffer.on_shed(event, self.name)
        return True  # "handled": the event is consumed, just not buffered


class DropOldest(OverflowPolicy):
    """Evict the oldest buffered event to make room (freshest data wins)."""

    name = "drop-oldest"

    def on_full(self, buffer: "BoundedBuffer", event: Event) -> bool:
        buffer.evict_oldest()
        buffer.force_append(event)
        return True


def overflow_policy_by_name(name: str) -> OverflowPolicy:
    """Factory used by the CLI (``backpressure``/``drop-newest``/``drop-oldest``)."""
    policies = {
        Backpressure.name: Backpressure,
        DropNewest.name: DropNewest,
        DropOldest.name: DropOldest,
    }
    try:
        return policies[name]()
    except KeyError:
        raise StreamingError(
            f"unknown overflow policy {name!r}; expected one of {sorted(policies)}"
        ) from None


class BoundedBuffer:
    """A FIFO of events with a hard capacity and an overflow policy."""

    def __init__(self, capacity: int, policy: Optional[OverflowPolicy] = None):
        if capacity < 1:
            raise StreamingError(f"buffer capacity must be positive, got {capacity!r}")
        self.capacity = int(capacity)
        self.policy = policy or Backpressure()
        self._events: Deque[Event] = deque()
        self.events_shed = 0
        self.high_water = 0
        #: Optional shed observer ``(event, policy_name) -> None``, called
        #: for every event a drop policy discards — the decision-log hook.
        #: Must be cheap: it runs on the overload path.
        self.on_shed: Optional[Callable[[Event, str], None]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def depth(self) -> int:
        return len(self._events)

    @property
    def free(self) -> int:
        return self.capacity - len(self._events)

    @property
    def full(self) -> bool:
        return len(self._events) >= self.capacity

    # ------------------------------------------------------------------
    # Admission and draining
    # ------------------------------------------------------------------
    def offer(self, event: Event) -> bool:
        """Try to admit one event.

        Returns ``True`` when the event was *consumed* (buffered, or shed by
        a drop policy) and ``False`` when the producer must back off and
        retry (the :class:`Backpressure` policy).
        """
        if len(self._events) < self.capacity:
            self._events.append(event)
            if len(self._events) > self.high_water:
                self.high_water = len(self._events)
            return True
        return self.policy.on_full(self, event)

    def force_append(self, event: Event) -> None:
        """Append unconditionally (used by eviction policies after making room)."""
        self._events.append(event)

    def evict_oldest(self) -> Event:
        if not self._events:
            raise StreamingError("cannot evict from an empty buffer")
        self.events_shed += 1
        event = self._events.popleft()
        if self.on_shed is not None:
            self.on_shed(event, self.policy.name)
        return event

    def pop(self) -> Event:
        """Remove and return the oldest buffered event."""
        if not self._events:
            raise StreamingError("cannot pop from an empty buffer")
        return self._events.popleft()

    def drain(self) -> Iterator[Event]:
        """Yield buffered events oldest-first until the buffer is empty."""
        while self._events:
            yield self._events.popleft()

    def snapshot_events(self) -> List[Event]:
        """The buffered events, oldest first (without consuming them)."""
        return list(self._events)

    def __repr__(self) -> str:
        return (
            f"<BoundedBuffer {len(self._events)}/{self.capacity} "
            f"policy={self.policy.name} shed={self.events_shed}>"
        )

"""Multi-core execution backends for the streaming pipeline.

The :class:`~repro.streaming.StreamingPipeline` run loop is a single
writer: it pulls events from the source and hands them to an *execution
backend*.  The backend decides where the detection work actually happens:

* :class:`InlineBackend` — evaluate in the pipeline thread (the original
  behaviour; fully deterministic, zero hand-off cost).
* :class:`ThreadWorkerBackend` — one worker **thread** per shard, fed by
  bounded queues.  Threads share the GIL, so this backend does not speed
  up pure-Python detection; it exists as the fallback for engines whose
  user-supplied conditions are not picklable (closures/lambdas), and to
  overlap engine work with blocking sources.
* :class:`ProcessWorkerBackend` — one worker **process** per shard for
  real CPU parallelism.  Engine replicas are shipped to the workers as
  :func:`~repro.engine.state.snapshot_engine` blobs; events flow in
  partitioned batches over bounded ``multiprocessing`` queues.

All three expose the same contract, so every mode produces the *same
match set* for the same input (the property ``tests/test_equivalence.py``
enforces):

* ``submit(event)`` routes one event through the partitioner into the
  shard queues (blocking when a queue is full — natural backpressure);
* ``collect()`` returns the matches that are ready *now* (non-blocking);
* ``flush()`` is the barrier: it waits until every submitted event has
  been fully processed and returns the remaining matches;
* ``snapshot()`` / ``restore(blob)`` capture/restore a consistent cut —
  the barrier runs first, so the per-shard engine states, the routing
  state (partitioner) and the deduplication filter all agree on exactly
  which events have been processed.  That is what preserves the
  pipeline's kill/resume zero-loss guarantee across worker processes.

Shard outputs travel back on one unbounded output queue consumed by a
**merger thread**, which applies the window-bounded
:class:`~repro.parallel.StreamingMatchDeduplicator` (duplicates arise when
a replicating partitioner makes every shard find the same match) and
maintains the per-worker lane metrics.  Because the merger always drains
the output queue, a worker can never be blocked on a full output queue
while the pipeline blocks on a full input queue — the classic two-queue
deadlock is impossible by construction.

Duplicate eviction uses a *low watermark*: the slowest shard's stream
clock.  A shard that has drained everything fed to it advances to the
global feed clock, so an idle or starved shard never pins the watermark
and the deduplicator's memory stays window-bounded.  When the pipeline
runs an event-time ordering stage it additionally propagates the true
event-time low watermark via :meth:`ExecutionBackend.advance_watermark`;
the eviction clock is then clamped to it, so under out-of-order ingestion
duplicate signatures are evicted on *event time* rather than on the
arrival-order feed clock (which disorder would otherwise let run ahead).
"""

from __future__ import annotations

import pickle
import threading
import time
import traceback
from queue import Empty, Full
from typing import Dict, List, Optional

from repro.engine import Match
from repro.engine.state import (
    is_shard_snapshot,
    restore_delta_state,
    restore_engine,
    restore_shard_states,
    snapshot_delta_state,
    snapshot_engine,
    snapshot_shard_states,
)
from repro.errors import CheckpointError, StreamingError
from repro.streaming.delta import DeltaTracker
from repro.events import Event
from repro.metrics import PipelineMetrics
from repro.parallel import (
    UNBOUNDED_DEDUP_WINDOW,
    ParallelCEPEngine,
    Shard,
    StreamingMatchDeduplicator,
)

#: Events per hand-off batch (amortises queue/pickle overhead per event).
DEFAULT_FEED_BATCH = 32

#: Batches each shard input queue may hold before ``submit`` blocks.
DEFAULT_QUEUE_CAPACITY = 8


class ExecutionBackend:
    """Where (and with how much parallelism) the pipeline evaluates events."""

    name: str = "backend"

    @property
    def engine(self):
        """The engine this backend evaluates with (may lag for workers)."""
        raise NotImplementedError

    @property
    def pattern(self):
        """The detected pattern (used for checkpoint compatibility checks)."""
        return getattr(self.engine, "pattern", None)

    def bind_metrics(self, metrics: PipelineMetrics) -> None:
        """Adopt the pipeline's metrics object for lane gauges."""

    def start(self) -> None:
        """Bring up workers (idempotent; called lazily on first submit)."""

    def submit(self, event: Event) -> None:
        """Route one event towards its shard(s); may block (backpressure)."""
        raise NotImplementedError

    def advance_watermark(self, watermark: float) -> None:
        """Adopt the pipeline's event-time low watermark (monotone).

        Called by a pipeline with an ordering stage whenever its watermark
        advances.  Backends that keep cross-shard state keyed by stream
        time (the match deduplicator) clamp their eviction clocks to it;
        the default is a no-op (an inline engine sees events in order and
        needs no separate clock).
        """

    def collect(self) -> List[Match]:
        """Matches that are ready now, without waiting (non-blocking)."""
        raise NotImplementedError

    def flush(self) -> List[Match]:
        """Barrier: process everything submitted, return remaining matches."""
        raise NotImplementedError

    def snapshot(self) -> bytes:
        """A consistent state blob (implies a barrier for worker backends)."""
        raise NotImplementedError

    def snapshot_base(self, epoch: int) -> bytes:
        """A full snapshot that also anchors delta epoch ``epoch``.

        Like :meth:`snapshot`, but every delta tracker (worker-side for
        shard replicas, coordinator-side for the dedup filter) remembers
        this state as the base the next :meth:`snapshot_delta` diffs
        against.
        """
        raise StreamingError(
            f"{type(self).__name__} does not support incremental checkpoints"
        )

    def snapshot_delta(self, since_epoch: int, epoch: int) -> bytes:
        """A framed delta of only the state changed since ``since_epoch``.

        Implies the same barrier as :meth:`snapshot`; the result is a
        :func:`~repro.engine.state.snapshot_delta_state` frame replayable
        by :func:`repro.streaming.delta.materialize_engine_blob`.
        """
        raise StreamingError(
            f"{type(self).__name__} does not support incremental checkpoints"
        )

    def restore(self, blob: bytes) -> None:
        """Apply a :meth:`snapshot` blob (before the backend is started)."""
        raise NotImplementedError

    def close(self) -> None:
        """Stop workers and reclaim their state (idempotent)."""

    def plan_history(self) -> List[str]:
        """Plan descriptions accumulated by the engine(s), best effort."""
        return []

    def engine_introspection(self) -> dict:
        """One frame of engine internals (see :mod:`repro.obs.introspect`)."""
        from repro.obs.introspect import engine_introspection_frame

        return engine_introspection_frame(self.engine)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class InlineBackend(ExecutionBackend):
    """Evaluate events in the calling thread (the classic pipeline loop)."""

    name = "inline"

    def __init__(self, engine):
        if not callable(getattr(engine, "process", None)):
            raise StreamingError(
                f"engine {type(engine).__name__} has no process() method"
            )
        self._engine = engine
        self._ready: List[Match] = []

    @property
    def engine(self):
        return self._engine

    def submit(self, event: Event) -> None:
        self._ready.extend(self._engine.process(event))

    def collect(self) -> List[Match]:
        ready, self._ready = self._ready, []
        return ready

    def flush(self) -> List[Match]:
        return self.collect()

    def snapshot(self) -> bytes:
        return snapshot_engine(self._engine)

    def snapshot_base(self, epoch: int) -> bytes:
        from repro.streaming.delta import prime_engine_tracker

        blob = snapshot_engine(self._engine)
        prime_engine_tracker(self._engine, epoch)
        return blob

    def snapshot_delta(self, since_epoch: int, epoch: int) -> bytes:
        from repro.streaming.delta import engine_snapshot_delta

        return engine_snapshot_delta(self._engine, since_epoch, epoch)

    def restore(self, blob: bytes) -> None:
        if is_shard_snapshot(blob):
            raise CheckpointError(
                "this checkpoint was written by a multi-worker backend; "
                "resume it with a thread/process worker backend (e.g. "
                "--backend process) or clear the checkpoint store"
            )
        self._engine = restore_engine(blob)

    def plan_history(self) -> List[str]:
        return list(getattr(self._engine, "plan_history", []))


# ----------------------------------------------------------------------
# The shared worker protocol
# ----------------------------------------------------------------------
# Input-queue messages  (pipeline → worker):
#   ("events", (event, ...))      process a partitioned batch
#   ("mark", token)               barrier: echo the token back when reached
#   ("snapshot", token, mode)     reply with a state blob; mode is None for
#                                 a plain full snapshot, ("base", epoch) to
#                                 also prime the worker's delta tracker, or
#                                 ("delta", since_epoch, epoch) for a framed
#                                 incremental snapshot (changed state only)
#   ("stop", ship_state)          reply ("stopped", ...) and exit
# Output-queue messages (worker → merger):
#   ("matches", shard_id, last_ts, (match, ...), n_events, seconds)
#   ("mark", shard_id, token)
#   ("snapshot", shard_id, token, blob)
#   ("stopped", shard_id, final_blob_or_None)
#   ("error", shard_id, traceback_text)
def _worker_loop(shard_id: int, engine, in_queue, out_queue) -> None:
    """Host one shard replica: consume batches, ship match deltas back.

    The replica runs the :class:`~repro.parallel.Shard` streaming
    lifecycle: each ``events`` message is one :meth:`Shard.feed` call, so
    the worker's behaviour is exactly the shard semantics the batch path
    and the tests define.  For incremental checkpoints the worker owns its
    shard's :class:`~repro.streaming.delta.DeltaTracker`, so only the
    changed state crosses the output queue at a delta barrier.
    """
    shard = Shard(shard_id, engine)
    tracker: Optional[DeltaTracker] = None
    try:
        while True:
            message = in_queue.get()
            kind = message[0]
            if kind == "events":
                events = message[1]
                started = time.perf_counter()
                matches = shard.feed(events)
                elapsed = time.perf_counter() - started
                last_ts = events[-1].timestamp if events else None
                out_queue.put(
                    ("matches", shard_id, last_ts, tuple(matches), len(events), elapsed)
                )
            elif kind == "mark":
                out_queue.put(("mark", shard_id, message[1]))
            elif kind == "snapshot":
                token, mode = message[1], message[2]
                if mode is None:
                    blob = snapshot_engine(shard.engine)
                elif mode[0] == "base":
                    blob = snapshot_engine(shard.engine)
                    if tracker is None:
                        tracker = DeltaTracker(shard.engine)
                    tracker.prime(mode[1])
                elif mode[0] == "delta":
                    if tracker is None:
                        # Never primed (e.g. a restarted worker): the frame
                        # degrades to a self-contained base for this shard.
                        tracker = DeltaTracker(shard.engine)
                    blob = tracker.encode_frame(mode[1], mode[2])
                else:  # pragma: no cover - protocol misuse
                    raise StreamingError(f"unknown snapshot mode {mode!r}")
                out_queue.put(("snapshot", shard_id, token, blob))
            elif kind == "stop":
                final_blob = snapshot_engine(shard.engine) if message[1] else None
                out_queue.put(("stopped", shard_id, final_blob))
                return
            else:  # pragma: no cover - protocol misuse
                raise StreamingError(f"unknown worker message kind {kind!r}")
    except BaseException:
        out_queue.put(("error", shard_id, traceback.format_exc()))


def _process_worker_main(shard_id: int, engine_blob: bytes, in_queue, out_queue) -> None:
    """Process-worker entry point: rebuild the replica, then serve."""
    try:
        engine = restore_engine(engine_blob)
    except BaseException:
        out_queue.put(("error", shard_id, traceback.format_exc()))
        return
    _worker_loop(shard_id, engine, in_queue, out_queue)


class _WorkerBackendBase(ExecutionBackend):
    """Queue plumbing shared by the thread and process worker backends.

    Subclasses provide the queue factory and the worker spawner; everything
    else — batching, routing, the merger thread, barriers, snapshots — is
    identical, which is what keeps the two modes behaviourally equivalent.
    """

    #: Whether workers own private copies of the engines (processes) and
    #: must ship state back on snapshot/stop.
    _workers_own_state = False

    def __init__(
        self,
        engine: ParallelCEPEngine,
        feed_batch: int = DEFAULT_FEED_BATCH,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        barrier_timeout: float = 120.0,
    ):
        if not isinstance(engine, ParallelCEPEngine):
            raise StreamingError(
                f"{type(self).__name__} hosts one engine replica per shard "
                f"and therefore needs a ParallelCEPEngine, got "
                f"{type(engine).__name__}; wrap a sequential engine in a "
                "1-shard ParallelCEPEngine or use the inline backend"
            )
        if feed_batch < 1:
            raise StreamingError(f"feed_batch must be positive, got {feed_batch!r}")
        if queue_capacity < 1:
            raise StreamingError(
                f"queue_capacity must be positive, got {queue_capacity!r}"
            )
        self._template = engine
        self._engines = [shard.engine for shard in engine.sharded_engine.shards]
        self._partitioner = engine.partitioner
        self._num_shards = engine.num_shards
        self._feed_batch = int(feed_batch)
        self._queue_capacity = int(queue_capacity)
        self._barrier_timeout = float(barrier_timeout)
        window = engine.pattern.window
        self._dedup = StreamingMatchDeduplicator(
            window=window if window != float("inf") else UNBOUNDED_DEDUP_WINDOW
        )
        self._metrics = PipelineMetrics()

        self._started = False
        self._workers: List = []
        self._in_queues: List = []
        self._out_queue = None
        self._merger: Optional[threading.Thread] = None
        self._merger_stop = threading.Event()

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # Guarded by _lock:
        self._ready: List[Match] = []
        self._error: Optional[str] = None
        self._mark_acks: Dict[int, set] = {}
        self._snapshot_blobs: Dict[int, Dict[int, bytes]] = {}
        self._stopped_workers: set = set()
        self._fed_counts = [0] * self._num_shards
        self._done_counts = [0] * self._num_shards
        self._shard_clock = [float("-inf")] * self._num_shards
        self._fed_clock = float("-inf")
        # Event-time low watermark pushed down by an ordering pipeline
        # (monotone; -inf until one arrives).  Not reset by start(): event
        # time survives worker restarts within one backend lifetime.
        self._event_time_watermark = float("-inf")

        self._pending: List[List[Event]] = [[] for _ in range(self._num_shards)]
        self._next_token = 0
        # Coordinator-side change tracking for the dedup filter (the shard
        # replicas are tracked worker-side); rebuilt when restore() swaps
        # the filter object.
        self._delta_tracker: Optional[DeltaTracker] = None
        self._delta_tracker_target = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The template :class:`ParallelCEPEngine`.

        For the thread backend its shard replicas are the live worker
        engines; for the process backend they are refreshed from the
        workers on every snapshot and on :meth:`close`.
        """
        return self._template

    @property
    def pattern(self):
        return self._template.pattern

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def deduplicator(self) -> StreamingMatchDeduplicator:
        return self._dedup

    def bind_metrics(self, metrics: PipelineMetrics) -> None:
        self._metrics = metrics

    def plan_history(self) -> List[str]:
        history: List[str] = []
        for shard_id, engine in enumerate(self._engines):
            history.extend(
                f"shard {shard_id}: {plan}"
                for plan in getattr(engine, "plan_history", [])
            )
        return history

    def engine_introspection(self) -> dict:
        """Per-shard introspection frames merged into one cross-shard view.

        The thread backend's shard replicas are the live worker engines;
        the process backend's replicas are refreshed here through the same
        snapshot barrier a checkpoint uses (workers ship their state back
        and the coordinator adopts it), so the profile frames describe the
        workers' current truth, not a stale template.
        """
        from repro.obs.introspect import (
            engine_introspection_frame,
            merge_introspection_frames,
        )

        if self._started and self._workers_own_state:
            self._full_snapshot(None)
        return merge_introspection_frames(
            [engine_introspection_frame(engine) for engine in self._engines]
        )

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _make_queue(self, capacity: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def _spawn_worker(self, shard_id: int, engine, in_queue, out_queue):
        raise NotImplementedError  # pragma: no cover - abstract

    def _worker_alive(self, shard_id: int) -> bool:
        worker = self._workers[shard_id]
        return worker is not None and worker.is_alive()

    def _terminate_worker(self, shard_id: int) -> None:
        """Forcefully stop a straggler (only possible for processes)."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._merger_stop.clear()
        with self._lock:
            self._ready = []
            self._error = None
            self._mark_acks = {}
            self._snapshot_blobs = {}
            self._stopped_workers = set()
            self._fed_counts = [0] * self._num_shards
            self._done_counts = [0] * self._num_shards
            self._shard_clock = [float("-inf")] * self._num_shards
            self._fed_clock = float("-inf")
        self._pending = [[] for _ in range(self._num_shards)]
        self._in_queues = [
            self._make_queue(self._queue_capacity) for _ in range(self._num_shards)
        ]
        self._out_queue = self._make_queue(0)  # unbounded: merger always drains
        self._workers = [
            self._spawn_worker(
                shard_id, self._engines[shard_id], self._in_queues[shard_id], self._out_queue
            )
            for shard_id in range(self._num_shards)
        ]
        self._merger = threading.Thread(
            target=self._merger_loop, name=f"{self.name}-merger", daemon=True
        )
        self._merger.start()
        self._started = True

    def close(self) -> None:
        if not self._started:
            return
        deadline = time.monotonic() + self._barrier_timeout
        try:
            for shard_id in range(self._num_shards):
                try:
                    self._flush_pending(shard_id)
                    self._put(shard_id, ("stop", self._workers_own_state), deadline)
                except StreamingError:
                    continue  # dead worker: nothing to stop
            with self._cond:
                while (
                    len(self._stopped_workers) < self._num_shards
                    and self._error is None
                    and time.monotonic() < deadline
                ):
                    self._cond.wait(0.25)
        finally:
            self._merger_stop.set()
            if self._merger is not None:
                self._merger.join(timeout=5.0)
            for shard_id, worker in enumerate(self._workers):
                if hasattr(worker, "join"):
                    worker.join(timeout=2.0)
                if self._worker_alive(shard_id):
                    self._terminate_worker(shard_id)
            self._workers = []
            self._in_queues = []
            self._out_queue = None
            self._merger = None
            self._started = False

    # ------------------------------------------------------------------
    # The merger thread
    # ------------------------------------------------------------------
    def _watermark_locked(self) -> float:
        """The dedup eviction clock: the slowest shard's stream clock.

        Idle shards ride the feed clock.  When the pipeline propagates an
        event-time low watermark (ordering stage active), the clock is
        clamped to it — with out-of-order ingestion the feed clock is an
        arrival-order maximum that may overtake events still admissible
        within the lateness bound, so eviction must follow event time.
        """
        clocks = []
        for shard_id in range(self._num_shards):
            if self._done_counts[shard_id] >= self._fed_counts[shard_id]:
                clocks.append(self._fed_clock)
            else:
                clocks.append(self._shard_clock[shard_id])
        watermark = min(clocks) if clocks else float("-inf")
        if self._event_time_watermark != float("-inf"):
            watermark = min(watermark, self._event_time_watermark)
        return watermark

    def advance_watermark(self, watermark: float) -> None:
        with self._lock:
            if watermark > self._event_time_watermark:
                self._event_time_watermark = watermark

    def _merger_loop(self) -> None:
        """Drain shard outputs: dedup matches, track barriers and lanes.

        Any unexpected failure is recorded as the backend error (and wakes
        barrier waiters) rather than silently killing the thread — a dead
        merger would otherwise turn every later barrier into a timeout.
        """
        try:
            self._merger_loop_inner()
        except BaseException:
            with self._cond:
                if self._error is None:
                    self._error = (
                        "the match-merger thread crashed:\n" + traceback.format_exc()
                    )
                self._cond.notify_all()

    def _merger_loop_inner(self) -> None:
        while True:
            try:
                message = self._out_queue.get(timeout=0.05)
            except Empty:
                if self._merger_stop.is_set():
                    return
                continue
            kind = message[0]
            with self._cond:
                if kind == "matches":
                    _, shard_id, last_ts, matches, n_events, elapsed = message
                    # The eviction watermark must be computed *before*
                    # crediting this delta: any delta still unprocessed (this
                    # one included) only carries detections at or above the
                    # pre-update watermark, so the horizon can never overtake
                    # a duplicate that is still in flight from another shard.
                    watermark = self._watermark_locked()
                    self._done_counts[shard_id] += n_events
                    if last_ts is not None:
                        self._shard_clock[shard_id] = last_ts
                    self._metrics.worker_lane(shard_id).observe_batch(
                        n_events, elapsed
                    )
                    if matches:
                        admitted = self._dedup.filter(matches, now=watermark)
                        self._ready.extend(admitted)
                elif kind == "mark":
                    _, shard_id, token = message
                    self._mark_acks.setdefault(token, set()).add(shard_id)
                elif kind == "snapshot":
                    _, shard_id, token, blob = message
                    self._snapshot_blobs.setdefault(token, {})[shard_id] = blob
                elif kind == "stopped":
                    _, shard_id, final_blob = message
                    if final_blob is not None:
                        self._adopt_engine(shard_id, restore_engine(final_blob))
                    self._stopped_workers.add(shard_id)
                elif kind == "error":
                    _, shard_id, text = message
                    if self._error is None:
                        self._error = f"shard {shard_id} worker failed:\n{text}"
                self._cond.notify_all()

    def _adopt_engine(self, shard_id: int, engine) -> None:
        """Fold a worker's final engine state back into the template."""
        self._engines[shard_id] = engine
        self._template.sharded_engine.shards[shard_id].engine = engine

    def _raise_if_failed_locked(self) -> None:
        if self._error is not None:
            raise StreamingError(self._error)

    def _raise_if_failed(self) -> None:
        with self._lock:
            self._raise_if_failed_locked()

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def _put(self, shard_id: int, message, deadline: Optional[float] = None) -> None:
        """Blocking bounded put with worker-liveness checks (backpressure)."""
        queue = self._in_queues[shard_id]
        while True:
            self._raise_if_failed()
            try:
                queue.put(message, timeout=0.25)
                return
            except Full:
                if not self._worker_alive(shard_id):
                    # The worker's dying act is an ("error", ...) message; give
                    # the merger a moment to dequeue it so the caller gets the
                    # real traceback rather than this generic symptom.
                    with self._cond:
                        self._cond.wait_for(
                            lambda: self._error is not None, timeout=2.0
                        )
                        self._raise_if_failed_locked()
                    raise StreamingError(
                        f"shard {shard_id} worker died with a full input queue"
                    ) from None
                if deadline is not None and time.monotonic() >= deadline:
                    raise StreamingError(
                        f"timed out handing work to shard {shard_id}"
                    ) from None

    def _flush_pending(self, shard_id: int) -> None:
        pending = self._pending[shard_id]
        if not pending:
            return
        batch = tuple(pending)
        pending.clear()
        # Credit the feed state *before* the put: once the batch is on the
        # queue a worker may process it and the merger may handle its delta;
        # if the shard were still uncredited at that point it would be
        # misclassified as drained and ride the (already-raised) feed clock,
        # inflating the dedup watermark past a duplicate still in flight.
        # Crediting early is safe in the other direction — the shard is
        # classified as busy and contributes its (lagging) processed clock.
        with self._lock:
            self._fed_counts[shard_id] += len(batch)
            if batch[-1].timestamp > self._fed_clock:
                self._fed_clock = batch[-1].timestamp
        self._put(shard_id, ("events", batch))
        with self._lock:
            try:
                depth = self._in_queues[shard_id].qsize()
            except NotImplementedError:  # pragma: no cover - macOS qsize
                depth = 0
            self._metrics.worker_lane(shard_id).observe_queue_depth(depth)

    def submit(self, event: Event) -> None:
        self.start()
        self._raise_if_failed()
        for shard_id in self._partitioner.route(event, self._num_shards):
            pending = self._pending[shard_id]
            pending.append(event)
            if len(pending) >= self._feed_batch:
                self._flush_pending(shard_id)

    def collect(self) -> List[Match]:
        with self._lock:
            ready, self._ready = self._ready, []
        return ready

    # ------------------------------------------------------------------
    # Barrier, flush, snapshot
    # ------------------------------------------------------------------
    def _barrier(self) -> int:
        """Wait until every worker has consumed everything fed so far."""
        self._next_token += 1
        token = self._next_token
        for shard_id in range(self._num_shards):
            self._flush_pending(shard_id)
        for shard_id in range(self._num_shards):
            self._put(shard_id, ("mark", token))
        deadline = time.monotonic() + self._barrier_timeout
        with self._cond:
            while len(self._mark_acks.get(token, ())) < self._num_shards:
                self._raise_if_failed_locked()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise StreamingError(
                        f"barrier timed out after {self._barrier_timeout:g}s "
                        f"({len(self._mark_acks.get(token, ()))}/"
                        f"{self._num_shards} workers reached it)"
                    )
                self._cond.wait(min(remaining, 0.25))
            self._mark_acks.pop(token, None)
        return token

    def flush(self) -> List[Match]:
        if not self._started:
            return self.collect()
        self._barrier()
        return self.collect()

    def _request_shard_blobs(self, mode) -> List[bytes]:
        """Barrier, then one state blob per worker (full or delta framed)."""
        token = self._barrier()
        for shard_id in range(self._num_shards):
            self._put(shard_id, ("snapshot", token, mode))
        deadline = time.monotonic() + self._barrier_timeout
        with self._cond:
            while len(self._snapshot_blobs.get(token, {})) < self._num_shards:
                self._raise_if_failed_locked()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise StreamingError(
                        f"snapshot timed out after {self._barrier_timeout:g}s"
                    )
                self._cond.wait(min(remaining, 0.25))
            by_shard = self._snapshot_blobs.pop(token)
        return [by_shard[shard_id] for shard_id in range(self._num_shards)]

    def _coordinator_meta(self, include_dedup: bool = True) -> Dict:
        meta = {
            "backend": self.name,
            "num_shards": self._num_shards,
            "partitioner": self._partitioner,
            "event_time_watermark": self._event_time_watermark,
            "queue_high_water": {
                shard_id: lane.queue_high_water
                for shard_id, lane in self._metrics.workers.items()
            },
        }
        if include_dedup:
            meta["dedup"] = self._dedup
        return meta

    def _full_snapshot(self, mode) -> bytes:
        if not self._started:
            # Nothing in flight: snapshot the local replicas directly.
            blobs = [snapshot_engine(engine) for engine in self._engines]
        else:
            blobs = self._request_shard_blobs(mode)
            if self._workers_own_state:
                # Keep the local replicas coherent with the workers' truth.
                with self._lock:
                    for shard_id, blob in enumerate(blobs):
                        self._adopt_engine(shard_id, restore_engine(blob))
        with self._lock:
            meta = self._coordinator_meta()
        return snapshot_shard_states(blobs, meta)

    def snapshot(self) -> bytes:
        return self._full_snapshot(None)

    def snapshot_base(self, epoch: int) -> bytes:
        """Full shard snapshot that anchors delta epoch ``epoch``.

        Workers prime their shard trackers against exactly the state they
        ship, and the coordinator primes the dedup-filter tracker, so the
        next :meth:`snapshot_delta` diffs against this base.
        """
        blob = self._full_snapshot(("base", int(epoch)))
        with self._lock:
            if self._delta_tracker is None or self._delta_tracker_target is not self._dedup:
                self._delta_tracker = DeltaTracker(self._dedup)
                self._delta_tracker_target = self._dedup
            self._delta_tracker.prime(epoch)
        return blob

    def snapshot_delta(self, since_epoch: int, epoch: int) -> bytes:
        """Per-shard deltas shipped through the existing snapshot barrier.

        Each worker diffs its replica against the last primed epoch and
        ships only the changed state over the output queue — at high
        worker counts the checkpoint hand-off shrinks from O(total state)
        to O(changed state).  The coordinator folds the per-shard frames,
        its own dedup-filter delta and the (small) routing metadata into
        one CRC-framed chain link.
        """
        if not self._started:
            raise StreamingError(
                "snapshot_delta() requires running workers; take a base "
                "snapshot instead"
            )
        shard_frames = self._request_shard_blobs(("delta", int(since_epoch), int(epoch)))
        streams: Dict[str, Dict] = {}
        for shard_id, frame in enumerate(shard_frames):
            payload = restore_delta_state(frame)
            streams[f"shard:{shard_id}"] = payload["streams"]["engine"]
        with self._lock:
            if self._delta_tracker is None or self._delta_tracker_target is not self._dedup:
                self._delta_tracker = DeltaTracker(self._dedup)
                self._delta_tracker_target = self._dedup
            streams["dedup"] = self._delta_tracker.encode_payload(since_epoch, epoch)
            meta_blob = pickle.dumps(
                self._coordinator_meta(include_dedup=False),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        return snapshot_delta_state(
            {
                "streams": streams,
                "meta": meta_blob,
                "epoch": int(epoch),
                "since_epoch": int(since_epoch),
            }
        )

    def restore(self, blob: bytes) -> None:
        if self._started:
            raise StreamingError(
                "restore() must run before the worker backend is started "
                "(a resuming pipeline restores first, then starts workers)"
            )
        if is_shard_snapshot(blob):
            shard_blobs, meta = restore_shard_states(blob)
            if len(shard_blobs) != self._num_shards:
                raise CheckpointError(
                    f"checkpoint holds {len(shard_blobs)} shard states but "
                    f"this backend runs {self._num_shards} workers; resume "
                    "with the same worker count"
                )
            engines = [restore_engine(shard_blob) for shard_blob in shard_blobs]
            for shard_id, engine in enumerate(engines):
                self._adopt_engine(shard_id, engine)
            partitioner = meta.get("partitioner")
            if partitioner is not None:
                self._partitioner = partitioner
            dedup = meta.get("dedup")
            if dedup is not None:
                self._dedup = dedup
            watermark = meta.get("event_time_watermark")
            if watermark is not None:
                self._event_time_watermark = float(watermark)
            return
        # An inline-backend checkpoint of a ParallelCEPEngine can be adopted
        # shard by shard, so a service can be upgraded from --backend inline
        # to a worker backend without discarding its checkpoints.
        engine = restore_engine(blob)
        if not isinstance(engine, ParallelCEPEngine):
            raise CheckpointError(
                f"checkpoint holds a {type(engine).__name__}; a worker "
                "backend can only resume a ParallelCEPEngine (inline) or a "
                "shard-state (worker) checkpoint"
            )
        if engine.num_shards != self._num_shards:
            raise CheckpointError(
                f"checkpoint engine has {engine.num_shards} shards but this "
                f"backend runs {self._num_shards} workers; resume with the "
                "same worker count"
            )
        for shard_id, shard in enumerate(engine.sharded_engine.shards):
            self._adopt_engine(shard_id, shard.engine)
        self._partitioner = engine.partitioner
        if engine._streaming_dedup is not None:
            self._dedup = engine._streaming_dedup

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} shards={self._num_shards} "
            f"feed_batch={self._feed_batch} started={self._started}>"
        )


class ThreadWorkerBackend(_WorkerBackendBase):
    """Per-shard worker threads (GIL-bound; the unpicklable-engine fallback)."""

    name = "thread"
    _workers_own_state = False

    def _make_queue(self, capacity: int):
        import queue as queue_module

        return queue_module.Queue(maxsize=capacity)

    def _spawn_worker(self, shard_id: int, engine, in_queue, out_queue):
        worker = threading.Thread(
            target=_worker_loop,
            args=(shard_id, engine, in_queue, out_queue),
            name=f"shard-{shard_id}-worker",
            daemon=True,
        )
        worker.start()
        return worker


class ProcessWorkerBackend(_WorkerBackendBase):
    """Per-shard worker processes (true multi-core detection)."""

    name = "process"
    _workers_own_state = True

    def __init__(self, engine: ParallelCEPEngine, **kwargs):
        super().__init__(engine, **kwargs)
        import multiprocessing

        self._context = multiprocessing.get_context()

    def _make_queue(self, capacity: int):
        return self._context.Queue(maxsize=capacity) if capacity else self._context.Queue()

    def _spawn_worker(self, shard_id: int, engine, in_queue, out_queue):
        try:
            blob = snapshot_engine(engine)
        except CheckpointError as exc:
            raise StreamingError(
                f"shard {shard_id} engine cannot be shipped to a worker "
                f"process ({exc}); use the thread backend for unpicklable "
                "conditions"
            ) from exc
        worker = self._context.Process(
            target=_process_worker_main,
            args=(shard_id, blob, in_queue, out_queue),
            name=f"shard-{shard_id}-worker",
            daemon=True,
        )
        worker.start()
        return worker

    def _terminate_worker(self, shard_id: int) -> None:
        worker = self._workers[shard_id]
        if worker is not None and worker.is_alive():  # pragma: no cover - stragglers
            worker.terminate()
            worker.join(timeout=1.0)


#: CLI names → backend classes (``inline`` is handled by the pipeline itself).
WORKER_BACKENDS = {
    ThreadWorkerBackend.name: ThreadWorkerBackend,
    ProcessWorkerBackend.name: ProcessWorkerBackend,
}


def backend_by_name(
    name: str,
    engine,
    feed_batch: int = DEFAULT_FEED_BATCH,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
) -> ExecutionBackend:
    """Factory used by the ``serve``/``stream-bench`` CLI.

    ``inline`` wraps any engine; ``thread``/``process`` require a
    :class:`~repro.parallel.ParallelCEPEngine` (one replica per worker).
    """
    if name == InlineBackend.name:
        return InlineBackend(engine)
    try:
        backend_cls = WORKER_BACKENDS[name]
    except KeyError:
        raise StreamingError(
            f"unknown backend {name!r}; expected one of "
            f"{sorted([InlineBackend.name, *WORKER_BACKENDS])}"
        ) from None
    return backend_cls(engine, feed_batch=feed_batch, queue_capacity=queue_capacity)

"""The streaming pipeline runtime.

:class:`StreamingPipeline` wires ``source → engine → sinks`` into a
long-running, incrementally-fed service:

* events are staged through a :class:`~repro.streaming.buffer.BoundedBuffer`
  whose overflow policy decides between backpressure and load shedding;
* with an event-time ordering stage (``max_lateness`` or an explicit
  :class:`~repro.streaming.ordering.ReorderBuffer`), out-of-order arrivals
  are buffered and released in timestamp order before they reach the
  engine, late events are dropped/side-routed/raised per the configured
  policy, and the event-time low watermark is propagated to worker
  backends so their deduplication eviction clock follows event time;
* the engine is fed event-at-a-time (the paper's detection–adaptation loop
  is untouched — the pipeline only changes *how events arrive*, never how
  they are evaluated), so a pipeline over a recorded stream produces
  exactly the matches of a batch :meth:`~repro.engine.AdaptiveCEPEngine.run`;
* matches are delivered to every sink as they are emitted;
* with a :class:`~repro.streaming.checkpoint.CheckpointStore`, the engine
  state, source offset and sink positions are snapshotted every
  ``checkpoint_every`` events, and a new pipeline pointed at the same
  store resumes from the latest checkpoint — re-processing only the
  post-checkpoint suffix, with sinks rolled back so nothing is lost or
  duplicated;
* :meth:`~StreamingPipeline.stop` requests a graceful shutdown: the loop
  finishes the in-flight event, writes a final checkpoint and flushes the
  sinks.

Two ingestion styles are supported: the pull-driven :meth:`run` loop
(sources) and the push-style :meth:`submit` / :meth:`drain` pair (for
callers that receive events from elsewhere and cannot be pulled from).

Where the detection work happens is pluggable: passing an
:class:`~repro.streaming.workers.ExecutionBackend` instead of a bare
engine routes events to per-shard worker threads or processes (see
:mod:`repro.streaming.workers`); a bare engine is wrapped in the
single-threaded :class:`~repro.streaming.workers.InlineBackend`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.engine import Match
from repro.engine.state import restore_ordering_state, snapshot_ordering_state
from repro.errors import CheckpointError, StreamingError
from repro.events import Event, EventStream
from repro.metrics import PipelineMetrics
from repro.obs.decisions import CoalescingEmitter, DecisionLog
from repro.obs.tracing import Tracer
from repro.streaming.buffer import Backpressure, BoundedBuffer, OverflowPolicy
from repro.streaming.checkpoint import Checkpoint, CheckpointStore, DeltaCheckpoint
from repro.streaming.delta import tracker_degradation
from repro.streaming.ordering import ReorderBuffer
from repro.streaming.sinks import MatchSink
from repro.streaming.sources import EventSource, IterableSource
from repro.streaming.workers import ExecutionBackend, InlineBackend

#: How many events one fill phase pulls at most (bounds per-iteration latency).
DEFAULT_FILL_CHUNK = 256

#: Deltas between two full base snapshots in ``checkpoint_mode="delta"``.
DEFAULT_CHECKPOINT_FULL_EVERY = 8

#: Valid ``checkpoint_mode`` values.
CHECKPOINT_MODES = ("full", "delta")


@dataclass
class PipelineResult:
    """Outcome of one :meth:`StreamingPipeline.run` invocation."""

    events_processed: int
    matches_emitted: int
    duration_seconds: float
    metrics: PipelineMetrics
    stop_reason: str = "source-exhausted"
    resumed_from: int = 0
    total_events_processed: int = 0
    total_matches_emitted: int = 0
    plan_history: List[str] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Events processed per wall-clock second of this run."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.events_processed / self.duration_seconds

    def __repr__(self) -> str:
        return (
            f"PipelineResult(events={self.events_processed}, "
            f"matches={self.matches_emitted}, "
            f"throughput={self.throughput:,.0f} ev/s, "
            f"stop={self.stop_reason!r}, resumed_from={self.resumed_from})"
        )


class StreamingPipeline:
    """A deployable detection pipeline over one engine.

    Parameters
    ----------
    engine:
        Any engine exposing ``process(event) -> List[Match]`` — the
        sequential :class:`~repro.engine.AdaptiveCEPEngine`, the
        :class:`~repro.engine.MultiPatternEngine`, or the sharded
        :class:`~repro.parallel.ParallelCEPEngine` in streaming mode —
        or an :class:`~repro.streaming.workers.ExecutionBackend` (e.g. a
        :class:`~repro.streaming.workers.ProcessWorkerBackend` for true
        multi-core detection).  A bare engine runs inline.
    source:
        An :class:`~repro.streaming.sources.EventSource`, any
        :class:`~repro.events.EventStream`, or a plain iterable of events
        (wrapped into an :class:`IterableSource` automatically).
    sinks:
        Zero or more :class:`~repro.streaming.sinks.MatchSink` objects.
    checkpoint_store / checkpoint_every:
        Enable fault tolerance: snapshot the pipeline every
        ``checkpoint_every`` processed events into the store.  ``run`` then
        resumes from the latest checkpoint unless told otherwise.
    checkpoint_mode / checkpoint_full_every:
        ``"full"`` (default) pickles the whole engine state at every
        checkpoint.  ``"delta"`` writes ``checkpoint_full_every``
        append-only incremental deltas between consecutive full base
        snapshots — each delta only the state changed since the previous
        epoch (see :mod:`repro.streaming.delta`) — which keeps
        high-cadence checkpointing cheap and shrinks worker-barrier
        hand-offs from O(total state) to O(changed state).  Either mode
        resumes from a store written by the other.
    buffer_capacity / overflow_policy:
        The staging buffer between source and engine; the policy decides
        between backpressure and load shedding when it is full (only
        reachable through push-style :meth:`submit` — the pull loop stops
        pulling instead).
    ordering / max_lateness / late_policy / late_sink:
        Event-time out-of-order tolerance.  ``max_lateness`` builds a
        bounded-out-of-orderness :class:`~repro.streaming.ordering.ReorderBuffer`
        in front of the engine (``late_policy`` one of ``drop`` /
        ``side-output`` / ``raise``; ``late_sink`` receives side-routed
        events); pass ``ordering`` directly for punctuated or custom
        watermarking.  Without either, the source must already be
        timestamp-ordered (the original contract).
    """

    def __init__(
        self,
        engine,
        source: "EventSource | EventStream | Iterable[Event]",
        sinks: Sequence[MatchSink] = (),
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_every: int = 0,
        checkpoint_mode: str = "full",
        checkpoint_full_every: int = DEFAULT_CHECKPOINT_FULL_EVERY,
        buffer_capacity: int = 1024,
        overflow_policy: Optional[OverflowPolicy] = None,
        fill_chunk: int = DEFAULT_FILL_CHUNK,
        clock: Callable[[], float] = time.perf_counter,
        ordering: Optional[ReorderBuffer] = None,
        max_lateness: Optional[float] = None,
        late_policy: str = "drop",
        late_sink: Optional[Callable[[Event], None]] = None,
        decision_log: Optional[DecisionLog] = None,
        tracer: Optional[Tracer] = None,
    ):
        self._backend = (
            engine if isinstance(engine, ExecutionBackend) else InlineBackend(engine)
        )
        if checkpoint_every < 0:
            raise StreamingError(
                f"checkpoint_every must be non-negative, got {checkpoint_every!r}"
            )
        if checkpoint_every and checkpoint_store is None:
            raise StreamingError(
                "checkpoint_every requires a checkpoint_store"
            )
        if checkpoint_mode not in CHECKPOINT_MODES:
            raise StreamingError(
                f"checkpoint_mode must be one of {CHECKPOINT_MODES}, "
                f"got {checkpoint_mode!r}"
            )
        if checkpoint_full_every < 1:
            raise StreamingError(
                f"checkpoint_full_every must be positive, "
                f"got {checkpoint_full_every!r}"
            )
        if fill_chunk < 1:
            raise StreamingError(f"fill_chunk must be positive, got {fill_chunk!r}")
        self._source = (
            source if isinstance(source, EventSource) else IterableSource(source)
        )
        self._sinks: List[MatchSink] = list(sinks)
        self._store = checkpoint_store
        self._checkpoint_every = int(checkpoint_every)
        self._checkpoint_mode = checkpoint_mode
        self._full_every = int(checkpoint_full_every)
        # Delta-chain bookkeeping: the epoch the next delta diffs against,
        # the store index of the current chain's base, and how many deltas
        # the chain holds so far.  ``None`` forces the next checkpoint to
        # be a full base (fresh pipeline, or right after a restore —
        # trackers only know state they were primed with in this process).
        self._delta_epoch: Optional[int] = None
        self._base_index: Optional[int] = None
        self._chain_deltas = 0
        self._epoch_seq = 0
        self._buffer = BoundedBuffer(buffer_capacity, overflow_policy)
        self._fill_chunk = int(fill_chunk)
        self._clock = clock
        if ordering is not None and max_lateness is not None:
            raise StreamingError(
                "pass either an ordering buffer or max_lateness, not both"
            )
        if ordering is None and max_lateness is not None:
            ordering = ReorderBuffer(
                max_lateness, late_policy=late_policy, late_sink=late_sink
            )
        self._ordering = ordering
        # Event-time high-water mark (max timestamp pulled); the reference
        # the watermark-lag gauge measures disorder against.
        self._max_event_time = float("-inf")

        self.metrics = PipelineMetrics()
        self._backend.bind_metrics(self.metrics)
        self._events_processed_total = 0
        self._matches_emitted_total = 0
        self._records_ingested_total = 0
        self._events_at_last_checkpoint = 0
        self._stop_requested = False
        self._running = False

        # Observability: the decision log receives a typed record for every
        # runtime action (coalesced for the per-event shed/late decisions so
        # the overload path never pays a file write per event); the tracer
        # records batch-level spans when enabled.  Both are optional and the
        # hot path only ever pays ``is not None`` checks for them.
        self.decision_log = decision_log
        self.tracer = tracer
        self._shed_emitter: Optional[CoalescingEmitter] = None
        self._late_emitter: Optional[CoalescingEmitter] = None
        if decision_log is not None:
            self._shed_emitter = CoalescingEmitter(decision_log, "shed")
            self._late_emitter = CoalescingEmitter(decision_log, "late_event_policy")
        self._attach_observers()
        # Lifecycle state backing the control plane's /ready endpoint:
        # created → restoring → running → stopped.
        self._state = "created"
        # Manual checkpoint requests (control-plane POST /checkpoint): the
        # run loop performs the cut between batches and sets the events.
        self._manual_requests: "deque[threading.Event]" = deque()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The live engine (replaced by the restored one after a resume).

        With a worker backend this is the backend's template engine —
        process-backend replicas are refreshed from the workers at every
        checkpoint and on shutdown.
        """
        return self._backend.engine

    @property
    def backend(self) -> ExecutionBackend:
        """Where detection runs: inline, thread workers or process workers."""
        return self._backend

    @property
    def source(self) -> EventSource:
        return self._source

    @property
    def sinks(self) -> List[MatchSink]:
        return list(self._sinks)

    @property
    def buffer(self) -> BoundedBuffer:
        return self._buffer

    @property
    def ordering(self) -> Optional[ReorderBuffer]:
        """The event-time ordering stage, or ``None`` for sorted sources."""
        return self._ordering

    @property
    def events_processed(self) -> int:
        """Total events processed, including any resumed prefix."""
        return self._events_processed_total

    @property
    def records_ingested(self) -> int:
        """Source records pulled, including events still held in flight."""
        return self._records_ingested_total

    @property
    def matches_emitted(self) -> int:
        return self._matches_emitted_total

    def engine_introspection(self) -> dict:
        """One frame of engine internals (plan, operator stats, drift).

        Delegates to the execution backend, which merges per-shard frames
        for worker backends; see :mod:`repro.obs.introspect` and the
        control plane's ``/engine`` endpoint.
        """
        return self._backend.engine_introspection()

    def _sample_partial_matches(self) -> None:
        """Record the live partial-match population into the metrics.

        Called only at checkpoint cuts and end-of-run — a deliberate
        low-frequency gauge so the per-event hot path never pays for it.
        """
        count = getattr(self._backend.engine, "partial_match_count", None)
        if callable(count):
            try:
                self.metrics.observe_partial_matches(count())
            except Exception:  # pragma: no cover - engine mid-teardown
                pass

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Lifecycle state: ``created`` / ``restoring`` / ``running`` / ``stopped``."""
        return self._state

    def readiness(self) -> "tuple[bool, str]":
        """Whether the pipeline should receive traffic, and why (not).

        Distinct from liveness: a pipeline replaying a checkpoint chain or
        saturated under backpressure is *alive* but not *ready* — the
        control plane's ``/ready`` endpoint answers 503 from this signal
        so a load balancer routes around the instance without killing it.
        """
        if self._state == "restoring":
            return False, "restoring from checkpoint"
        if not self._running:
            return False, f"pipeline is not running (state={self._state})"
        if self._buffer.full and isinstance(self._buffer.policy, Backpressure):
            return False, "backpressure: staging buffer saturated"
        return True, "ok"

    def request_checkpoint(self) -> threading.Event:
        """Request a manual checkpoint cut (thread-safe; ``POST /checkpoint``).

        The run loop performs the cut between batches — through the same
        barrier a cadence-triggered cut uses — and sets the returned event
        when it lands.  Raises when no store is configured or the pipeline
        is not running (nothing would ever service the request).
        """
        if self._store is None:
            raise StreamingError("no checkpoint store configured")
        if not self._running:
            raise StreamingError("pipeline is not running")
        done = threading.Event()
        self._manual_requests.append(done)
        return done

    def _record_decision(self, type: str, **detail) -> None:
        if self.decision_log is not None:
            self.decision_log.record(type, **detail)

    def _on_shed(self, event: Event, policy: str) -> None:
        self._shed_emitter.observe(
            sample={"type": event.type_name, "timestamp": event.timestamp},
            policy=policy,
        )

    def _on_late(self, event: Event, policy: str) -> None:
        self._late_emitter.observe(
            sample={
                "type": event.type_name,
                "timestamp": event.timestamp,
                "watermark": self._ordering.watermark if self._ordering else None,
            },
            policy=policy,
        )

    def _on_replan(self, record) -> None:
        self._record_decision(
            "replan",
            reason=record.reason,
            previous_cost=record.previous_cost,
            new_cost=record.new_cost,
            plan=record.plan_description,
            events_processed=self._events_processed_total,
            trigger_distance=getattr(record, "trigger_distance", None),
            drift=getattr(record, "drift", None),
        )

    def _iter_controllers(self, engine=None) -> Iterator[object]:
        """Every live AdaptationController reachable from the engine.

        Walks the engine shapes duck-typed: a bare adaptive engine's
        ``controller``, a multi-pattern engine's ``sub_engines()``, and a
        sharded parallel engine's per-shard engines.  Process-worker
        replicas live out-of-process and cannot be walked — their replan
        records are unavailable (a documented best-effort boundary).
        """
        if engine is None:
            engine = self._backend.engine
        controller = getattr(engine, "controller", None)
        if controller is not None:
            yield controller
        sub_engines = getattr(engine, "sub_engines", None)
        if sub_engines is not None:
            # MultiPatternEngine exposes sub_engines as a property (a
            # list); older engine shapes exposed a method.
            subs = sub_engines() if callable(sub_engines) else sub_engines
            for sub in subs:
                if sub is not engine:
                    yield from self._iter_controllers(sub)
        sharded = getattr(engine, "sharded_engine", None)
        if sharded is not None:
            for shard in getattr(sharded, "shards", ()) or ():
                inner = getattr(shard, "engine", None)
                if inner is not None and inner is not engine:
                    yield from self._iter_controllers(inner)

    def _attach_observers(self) -> None:
        """(Re-)attach decision hooks to the live buffer/ordering/engine.

        Called at construction and again after a checkpoint restore — the
        restore replaces the ordering buffer and the engine state, and the
        hooks are process-local attributes deliberately excluded from
        pickled state.
        """
        if self.decision_log is None:
            return
        self._buffer.on_shed = self._on_shed
        if self._ordering is not None:
            self._ordering.on_late = self._on_late
        for controller in self._iter_controllers():
            controller.decision_sink = self._on_replan
        if self._store is not None:
            self._store.observer = self._record_decision
        for sink in self._sinks:
            if hasattr(sink, "on_decision"):
                sink.on_decision = self._record_decision

    # ------------------------------------------------------------------
    # Graceful shutdown
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request a graceful stop.

        Safe to call from a signal handler or another thread: the run loop
        finishes the event in flight, writes a final checkpoint and flushes
        the sinks before returning.  A tailing (``follow=True``) file source
        is told to stop following, so a loop blocked on an EOF poll wakes at
        the next poll interval instead of waiting out its idle timeout.
        """
        self._stop_requested = True
        stop_following = getattr(self._source, "stop_following", None)
        if callable(stop_following):
            stop_following()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _restore_from(self, checkpoint: Checkpoint) -> None:
        pattern_name = getattr(self._backend.pattern, "name", "")
        if (
            checkpoint.pattern_name
            and pattern_name
            and checkpoint.pattern_name != pattern_name
        ):
            raise CheckpointError(
                f"checkpoint belongs to pattern {checkpoint.pattern_name!r} "
                f"but this pipeline runs {pattern_name!r}; clear the store "
                "or point it elsewhere"
            )
        self._backend.restore(checkpoint.engine_blob)
        self._events_processed_total = checkpoint.events_processed
        self._matches_emitted_total = checkpoint.matches_emitted
        self._events_at_last_checkpoint = checkpoint.events_processed
        # Delta trackers only know state primed in this process: rebase so
        # the first checkpoint after a resume is a fresh full base.
        self._delta_epoch = None
        self._base_index = None
        self._chain_deltas = 0
        if checkpoint.sink_states:
            if len(checkpoint.sink_states) != len(self._sinks):
                raise CheckpointError(
                    f"checkpoint has {len(checkpoint.sink_states)} sink states "
                    f"but the pipeline has {len(self._sinks)} sinks; resume "
                    "with the same sink configuration"
                )
            for sink, state in zip(self._sinks, checkpoint.sink_states):
                sink.restore(state)
        # With an ordering stage, the processed events are not a prefix of
        # the source: the checkpoint carries the in-flight difference (the
        # reorder heap and the staged-but-unprocessed events) and the raw
        # source offset.  getattr() keeps checkpoints from older builds
        # (which predate both fields) loading.
        ordering_blob = getattr(checkpoint, "ordering_blob", None)
        if ordering_blob is not None:
            if self._ordering is None:
                raise CheckpointError(
                    "checkpoint holds an in-flight reorder buffer; resume "
                    "with an ordering stage (max_lateness / ordering) or "
                    "clear the store"
                )
            state = restore_ordering_state(ordering_blob)
            self._ordering = state["ordering"]
            for event in state.get("staged", ()):
                self._buffer.force_append(event)
            self._max_event_time = float(state.get("high_water", float("-inf")))
            self.metrics.late_events = self._ordering.late_events
            records = int(getattr(checkpoint, "records_ingested", -1))
            if records < checkpoint.events_processed:
                raise CheckpointError(
                    "checkpoint with ordering state lacks a valid source "
                    "offset (records_ingested)"
                )
            self._records_ingested_total = records
            self._source.skip(records)
        else:
            self._records_ingested_total = checkpoint.events_processed
            self._source.skip(checkpoint.events_processed)
        # The restore replaced the ordering buffer and the engine state;
        # decision hooks are process-local and must be re-attached.
        self._attach_observers()

    def _write_checkpoint(self, reason: str = "periodic") -> None:
        if self._store is None:
            return
        started = self._clock()
        # Barrier first: with a worker backend the snapshot below is only a
        # consistent cut once every submitted event has been processed and
        # its matches have reached the sinks.
        self._emit(self._backend.flush())
        for sink in self._sinks:
            sink.flush()
        ordering_blob = None
        if self._ordering is not None:
            ordering_blob = snapshot_ordering_state(
                {
                    "ordering": self._ordering,
                    "staged": self._buffer.snapshot_events(),
                    "high_water": self._max_event_time,
                }
            )
        common = dict(
            events_processed=self._events_processed_total,
            matches_emitted=self._matches_emitted_total,
            sink_states=[sink.state() for sink in self._sinks],
            pattern_name=getattr(self._backend.pattern, "name", ""),
            records_ingested=self._records_ingested_total,
            ordering_blob=ordering_blob,
            reason=reason,
        )
        use_delta = (
            self._checkpoint_mode == "delta"
            and self._delta_epoch is not None
            and self._base_index is not None
            and self._chain_deltas < self._full_every
        )
        if use_delta:
            epoch = self._epoch_seq + 1
            frame = self._backend.snapshot_delta(self._delta_epoch, epoch)
            path = self._store.save_delta(
                DeltaCheckpoint(
                    frame=frame,
                    base_index=self._base_index,
                    epoch=epoch,
                    since_epoch=self._delta_epoch,
                    **common,
                )
            )
            self._chain_deltas += 1
        else:
            epoch = self._epoch_seq + 1
            if self._checkpoint_mode == "delta":
                engine_blob = self._backend.snapshot_base(epoch)
                delta_epoch = epoch
            else:
                engine_blob = self._backend.snapshot()
                delta_epoch = None
            checkpoint = Checkpoint(
                engine_blob=engine_blob, delta_epoch=delta_epoch, **common
            )
            path = self._store.save(checkpoint)
            self._base_index = checkpoint.index
            self._chain_deltas = 0
        if self._checkpoint_mode == "delta":
            self._delta_epoch = epoch
            self._epoch_seq = epoch
        self._events_at_last_checkpoint = self._events_processed_total
        # The snapshot above refreshed worker-owned replicas, so the
        # population gauge sees current state even on process backends.
        self._sample_partial_matches()
        pause = self._clock() - started
        self.metrics.checkpoint.observe(pause)
        self.metrics.checkpoints_written += 1
        size = 0
        try:
            size = os.path.getsize(path)
            self.metrics.observe_checkpoint_bytes(size)
        except OSError:  # pragma: no cover - racing an external prune
            pass
        if self.tracer is not None:
            # The same measured pause StageTiming observed, so span totals
            # and the checkpoint StageTiming reconcile exactly.
            self.tracer.record("checkpoint", pause, kind="delta" if use_delta else "full")
        if self.decision_log is not None:
            detail = dict(
                kind="delta" if use_delta else "full",
                reason=reason,
                bytes=size,
                pause_ms=pause * 1e3,
                epoch=self._epoch_seq if self._checkpoint_mode == "delta" else None,
                events_processed=self._events_processed_total,
                matches_emitted=self._matches_emitted_total,
            )
            if self._checkpoint_mode == "delta":
                # Whether the tracker actually delivered a delta or silently
                # degraded to a self-contained base frame.
                detail.update(tracker_degradation(self._backend.engine))
            self.decision_log.record("checkpoint_cut", **detail)

    # ------------------------------------------------------------------
    # Ingestion (shared by the pull loop and push-style submit)
    # ------------------------------------------------------------------
    def _stage_released(self, events: Sequence[Event]) -> None:
        """Move ordering-stage releases into the staging buffer.

        A released event already left the source *and* the reorder buffer,
        so under the backpressure policy a full staging buffer cannot refuse
        it — the buffer transiently exceeds its capacity instead (bounded by
        the reorder occupancy; the pull loop's fill budget still keeps the
        source from running further ahead).  Drop policies shed per policy,
        as for sorted ingestion.
        """
        for event in events:
            if not self._buffer.offer(event):
                self._buffer.force_append(event)

    def _ingest(self, event: Event) -> None:
        """Route one arrival through the (optional) ordering stage."""
        self._records_ingested_total += 1
        self.metrics.events_ingested += 1
        if self._ordering is None:
            self._buffer.offer(event)
            return
        # Lag behind the event-time high-water mark = this arrival's actual
        # disorder (0 when in order) — measured before the event itself can
        # raise the mark.
        lag = (
            max(0.0, self._max_event_time - event.timestamp)
            if self._max_event_time != float("-inf")
            else 0.0
        )
        if event.timestamp > self._max_event_time:
            self._max_event_time = event.timestamp
        watermark_before = self._ordering.watermark
        released = self._ordering.push(event)
        watermark = self._ordering.watermark
        self.metrics.observe_watermark_lag(lag, self._ordering.depth)
        self.metrics.late_events = self._ordering.late_events
        if released:
            self._stage_released(released)
        if watermark > watermark_before:
            self._backend.advance_watermark(watermark)

    # ------------------------------------------------------------------
    # Push-style ingestion
    # ------------------------------------------------------------------
    def submit(self, event: Event) -> bool:
        """Offer one event for later processing (push-style ingestion).

        Returns ``False`` when the buffer is full under the backpressure
        policy — the producer must retry after :meth:`drain`.  Drop
        policies always return ``True`` and account shed events in
        :attr:`metrics`.  With an ordering stage the event is always
        consumed (the reorder buffer absorbs it; shedding applies when the
        watermark releases it).
        """
        if self._ordering is not None:
            self._ingest(event)
            self.metrics.observe_queue_depth(self._buffer.depth)
            return True
        consumed = self._buffer.offer(event)
        if consumed:
            self._records_ingested_total += 1
            self.metrics.events_ingested += 1
            self.metrics.observe_queue_depth(self._buffer.depth)
        return consumed

    def flush_ordering(self) -> int:
        """Declare end-of-stream to the ordering stage (push-style callers).

        Releases every event still held by the reorder buffer into the
        staging buffer — in timestamp order — and returns how many were
        released; a following :meth:`drain` processes them.  The pull-driven
        :meth:`run` loop does this automatically when the source runs dry.
        No-op without an ordering stage.
        """
        if self._ordering is None or not self._ordering.depth:
            return 0
        released = self._ordering.flush()
        self._stage_released(released)
        self.metrics.observe_queue_depth(self._buffer.depth)
        return len(released)

    def drain(self, max_events: Optional[int] = None) -> List[Match]:
        """Process buffered events now; returns the matches they produced.

        With a worker backend this includes a barrier, so every drained
        event's matches are returned (not just the ones ready so far).
        """
        collected: List[Match] = []
        processed = 0
        while len(self._buffer) > 0:
            if max_events is not None and processed >= max_events:
                break
            collected.extend(self._process_one(self._buffer.pop()))
            processed += 1
        tail = self._backend.flush()
        self._emit(tail)
        collected.extend(tail)
        self.metrics.events_shed += self._buffer.events_shed
        self._buffer.events_shed = 0
        return collected

    def close(self) -> None:
        """Release backend workers (push-style callers; run() does this)."""
        self._backend.close()

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def _emit(self, matches: List[Match]) -> None:
        """Deliver matches to every sink and account for them."""
        if not matches:
            return
        sink_started = self._clock()
        for sink in self._sinks:
            for match in matches:
                sink.emit(match)
        self.metrics.sink.observe(self._clock() - sink_started)
        self._matches_emitted_total += len(matches)
        self.metrics.matches_emitted += len(matches)

    def _process_one(self, event: Event) -> List[Match]:
        started = self._clock()
        self._backend.submit(event)
        self.metrics.engine.observe(self._clock() - started)
        self._events_processed_total += 1
        self.metrics.events_processed += 1
        matches = self._backend.collect()
        self._emit(matches)
        if (
            self._checkpoint_every
            and self._events_processed_total - self._events_at_last_checkpoint
            >= self._checkpoint_every
        ):
            self._write_checkpoint()
        return matches

    def run(
        self,
        max_events: Optional[int] = None,
        resume: bool = True,
        final_checkpoint: bool = True,
    ) -> PipelineResult:
        """Pull the source dry (or up to ``max_events``) through the engine.

        Parameters
        ----------
        max_events:
            Stop after processing this many events *in this run* (the
            bounded-service mode used by smoke tests and experiments).
        resume:
            When a checkpoint store is configured and holds a checkpoint,
            restore engine/sinks/offset from it before processing.
        final_checkpoint:
            Write one last checkpoint when the loop ends (set ``False`` to
            simulate a hard kill in tests).
        """
        if self._running:
            raise StreamingError("pipeline is already running")
        self._running = True
        self._stop_requested = False
        resumed_from = 0
        try:
            if resume and self._store is not None:
                checkpoint = self._store.latest()
                if checkpoint is not None:
                    self._state = "restoring"
                    self._restore_from(checkpoint)
                    resumed_from = checkpoint.events_processed
            for sink in self._sinks:
                sink.open()
            self._backend.start()
            self._state = "running"
            if self._ordering is not None:
                # A restored reorder buffer re-seeds the backend's
                # event-time clock before any new arrival advances it.
                self._backend.advance_watermark(self._ordering.watermark)

            started = self._clock()
            events_before = self.metrics.events_processed
            matches_before = self.metrics.matches_emitted
            iterator = iter(self._source)
            exhausted = False
            stop_reason = "source-exhausted"
            processed_this_run = 0

            while True:
                if self._stop_requested:
                    stop_reason = "stopped"
                    break
                if max_events is not None and processed_this_run >= max_events:
                    stop_reason = "max-events"
                    break
                # Manual checkpoint requests (control plane) are serviced at
                # the batch boundary — the same consistent cut point a
                # cadence-triggered checkpoint uses.
                if self._manual_requests:
                    self._service_manual_checkpoints()
                if self.tracer is not None:
                    self.tracer.new_trace()

                # Fill phase: stage a chunk of events from the source.  The
                # buffer bounds how far the source can run ahead of the
                # engine — with the backpressure policy this *is* the
                # backpressure (we simply stop pulling).
                budget = min(self._fill_chunk, self._buffer.free)
                if max_events is not None:
                    budget = min(
                        budget,
                        max_events - processed_this_run - len(self._buffer),
                    )
                if budget > 0 and not exhausted:
                    fill_started = self._clock()
                    pulled = 0
                    for _ in range(budget):
                        # Honour stop() mid-fill: a rate-limited source paces
                        # every pull, so finishing the chunk could stall the
                        # shutdown for seconds.
                        if self._stop_requested:
                            break
                        try:
                            event = next(iterator)
                        except StopIteration:
                            exhausted = True
                            break
                        self._ingest(event)
                        pulled += 1
                    fill_elapsed = self._clock() - fill_started
                    self.metrics.source.observe(fill_elapsed)
                    self.metrics.observe_queue_depth(self._buffer.depth)
                    if self.tracer is not None:
                        # Same elapsed as the source StageTiming observed,
                        # so span totals reconcile with the aggregate.
                        self.tracer.record("source", fill_elapsed, events=pulled)
                        if self._ordering is not None:
                            self.tracer.record(
                                "reorder",
                                0.0,
                                events=self._buffer.depth,
                                depth=self._ordering.depth,
                                watermark=self._ordering.watermark,
                            )

                if len(self._buffer) == 0:
                    if exhausted:
                        # End-of-stream: no more watermarks will arrive, so
                        # release whatever the ordering stage still holds.
                        if self.flush_ordering():
                            continue
                        break
                    continue

                # Drain phase: feed the staged events to the engine.
                if self.tracer is not None:
                    engine_before = self.metrics.engine.total_seconds
                    sink_before = self.metrics.sink.total_seconds
                    drained_before = processed_this_run
                while (
                    len(self._buffer) > 0
                    and not self._stop_requested
                    and (max_events is None or processed_this_run < max_events)
                ):
                    self._process_one(self._buffer.pop())
                    processed_this_run += 1
                if self.tracer is not None:
                    # Batch-granularity engine/sink spans carrying exactly
                    # the time the StageTimings accumulated over this drain.
                    self.tracer.record(
                        "engine",
                        self.metrics.engine.total_seconds - engine_before,
                        events=processed_this_run - drained_before,
                    )
                    self.tracer.record(
                        "sink",
                        self.metrics.sink.total_seconds - sink_before,
                        events=processed_this_run - drained_before,
                    )

            # Barrier: with a worker backend, matches for the last submitted
            # events may still be in flight — wait for them and deliver.
            self._emit(self._backend.flush())
            duration = self._clock() - started
            if final_checkpoint and self._store is not None:
                if self._events_processed_total > self._events_at_last_checkpoint:
                    self._write_checkpoint(reason="shutdown")
            for sink in self._sinks:
                sink.flush()
            # Stop the workers before reading plan history: the process
            # backend only ships its replicas' final state (including the
            # plans they adapted to) back on close.  Idempotent — the
            # finally-block close becomes a no-op.
            self._backend.close()
            self._sample_partial_matches()

            self.metrics.events_shed += self._buffer.events_shed
            self._buffer.events_shed = 0
            return PipelineResult(
                events_processed=self.metrics.events_processed - events_before,
                matches_emitted=self.metrics.matches_emitted - matches_before,
                duration_seconds=duration,
                metrics=self.metrics,
                stop_reason=stop_reason,
                resumed_from=resumed_from,
                total_events_processed=self._events_processed_total,
                total_matches_emitted=self._matches_emitted_total,
                plan_history=self._backend.plan_history(),
            )
        finally:
            self._running = False
            self._state = "stopped"
            self._backend.close()
            for sink in self._sinks:
                sink.close()
            # Emit the final partial shed/late bursts and unblock any HTTP
            # thread still waiting on a manual cut the loop will never
            # service (the run is over; the final checkpoint covered it).
            if self._shed_emitter is not None:
                self._shed_emitter.flush()
            if self._late_emitter is not None:
                self._late_emitter.flush()
            while self._manual_requests:
                self._manual_requests.popleft().set()

    def _service_manual_checkpoints(self) -> None:
        """Perform one cut for every pending ``request_checkpoint`` call."""
        pending: List[threading.Event] = []
        while self._manual_requests:
            pending.append(self._manual_requests.popleft())
        if not pending:
            return
        # One cut satisfies every request queued up to this boundary.
        self._write_checkpoint(reason="manual")
        for done in pending:
            done.set()

    def __repr__(self) -> str:
        return (
            f"<StreamingPipeline backend={self._backend.name} "
            f"engine={type(self._backend.engine).__name__} "
            f"source={self._source.name} sinks={len(self._sinks)} "
            f"processed={self._events_processed_total}>"
        )

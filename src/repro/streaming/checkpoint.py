"""Durable pipeline checkpoints (full snapshots and incremental chains).

A checkpoint captures a consistent cut of the pipeline at an event
boundary: the number of source records consumed, the serialized engine
state (open partial matches, statistics, adaptation state — see
:mod:`repro.engine.state`) and each sink's position marker.  A resumed
pipeline restores all three and asks the source to skip the consumed
prefix, so a kill between checkpoints costs only the re-processing of the
post-checkpoint suffix — never lost or duplicated matches.

Pipelines with an event-time ordering stage additionally capture the
in-flight reorder state (``ordering_blob``: the watermark, the pending
reorder heap and the released-but-unprocessed staged events) together with
the raw source offset ``records_ingested`` — with out-of-order ingestion
the processed events are no longer a prefix of the source, so the buffered
difference must travel inside the checkpoint for kill/resume to stay
exactly-once.  Both fields default to their pre-ordering values, so
checkpoints written by older pipelines keep loading.

The store is an **epoch log**.  In full mode every save is a
self-contained ``checkpoint-NNNNNNNNN.pkl`` (the original behaviour — and
pre-existing directories restore unchanged).  In delta mode the pipeline
writes a full *base* checkpoint every K deltas and append-only
``delta-NNNNNNNNN.pkl`` records between them, each holding a CRC-framed
:mod:`repro.streaming.delta` frame of only the state changed since the
previous epoch.  ``latest()`` replays ``base + deltas`` back into a plain
checkpoint (falling back chain-by-chain, and within a chain to the
longest intact prefix, when files are torn or corrupt), ``compact()``
folds the newest chain into a fresh base, and pruning retires whole
chains oldest-first.  An atomic ``manifest.json`` records chain
membership; a missing or torn manifest degrades to a directory scan.

All files are written atomically (temp file + ``os.replace``); temp files
orphaned by a death mid-write are swept when the store is opened.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import CheckpointError
from repro.streaming.delta import materialize_engine_blob

_CHECKPOINT_PATTERN = re.compile(r"^checkpoint-(\d{9})\.pkl$")
_DELTA_PATTERN = re.compile(r"^delta-(\d{9})\.pkl$")
_TEMP_PREFIXES = (".checkpoint-", ".delta-", ".manifest-")

MANIFEST_NAME = "manifest.json"


@dataclass
class Checkpoint:
    """A consistent pipeline snapshot at an event boundary."""

    events_processed: int
    matches_emitted: int
    engine_blob: bytes
    sink_states: List[Any] = field(default_factory=list)
    pattern_name: str = ""
    created_at: float = 0.0
    index: int = 0
    #: Source records pulled at the cut (>= events_processed once an
    #: ordering stage holds events in flight; -1 = legacy checkpoint).
    records_ingested: int = -1
    #: Framed in-flight ordering state (see
    #: :func:`repro.engine.state.snapshot_ordering_state`), or ``None``.
    ordering_blob: Optional[bytes] = None
    #: Delta epoch this full snapshot anchors (``None`` outside delta mode).
    delta_epoch: Optional[int] = None
    #: Why this checkpoint was cut: ``"periodic"`` (cadence), ``"manual"``
    #: (control-plane ``POST /checkpoint``), ``"shutdown"`` (final cut) or
    #: ``"compaction"`` (chain folded by :meth:`CheckpointStore.compact`).
    reason: str = "periodic"

    def describe(self) -> str:
        in_flight = ""
        ordering_blob = getattr(self, "ordering_blob", None)
        if ordering_blob is not None:
            in_flight = f", {len(ordering_blob)} ordering-state bytes"
        return (
            f"checkpoint #{self.index}: {self.events_processed} events, "
            f"{self.matches_emitted} matches, "
            f"{len(self.engine_blob)} state bytes{in_flight}"
        )


@dataclass
class DeltaCheckpoint:
    """One append-only delta record in an incremental checkpoint chain.

    Carries the CRC-framed state delta plus full copies of the small
    bookkeeping the pipeline needs at restore (counters, sink positions,
    in-flight ordering state) — only the engine state, which dominates
    checkpoint size, is delta-encoded.
    """

    events_processed: int
    matches_emitted: int
    frame: bytes
    base_index: int
    epoch: int
    since_epoch: int
    sink_states: List[Any] = field(default_factory=list)
    pattern_name: str = ""
    created_at: float = 0.0
    index: int = 0
    records_ingested: int = -1
    ordering_blob: Optional[bytes] = None
    #: Why this delta was cut (same vocabulary as :attr:`Checkpoint.reason`).
    reason: str = "periodic"

    def describe(self) -> str:
        return (
            f"delta #{self.index} (epoch {self.since_epoch}→{self.epoch}, "
            f"base #{self.base_index}): {self.events_processed} events, "
            f"{len(self.frame)} delta bytes"
        )


class CheckpointStore:
    """Directory-backed checkpoint persistence.

    Parameters
    ----------
    directory:
        Where checkpoint files live; created on first save.  Temp files
        orphaned by a crash mid-write are swept when the store is opened.
    keep:
        How many most-recent checkpoint *chains* to retain (in full mode a
        chain is a single checkpoint, so this matches the original
        keep-N-files behaviour; in delta mode a chain is a base plus its
        deltas).
    clock:
        Wall-clock source stamped into ``created_at`` (injectable for
        deterministic tests, like the sources' and pipeline's clocks).
    """

    def __init__(
        self,
        directory: str,
        keep: int = 2,
        clock: Callable[[], float] = time.time,
    ):
        if keep < 1:
            raise CheckpointError(f"keep must be positive, got {keep!r}")
        self.directory = directory
        self.keep = int(keep)
        self._clock = clock
        #: Optional maintenance observer ``(type, **detail) -> None``:
        #: the decision-log hook for store-side actions (``compaction``).
        self.observer: Optional[Callable[..., None]] = None
        self._sweep_temp_files()

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------
    def _sweep_temp_files(self) -> int:
        """Remove temp files orphaned by a death mid-write; returns count.

        Runs on store open: an interrupted atomic write leaves its
        ``.checkpoint-*.tmp`` (or delta/manifest) file behind, and nothing
        else will ever reclaim it — a high-cadence service would slowly
        fill the checkpoint directory with garbage.
        """
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return 0
        removed = 0
        for name in names:
            if name.endswith(".tmp") and name.startswith(_TEMP_PREFIXES):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def _scan(self, pattern: "re.Pattern[str]") -> List[int]:
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        indices = []
        for name in names:
            matched = pattern.match(name)
            if matched:
                indices.append(int(matched.group(1)))
        return sorted(indices)

    def _indices(self) -> List[int]:
        return self._scan(_CHECKPOINT_PATTERN)

    def _delta_indices(self) -> List[int]:
        return self._scan(_DELTA_PATTERN)

    def _path(self, index: int) -> str:
        return os.path.join(self.directory, f"checkpoint-{index:09d}.pkl")

    def _delta_path(self, index: int) -> str:
        return os.path.join(self.directory, f"delta-{index:09d}.pkl")

    def _next_index(self) -> int:
        indices = self._indices() + self._delta_indices()
        return (max(indices) + 1) if indices else 0

    def latest_index(self) -> Optional[int]:
        indices = self._indices()
        return indices[-1] if indices else None

    # ------------------------------------------------------------------
    # The chain manifest
    # ------------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def _load_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (FileNotFoundError, OSError, ValueError):
            return None
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("chains"), list
        ):
            return None
        return manifest

    def _write_manifest(self, chains: List[Dict[str, Any]]) -> None:
        payload = json.dumps({"version": 1, "chains": chains}, indent=0)
        self._write_atomic(
            self._manifest_path(),
            ".manifest-",
            lambda handle: handle.write(payload.encode("utf-8")),
        )

    def _chains(self) -> List[Dict[str, Any]]:
        """Chain membership: manifest truth, reconciled with the directory.

        Files the manifest does not know (a crash can land between a file
        write and its manifest update) are folded in positionally — a
        stray delta joins the nearest preceding base's chain, where lineage
        validation at restore time has the final say.  Chains are ordered
        by their newest member, so the chain holding the most recent
        progress is last even when an older chain kept growing past a
        compaction base.
        """
        bases = self._indices()
        deltas = self._delta_indices()
        base_set, delta_set = set(bases), set(deltas)
        chains: List[Dict[str, Any]] = []
        known: set = set()
        manifest = self._load_manifest()
        if manifest is not None:
            for chain in manifest["chains"]:
                base = chain.get("base")
                if not isinstance(base, int) or base not in base_set:
                    continue
                members = [
                    index
                    for index in chain.get("deltas", [])
                    if isinstance(index, int) and index in delta_set
                ]
                reasons = chain.get("reasons")
                live = {base, *members}
                kept_reasons = (
                    {
                        key: value
                        for key, value in reasons.items()
                        if isinstance(key, str)
                        and key.isdigit()
                        and int(key) in live
                    }
                    if isinstance(reasons, dict)
                    else {}
                )
                chains.append(
                    {
                        "base": base,
                        "deltas": sorted(members),
                        "reasons": kept_reasons,
                    }
                )
                known.add(base)
                known.update(members)
        for base in bases:
            if base not in known:
                chains.append({"base": base, "deltas": [], "reasons": {}})
                known.add(base)
        chains.sort(key=lambda chain: chain["base"])
        for index in deltas:
            if index in known:
                continue
            owner = None
            for chain in chains:
                if chain["base"] < index:
                    owner = chain
            if owner is not None:
                owner["deltas"] = sorted(set(owner["deltas"]) | {index})
                known.add(index)
        chains.sort(key=lambda chain: max([chain["base"], *chain["deltas"]]))
        return chains

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _write_atomic(self, path: str, prefix: str, write: Callable[[Any], Any]) -> None:
        """Temp file + fsync + ``os.replace``; ``write`` fills the handle."""
        os.makedirs(self.directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=prefix, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                write(handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except Exception as exc:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise CheckpointError(f"failed to write {path!r}: {exc}") from exc

    def _write_pickle(self, path: str, prefix: str, payload: Any) -> None:
        self._write_atomic(
            path,
            prefix,
            lambda handle: pickle.dump(
                payload, handle, protocol=pickle.HIGHEST_PROTOCOL
            ),
        )

    def save(self, checkpoint: Checkpoint) -> str:
        """Atomically persist a full (base) checkpoint; returns the path.

        Starts a new chain in the manifest; older chains beyond ``keep``
        are pruned (base and deltas together).
        """
        os.makedirs(self.directory, exist_ok=True)
        chains = self._chains()
        checkpoint.index = self._next_index()
        checkpoint.created_at = self._clock()
        path = self._path(checkpoint.index)
        self._write_pickle(path, ".checkpoint-", checkpoint)
        chains.append(
            {
                "base": checkpoint.index,
                "deltas": [],
                "reasons": {
                    str(checkpoint.index): getattr(
                        checkpoint, "reason", "periodic"
                    )
                },
            }
        )
        try:
            self._write_manifest(chains)
        except CheckpointError:
            pass  # scan fallback keeps the store usable
        self._prune()
        return path

    def save_delta(self, record: DeltaCheckpoint) -> str:
        """Append one delta record to its base's chain; returns the path."""
        chains = self._chains()
        target = None
        for chain in chains:
            if chain["base"] == record.base_index:
                target = chain
        if target is None:
            raise CheckpointError(
                f"cannot append a delta to base #{record.base_index}: no such "
                "base checkpoint in the store (was it pruned?)"
            )
        record.index = self._next_index()
        record.created_at = self._clock()
        path = self._delta_path(record.index)
        self._write_pickle(path, ".delta-", record)
        target["deltas"] = sorted(set(target["deltas"]) | {record.index})
        target.setdefault("reasons", {})[str(record.index)] = getattr(
            record, "reason", "periodic"
        )
        try:
            self._write_manifest(chains)
        except CheckpointError:
            pass
        return path

    def load(self, index: int) -> Checkpoint:
        path = self._path(index)
        try:
            with open(path, "rb") as handle:
                checkpoint = pickle.load(handle)
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint #{index} in {self.directory!r}") from None
        except Exception as exc:
            raise CheckpointError(f"corrupt checkpoint {path!r}: {exc}") from exc
        if not isinstance(checkpoint, Checkpoint):
            raise CheckpointError(
                f"{path!r} does not contain a Checkpoint "
                f"(got {type(checkpoint).__name__})"
            )
        return checkpoint

    def load_delta(self, index: int) -> DeltaCheckpoint:
        path = self._delta_path(index)
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except FileNotFoundError:
            raise CheckpointError(f"no delta #{index} in {self.directory!r}") from None
        except Exception as exc:
            raise CheckpointError(f"corrupt delta {path!r}: {exc}") from exc
        if not isinstance(record, DeltaCheckpoint):
            raise CheckpointError(
                f"{path!r} does not contain a DeltaCheckpoint "
                f"(got {type(record).__name__})"
            )
        return record

    # ------------------------------------------------------------------
    # Restore (chain replay)
    # ------------------------------------------------------------------
    def _chain_records(
        self, base: Checkpoint, chain: Dict[str, Any]
    ) -> List[DeltaCheckpoint]:
        """The longest intact, lineage-consistent delta prefix of a chain."""
        records: List[DeltaCheckpoint] = []
        previous_epoch = base.delta_epoch if getattr(base, "delta_epoch", None) is not None else None
        for index in chain["deltas"]:
            try:
                record = self.load_delta(index)
            except CheckpointError:
                break  # torn tail: replay what is intact
            if record.base_index != chain["base"]:
                break  # stray delta from another lineage (scan fallback)
            if previous_epoch is not None and record.since_epoch != previous_epoch:
                break  # epoch gap: a delta in between was lost
            records.append(record)
            previous_epoch = record.epoch
        return records

    def _materialize(
        self, base: Checkpoint, records: List[DeltaCheckpoint]
    ) -> Checkpoint:
        blob = materialize_engine_blob(
            base.engine_blob, [record.frame for record in records]
        )
        last = records[-1]
        return Checkpoint(
            events_processed=last.events_processed,
            matches_emitted=last.matches_emitted,
            engine_blob=blob,
            sink_states=list(last.sink_states),
            pattern_name=last.pattern_name,
            created_at=last.created_at,
            index=last.index,
            records_ingested=last.records_ingested,
            ordering_blob=last.ordering_blob,
            delta_epoch=last.epoch,
            reason=getattr(last, "reason", "periodic"),
        )

    def latest(self) -> Optional[Checkpoint]:
        """The most recent *restorable* checkpoint, or ``None``.

        Delta chains are replayed ``base + deltas``; a corrupt or
        inconsistent delta truncates the replay to the chain's longest
        intact prefix, and a corrupt base falls back to the previous chain
        (resuming further back is always safe — the pipeline just
        re-processes a longer suffix, still exactly-once).
        """
        last_error: Optional[CheckpointError] = None
        for chain in reversed(self._chains()):
            try:
                base = self.load(chain["base"])
            except CheckpointError as exc:
                last_error = exc
                continue
            records = self._chain_records(base, chain)
            while records:
                try:
                    return self._materialize(base, records)
                except CheckpointError as exc:
                    last_error = exc
                    records = records[:-1]
            return base
        if last_error is not None:
            raise last_error
        return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def compact(self) -> Optional[str]:
        """Fold the newest chain into a fresh full base; returns its path.

        A long-running delta-mode service can call this to bound restore
        replay length without waiting for the next scheduled base.  No-op
        (returns ``None``) when the newest state is already a bare base.
        """
        chains = self._chains()
        if not chains:
            return None
        newest = chains[-1]
        if not newest["deltas"]:
            return None
        checkpoint = self.latest()
        if checkpoint is None:
            return None
        checkpoint.delta_epoch = None  # a compacted base anchors no live tracker
        checkpoint.reason = "compaction"
        path = self.save(checkpoint)
        if self.observer is not None:
            self.observer(
                "compaction",
                base=newest["base"],
                deltas_folded=len(newest["deltas"]),
                events_processed=checkpoint.events_processed,
                path=path,
            )
        return path

    def clear(self) -> int:
        """Delete every checkpoint, delta and the manifest; returns count."""
        removed = 0
        for index in self._indices():
            try:
                os.unlink(self._path(index))
                removed += 1
            except OSError:
                pass
        for index in self._delta_indices():
            try:
                os.unlink(self._delta_path(index))
                removed += 1
            except OSError:
                pass
        try:
            os.unlink(self._manifest_path())
        except OSError:
            pass
        return removed

    def _prune(self) -> None:
        chains = self._chains()
        retired = chains[: -self.keep]
        if not retired:
            return
        for chain in retired:
            for index in chain["deltas"]:
                try:
                    os.unlink(self._delta_path(index))
                except OSError:
                    pass
            try:
                os.unlink(self._path(chain["base"]))
            except OSError:
                pass
        try:
            self._write_manifest(chains[-self.keep :])
        except CheckpointError:
            pass

    def stats(self) -> Dict[str, Any]:
        indices = self._indices()
        deltas = self._delta_indices()
        chains = self._chains()
        reasons: Dict[str, int] = {}
        for chain in chains:
            for reason in (chain.get("reasons") or {}).values():
                reasons[reason] = reasons.get(reason, 0) + 1
        return {
            "directory": self.directory,
            "checkpoints": len(indices),
            "deltas": len(deltas),
            "chains": len(chains),
            "latest_index": max(indices + deltas) if indices or deltas else None,
            "reasons": reasons,
        }

    def __repr__(self) -> str:
        return f"<CheckpointStore {self.directory!r} keep={self.keep}>"

"""Durable pipeline checkpoints.

A checkpoint captures a consistent cut of the pipeline at an event
boundary: the number of source records consumed, the serialized engine
state (open partial matches, statistics, adaptation state — see
:mod:`repro.engine.state`) and each sink's position marker.  A resumed
pipeline restores all three and asks the source to skip the consumed
prefix, so a kill between checkpoints costs only the re-processing of the
post-checkpoint suffix — never lost or duplicated matches.

Pipelines with an event-time ordering stage additionally capture the
in-flight reorder state (``ordering_blob``: the watermark, the pending
reorder heap and the released-but-unprocessed staged events) together with
the raw source offset ``records_ingested`` — with out-of-order ingestion
the processed events are no longer a prefix of the source, so the buffered
difference must travel inside the checkpoint for kill/resume to stay
exactly-once.  Both fields default to their pre-ordering values, so
checkpoints written by older pipelines keep loading.

Checkpoints are written atomically (temp file + ``os.replace``) into a
directory, newest-last by a monotonically increasing index; the store
keeps the most recent ``keep`` files so a torn write of the newest
checkpoint still leaves a valid predecessor to fall back to.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import CheckpointError

_CHECKPOINT_PATTERN = re.compile(r"^checkpoint-(\d{9})\.pkl$")


@dataclass
class Checkpoint:
    """A consistent pipeline snapshot at an event boundary."""

    events_processed: int
    matches_emitted: int
    engine_blob: bytes
    sink_states: List[Any] = field(default_factory=list)
    pattern_name: str = ""
    created_at: float = 0.0
    index: int = 0
    #: Source records pulled at the cut (>= events_processed once an
    #: ordering stage holds events in flight; -1 = legacy checkpoint).
    records_ingested: int = -1
    #: Framed in-flight ordering state (see
    #: :func:`repro.engine.state.snapshot_ordering_state`), or ``None``.
    ordering_blob: Optional[bytes] = None

    def describe(self) -> str:
        in_flight = ""
        ordering_blob = getattr(self, "ordering_blob", None)
        if ordering_blob is not None:
            in_flight = f", {len(ordering_blob)} ordering-state bytes"
        return (
            f"checkpoint #{self.index}: {self.events_processed} events, "
            f"{self.matches_emitted} matches, "
            f"{len(self.engine_blob)} state bytes{in_flight}"
        )


class CheckpointStore:
    """Directory-backed checkpoint persistence.

    Parameters
    ----------
    directory:
        Where checkpoint files live; created on first save.
    keep:
        How many most-recent checkpoints to retain (older ones are pruned
        after each successful save).
    clock:
        Wall-clock source stamped into ``created_at`` (injectable for
        deterministic tests, like the sources' and pipeline's clocks).
    """

    def __init__(
        self,
        directory: str,
        keep: int = 2,
        clock: Callable[[], float] = time.time,
    ):
        if keep < 1:
            raise CheckpointError(f"keep must be positive, got {keep!r}")
        self.directory = directory
        self.keep = int(keep)
        self._clock = clock

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------
    def _indices(self) -> List[int]:
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        indices = []
        for name in names:
            matched = _CHECKPOINT_PATTERN.match(name)
            if matched:
                indices.append(int(matched.group(1)))
        return sorted(indices)

    def _path(self, index: int) -> str:
        return os.path.join(self.directory, f"checkpoint-{index:09d}.pkl")

    def latest_index(self) -> Optional[int]:
        indices = self._indices()
        return indices[-1] if indices else None

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, checkpoint: Checkpoint) -> str:
        """Atomically persist a checkpoint; returns the file path."""
        os.makedirs(self.directory, exist_ok=True)
        latest = self.latest_index()
        checkpoint.index = 0 if latest is None else latest + 1
        checkpoint.created_at = self._clock()
        path = self._path(checkpoint.index)
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except Exception as exc:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise CheckpointError(f"failed to write checkpoint: {exc}") from exc
        self._prune()
        return path

    def load(self, index: int) -> Checkpoint:
        path = self._path(index)
        try:
            with open(path, "rb") as handle:
                checkpoint = pickle.load(handle)
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint #{index} in {self.directory!r}") from None
        except Exception as exc:
            raise CheckpointError(f"corrupt checkpoint {path!r}: {exc}") from exc
        if not isinstance(checkpoint, Checkpoint):
            raise CheckpointError(
                f"{path!r} does not contain a Checkpoint "
                f"(got {type(checkpoint).__name__})"
            )
        return checkpoint

    def latest(self) -> Optional[Checkpoint]:
        """The most recent *readable* checkpoint, or ``None``.

        Falls back to older checkpoints when the newest is corrupt (e.g. the
        process died mid-``os.replace`` on a non-atomic filesystem).
        """
        last_error: Optional[CheckpointError] = None
        for index in reversed(self._indices()):
            try:
                return self.load(index)
            except CheckpointError as exc:
                last_error = exc
        if last_error is not None:
            raise last_error
        return None

    def clear(self) -> int:
        """Delete every checkpoint; returns how many were removed."""
        removed = 0
        for index in self._indices():
            try:
                os.unlink(self._path(index))
                removed += 1
            except OSError:
                pass
        return removed

    def _prune(self) -> None:
        indices = self._indices()
        for index in indices[: -self.keep]:
            try:
                os.unlink(self._path(index))
            except OSError:
                pass

    def stats(self) -> Dict[str, Any]:
        indices = self._indices()
        return {
            "directory": self.directory,
            "checkpoints": len(indices),
            "latest_index": indices[-1] if indices else None,
        }

    def __repr__(self) -> str:
        return f"<CheckpointStore {self.directory!r} keep={self.keep}>"

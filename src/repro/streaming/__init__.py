"""Streaming I/O and long-running service runtime.

Turns the batch-oriented engines into a deployable pipeline over unbounded
streams::

    from repro.streaming import (
        StreamingPipeline, ReplaySource, JSONLMatchWriter, CheckpointStore,
    )

    pipeline = StreamingPipeline(
        engine,                               # AdaptiveCEPEngine / Parallel…
        ReplaySource(recorded, rate=5000.0),  # or a JSONL/CSV file tail
        sinks=[JSONLMatchWriter("matches.jsonl")],
        checkpoint_store=CheckpointStore("ckpt/"),
        checkpoint_every=10_000,
    )
    result = pipeline.run()                   # resumes from ckpt/ if present

The building blocks:

* **sources** (:mod:`~repro.streaming.sources`) — lazy, single-pass event
  producers: rate-controlled replay, JSONL/CSV file tailing, iterable and
  callback adapters;
* **sinks** (:mod:`~repro.streaming.sinks`) — match consumers with
  checkpointable positions: JSONL writer, in-memory collector, counters;
* **buffering** (:mod:`~repro.streaming.buffer`) — a bounded staging
  buffer with backpressure and load-shedding overflow policies;
* **event-time ordering** (:mod:`~repro.streaming.ordering`) — watermark
  generators (bounded out-of-orderness, punctuated), a heap-based reorder
  buffer releasing out-of-order arrivals in timestamp order, and
  drop/side-output/raise late-event policies (``max_lateness=…`` on the
  pipeline, ``--max-lateness``/``--late-policy`` on the CLI);
* **checkpointing** (:mod:`~repro.streaming.checkpoint`) — atomic
  snapshots of engine state + source offset + sink positions — plus the
  in-flight reorder buffer when ordering is active — giving kill/resume
  with no lost and no duplicated matches;
* **incremental (delta) checkpoints** (:mod:`~repro.streaming.delta`) —
  ``checkpoint_mode="delta"`` writes a full base every
  ``checkpoint_full_every`` checkpoints and CRC-framed append-only deltas
  of only the changed state between (``--checkpoint-mode delta`` on the
  CLI); restore replays base + deltas, and worker backends ship per-shard
  deltas through the snapshot barrier;
* **the network data plane** (:mod:`~repro.streaming.net`) — socket/HTTP
  event ingestion feeding the pipeline with backpressure (HTTP 429s,
  blocking socket reads) and acked match delivery (webhook / socket sinks
  with idempotency keys, retry with capped backoff, dead-letter spill)
  that stays exactly-once through kill/resume (``--listen-port`` /
  ``--tcp-port`` / ``--webhook-url`` / ``--socket-sink`` on the CLI);
* **the pipeline** (:mod:`~repro.streaming.pipeline`) — the run loop
  wiring it all together, with per-stage latency/queue metrics and
  graceful shutdown;
* **execution backends** (:mod:`~repro.streaming.workers`) — where the
  detection runs: inline in the pipeline thread, or on per-shard worker
  threads/processes fed by bounded queues for true multi-core serving
  (``--backend process --workers N`` on the CLI).

The CLI front-end is ``python -m repro.experiments.cli serve``.
"""

from repro.streaming.buffer import (
    Backpressure,
    BoundedBuffer,
    DropNewest,
    DropOldest,
    OverflowPolicy,
    overflow_policy_by_name,
)
from repro.streaming.checkpoint import Checkpoint, CheckpointStore, DeltaCheckpoint
from repro.streaming.delta import (
    DeltaTracker,
    engine_snapshot_delta,
    materialize_engine_blob,
    prime_engine_tracker,
)
from repro.streaming.net import (
    AckedDeliverySink,
    HTTPEventIngress,
    NetworkEventSource,
    SocketMatchReceiver,
    SocketMatchSink,
    TCPEventIngress,
    WebhookMatchSink,
    WebhookReceiver,
    push_events_http,
    push_events_tcp,
    read_event_records,
)
from repro.streaming.ordering import (
    LATE_POLICIES,
    BoundedOutOfOrdernessWatermarks,
    PayloadWatermarkExtractor,
    PunctuatedWatermarks,
    ReorderBuffer,
    WatermarkGenerator,
    bounded_shuffle,
    reorder_events,
)
from repro.streaming.pipeline import (
    CHECKPOINT_MODES,
    DEFAULT_CHECKPOINT_FULL_EVERY,
    DEFAULT_FILL_CHUNK,
    PipelineResult,
    StreamingPipeline,
)
from repro.streaming.sinks import (
    CollectorSink,
    JSONLMatchWriter,
    MatchSink,
    MetricsSink,
    match_record,
)
from repro.streaming.sources import (
    NO_EVENT,
    CallbackSource,
    CSVFileSource,
    EventSource,
    IterableSource,
    JSONLFileSource,
    RateLimiter,
    ReplaySource,
    event_record,
    write_events_csv,
    write_events_jsonl,
)
from repro.streaming.workers import (
    DEFAULT_FEED_BATCH,
    DEFAULT_QUEUE_CAPACITY,
    ExecutionBackend,
    InlineBackend,
    ProcessWorkerBackend,
    ThreadWorkerBackend,
    backend_by_name,
)

__all__ = [
    # pipeline
    "StreamingPipeline",
    "PipelineResult",
    "DEFAULT_FILL_CHUNK",
    # sources
    "EventSource",
    "IterableSource",
    "CallbackSource",
    "NO_EVENT",
    "ReplaySource",
    "JSONLFileSource",
    "CSVFileSource",
    "RateLimiter",
    "event_record",
    "write_events_jsonl",
    "write_events_csv",
    # sinks
    "MatchSink",
    "CollectorSink",
    "JSONLMatchWriter",
    "MetricsSink",
    "match_record",
    # network data plane
    "NetworkEventSource",
    "HTTPEventIngress",
    "TCPEventIngress",
    "AckedDeliverySink",
    "WebhookMatchSink",
    "SocketMatchSink",
    "WebhookReceiver",
    "SocketMatchReceiver",
    "push_events_http",
    "push_events_tcp",
    "read_event_records",
    # buffering
    "BoundedBuffer",
    "OverflowPolicy",
    "Backpressure",
    "DropNewest",
    "DropOldest",
    "overflow_policy_by_name",
    # event-time ordering
    "WatermarkGenerator",
    "BoundedOutOfOrdernessWatermarks",
    "PunctuatedWatermarks",
    "PayloadWatermarkExtractor",
    "ReorderBuffer",
    "reorder_events",
    "bounded_shuffle",
    "LATE_POLICIES",
    # checkpointing
    "Checkpoint",
    "CheckpointStore",
    "DeltaCheckpoint",
    "CHECKPOINT_MODES",
    "DEFAULT_CHECKPOINT_FULL_EVERY",
    # incremental (delta) snapshots
    "DeltaTracker",
    "engine_snapshot_delta",
    "materialize_engine_blob",
    "prime_engine_tracker",
    # execution backends (multi-core streaming)
    "ExecutionBackend",
    "InlineBackend",
    "ThreadWorkerBackend",
    "ProcessWorkerBackend",
    "backend_by_name",
    "DEFAULT_FEED_BATCH",
    "DEFAULT_QUEUE_CAPACITY",
]

"""Match sinks for the streaming runtime.

A sink receives every match the engine emits, as it is emitted.  Three
implementations are provided:

* :class:`CollectorSink` — buffer matches in memory (tests, small jobs);
* :class:`JSONLMatchWriter` — append one JSON object per match to a file,
  the durable output of a long-running service;
* :class:`MetricsSink` — keep only counters (total and per-pattern), for
  deployments where the matches themselves are consumed elsewhere.

Sinks participate in checkpointing through :meth:`MatchSink.state` /
:meth:`MatchSink.restore`: the pipeline snapshots each sink's position
together with the engine state, and a resuming pipeline rolls the sink
back to that position before re-processing post-checkpoint events.  That
rollback is what makes resume *exactly-once* — matches emitted after the
last checkpoint (and about to be re-derived) are withdrawn instead of
duplicated.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.engine import Match
from repro.errors import CheckpointError, StreamingError


class MatchSink:
    """Base class for match sinks."""

    name: str = "sink"

    def open(self) -> None:
        """Prepare the sink for emission (idempotent)."""

    def emit(self, match: Match) -> None:
        """Deliver one match."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make everything emitted so far durable."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state(self) -> Any:
        """Opaque position marker stored inside pipeline checkpoints."""
        return None

    def restore(self, state: Any) -> None:
        """Roll the sink back to a :meth:`state` position (exactly-once resume)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class CollectorSink(MatchSink):
    """Buffer every match in memory."""

    name = "collector"

    def __init__(self) -> None:
        self.matches: List[Match] = []

    def emit(self, match: Match) -> None:
        self.matches.append(match)

    def state(self) -> int:
        return len(self.matches)

    def restore(self, state: Any) -> None:
        try:
            count = int(state or 0)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"collector sink: malformed checkpoint state {state!r}: {exc}"
            ) from None
        if count > len(self.matches):
            raise CheckpointError(
                f"collector sink cannot roll back to {count} matches: only "
                f"{len(self.matches)} collected (was the sink recreated "
                "without its previous contents?)"
            )
        del self.matches[count:]

    def __len__(self) -> int:
        return len(self.matches)


def match_record(match: Match) -> Dict[str, Any]:
    """JSON-serialisable representation of one match.

    Events are written as ``(type, timestamp, sequence, payload)`` records;
    together with the file sources' deterministic sequence numbers this
    makes two runs over the same input byte-comparable.
    """

    def event_entry(event) -> Dict[str, Any]:
        return {
            "type": event.type_name,
            "timestamp": event.timestamp,
            "sequence": event.sequence_number,
            "payload": event.payload,
        }

    bindings: Dict[str, Any] = {}
    for variable in sorted(match.bindings):
        value = match.bindings[variable]
        if isinstance(value, list):
            bindings[variable] = [event_entry(event) for event in value]
        else:
            bindings[variable] = event_entry(value)
    return {
        "pattern": match.pattern_name,
        "pattern_id": getattr(match, "pattern_id", None) or match.pattern_name,
        "detection_time": match.detection_time,
        "bindings": bindings,
    }


class JSONLMatchWriter(MatchSink):
    """Append matches to a JSON-lines file.

    The sink tracks its byte offset after every line; that offset is the
    checkpoint state, and :meth:`restore` truncates the file back to it —
    withdrawing matches that will be re-derived by the resumed pipeline.
    """

    name = "jsonl-writer"

    def __init__(self, path: str, append: bool = False):
        self.path = path
        self._append = bool(append)
        self._handle = None
        self.matches_written = 0
        # Byte offset after the last written line, tracked *across* close():
        # a checkpoint cut after close() must still record the real
        # position, or a later restore would truncate the whole file.
        self._last_offset = 0

    def open(self) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a" if self._append else "w", encoding="utf-8")
            self._last_offset = self._handle.tell()

    def emit(self, match: Match) -> None:
        if self._handle is None:
            raise StreamingError(
                f"JSONLMatchWriter({self.path!r}) is not open; call open() "
                "first (the pipeline does this automatically)"
            )
        self._handle.write(json.dumps(match_record(match)) + "\n")
        self.matches_written += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._last_offset = self._handle.tell()
            self._handle.close()
            self._handle = None

    def state(self) -> Dict[str, int]:
        if self._handle is None:
            # Closed (or never opened): the last known offset, not 0 — the
            # matches already written must survive a restore from this state.
            return {"offset": self._last_offset, "matches": self.matches_written}
        self._handle.flush()
        self._last_offset = self._handle.tell()
        return {"offset": self._last_offset, "matches": self.matches_written}

    def restore(self, state: Any) -> None:
        if not state:
            return
        try:
            offset = int(state["offset"])
            matches = int(state["matches"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"jsonl-writer sink: malformed checkpoint state {state!r}: {exc}"
            ) from None
        was_open = self._handle is not None
        if was_open:
            self._handle.flush()
            self._handle.close()
            self._handle = None
        try:
            size = os.path.getsize(self.path)
        except OSError as exc:
            if offset == 0:
                size = None  # nothing was written; no file to roll back
            else:
                raise CheckpointError(
                    f"cannot roll back {self.path!r}: {exc}"
                ) from exc
        if size is not None and offset > size:
            raise CheckpointError(
                f"cannot roll back {self.path!r} to byte {offset}: file has "
                f"only {size} bytes (was it rewritten since the checkpoint?)"
            )
        if size is not None:
            with open(self.path, "r+", encoding="utf-8") as handle:
                handle.truncate(offset)
        self.matches_written = matches
        self._last_offset = offset
        # Continue appending after the rollback point.
        self._append = True
        if was_open:
            self.open()

    def __repr__(self) -> str:
        return f"<JSONLMatchWriter path={self.path!r} written={self.matches_written}>"


class MetricsSink(MatchSink):
    """Count matches without retaining them."""

    name = "metrics"

    def __init__(self) -> None:
        self.total = 0
        self.per_pattern: Dict[str, int] = {}
        self.last_detection_time: Optional[float] = None

    def emit(self, match: Match) -> None:
        self.total += 1
        # Key by the registry id when present (multi-pattern provenance);
        # old pickles may predate the attribute.
        key = getattr(match, "pattern_id", None) or match.pattern_name
        self.per_pattern[key] = self.per_pattern.get(key, 0) + 1
        self.last_detection_time = match.detection_time

    def state(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "per_pattern": dict(self.per_pattern),
            "last_detection_time": self.last_detection_time,
        }

    def restore(self, state: Any) -> None:
        if not state:
            return
        try:
            total = int(state["total"])
            per_pattern = dict(state["per_pattern"])
            last_detection_time = state["last_detection_time"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"metrics sink: malformed checkpoint state {state!r}: {exc}"
            ) from None
        self.total = total
        self.per_pattern = per_pattern
        self.last_detection_time = last_detection_time

    def __repr__(self) -> str:
        return f"<MetricsSink total={self.total}>"
